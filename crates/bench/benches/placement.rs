//! B1 — placement-expression overhead: unchecked (the paper's vulnerable
//! primitive) vs §5.1 checked vs §5.2 intercepted call sites.
//!
//! The interesting number is the *cost of the fix*: how much slower a
//! size/alignment-checked placement is than the raw expression, per call,
//! for objects and for arrays.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use pnew_core::student::StudentWorld;
use pnew_core::{Arena, AttackConfig, PlacementMode};
use pnew_memory::SegmentKind;
use pnew_object::CxxType;
use pnew_runtime::VarDecl;

fn bench_object_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_object");
    let world = StudentWorld::plain();
    for mode in [PlacementMode::Unchecked, PlacementMode::Checked, PlacementMode::Intercepted] {
        group.bench_function(mode.to_string(), |b| {
            b.iter_batched_ref(
                || {
                    let mut m = world.machine(&AttackConfig::paper());
                    let pool = m
                        .define_global(
                            "pool",
                            VarDecl::Buffer { size: 64, align: 8 },
                            SegmentKind::Bss,
                        )
                        .unwrap();
                    (m, pool)
                },
                |(m, pool)| {
                    let arena = Arena::new(*pool, 64);
                    mode.place_object(m, arena, world.grad).unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_array_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_array");
    let world = StudentWorld::plain();
    for mode in [PlacementMode::Unchecked, PlacementMode::Checked, PlacementMode::Intercepted] {
        group.bench_function(mode.to_string(), |b| {
            b.iter_batched_ref(
                || {
                    let mut m = world.machine(&AttackConfig::paper());
                    let pool =
                        m.define_global("pool", VarDecl::char_buf(4096), SegmentKind::Bss).unwrap();
                    (m, pool)
                },
                |(m, pool)| {
                    let arena = Arena::new(*pool, 4096);
                    mode.place_array(m, arena, CxxType::Char, 4096).unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_heap_fallback(c: &mut Criterion) {
    // The §5.1 failure path: checked placement refuses and falls back to
    // heap new.
    let world = StudentWorld::plain();
    c.bench_function("placement_checked_fallback_to_heap", |b| {
        b.iter_batched_ref(
            || {
                let mut m = world.machine(&AttackConfig::paper());
                let stud = m
                    .define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss)
                    .unwrap();
                (m, stud)
            },
            |(m, stud)| {
                let arena = Arena::new(*stud, 16);
                pnew_core::protect::place_or_heap(m, arena, world.grad).unwrap()
            },
            BatchSize::SmallInput,
        );
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_object_placement, bench_array_placement, bench_heap_fallback
}
criterion_main!(benches);
