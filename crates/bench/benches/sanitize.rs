//! B3 — sanitization overhead: arena reuse with and without the §5.1
//! `memset` between tenants, across arena sizes.
//!
//! §5.1 worries about "efficiency sake" tempting programmers to skip or
//! partially apply sanitization; this bench quantifies the full-arena
//! memset cost the defense actually pays.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use pnew_core::protect::ManagedArena;
use pnew_core::student::StudentWorld;
use pnew_core::{AttackConfig, PlacementMode};
use pnew_memory::SegmentKind;
use pnew_object::CxxType;
use pnew_runtime::VarDecl;

fn bench_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_reuse");
    let world = StudentWorld::plain();
    for size in [64u32, 256, 1024, 4096, 16384] {
        group.throughput(Throughput::Bytes(u64::from(size)));
        for sanitize in [false, true] {
            let label = if sanitize { "sanitized" } else { "raw" };
            group.bench_with_input(BenchmarkId::new(label, size), &size, |b, &size| {
                b.iter_batched_ref(
                    || {
                        let mut m = world.machine(&AttackConfig::paper());
                        let pool = m
                            .define_global(
                                "pool",
                                VarDecl::Buffer { size, align: 8 },
                                SegmentKind::Bss,
                            )
                            .unwrap();
                        let mut arena = ManagedArena::new(pool, size, sanitize);
                        // First tenant so every measured placement is a
                        // *reuse*.
                        arena
                            .place_array(&mut m, PlacementMode::Unchecked, CxxType::Char, size)
                            .unwrap();
                        (m, arena)
                    },
                    |(m, arena)| {
                        arena.place_array(m, PlacementMode::Unchecked, CxxType::Char, size).unwrap()
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_reuse
}
criterion_main!(benches);
