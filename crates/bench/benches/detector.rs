//! B4 — detector throughput: the placement-new analyzer vs the
//! traditional baseline over the full corpus, and scaling with program
//! size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pnew_corpus::{benign, listings, workload};
use pnew_detector::emit::{render_json, render_sarif, FileRecord};
use pnew_detector::oracle::{Matrix, Oracle};
use pnew_detector::{
    parse_program, parse_program_recovering, pretty_program, Analyzer, AnalyzerConfig,
    BaselineChecker, BatchEngine, Executor, Fixer, PersistentCache, Program,
};

fn whole_corpus() -> Vec<Program> {
    let mut corpus = listings::vulnerable_corpus();
    corpus.extend(benign::benign_corpus());
    corpus
}

fn bench_corpus_scan(c: &mut Criterion) {
    let corpus = whole_corpus();
    let stmts: usize = corpus.iter().map(Program::stmt_count).sum();
    let mut group = c.benchmark_group("detector_corpus_scan");
    group.throughput(Throughput::Elements(stmts as u64));

    let analyzer = Analyzer::new();
    group.bench_function("analyzer", |b| {
        b.iter(|| corpus.iter().filter(|p| analyzer.analyze(p).detected()).count());
    });
    let baseline = BaselineChecker::new();
    group.bench_function("baseline", |b| {
        b.iter(|| corpus.iter().filter(|p| baseline.analyze(p).detected()).count());
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Analyzer cost as generated programs grow (batches of generated
    // safe programs as a proxy for codebase size).
    let mut group = c.benchmark_group("detector_scaling");
    for batch in [10usize, 50, 200] {
        let programs: Vec<Program> = (0..batch as u64).map(workload::random_safe_program).collect();
        let stmts: usize = programs.iter().map(Program::stmt_count).sum();
        group.throughput(Throughput::Elements(stmts as u64));
        let analyzer = Analyzer::new();
        group.bench_with_input(BenchmarkId::new("analyzer", batch), &programs, |b, programs| {
            b.iter(|| programs.iter().map(|p| analyzer.analyze(p).findings.len()).sum::<usize>());
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    // Serial vs parallel vs cached throughput of the batch engine over a
    // generated 500-program corpus. `serial`/`parallel` clear the report
    // cache every iteration so each pass re-analyzes everything; `cached`
    // pre-warms the cache and measures pure fingerprint-and-lookup.
    let programs = workload::corpus(42, 500);
    let mut group = c.benchmark_group("detector_batch_scan");
    group.throughput(Throughput::Elements(programs.len() as u64));
    group.sample_size(10);

    let serial = BatchEngine::new(Analyzer::new()).with_jobs(1);
    group.bench_function("serial", |b| {
        b.iter(|| {
            serial.clear_cache();
            serial.scan(&programs).len()
        });
    });
    let parallel = BatchEngine::new(Analyzer::new()); // jobs = available cores
    group.bench_function(format!("parallel-{}jobs", parallel.jobs()), |b| {
        b.iter(|| {
            parallel.clear_cache();
            parallel.scan(&programs).len()
        });
    });
    let cached = BatchEngine::new(Analyzer::new());
    cached.scan(&programs);
    group.bench_function("cached", |b| {
        b.iter(|| cached.scan(&programs).len());
    });
    group.finish();
}

fn bench_interprocedural(c: &mut Criterion) {
    // Summary-based vs inline interprocedural analysis over the deep
    // call-graph corpus (depth 16, fan-in 8): the inline engine re-walks
    // every call path (~500k function walks per program), the summary
    // engine computes each function once per abstract context.
    let programs = workload::deep_call_corpus(42, 2);
    let mut group = c.benchmark_group("detector_interprocedural");
    group.throughput(Throughput::Elements(programs.len() as u64));
    group.sample_size(10);

    let summary = Analyzer::new();
    group.bench_function("summary", |b| {
        b.iter(|| programs.iter().map(|p| summary.analyze(p).findings.len()).sum::<usize>());
    });
    let inline =
        Analyzer::with_config(AnalyzerConfig { use_summaries: false, ..AnalyzerConfig::default() });
    group.bench_function("inline", |b| {
        b.iter(|| programs.iter().map(|p| inline.analyze(p).findings.len()).sum::<usize>());
    });
    group.finish();
}

fn bench_persistent_cache(c: &mut Criterion) {
    // Warm on-disk rescan vs cold source scan of the generated corpus.
    // The warm engine clears its in-memory tier every iteration, so the
    // number isolates the disk tier: fingerprint, read, decode.
    let sources: Vec<String> = workload::corpus(42, 500).iter().map(pretty_program).collect();
    let dir = std::env::temp_dir().join(format!("pnx-bench-disk-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut group = c.benchmark_group("detector_persistent_cache");
    group.throughput(Throughput::Elements(sources.len() as u64));
    group.sample_size(10);

    let cold = BatchEngine::new(Analyzer::new());
    group.bench_function("cold", |b| {
        b.iter(|| {
            cold.clear_cache();
            cold.scan_sources_with_stats(&sources).0.len()
        });
    });

    let analyzer = Analyzer::new();
    let cache = PersistentCache::open(&dir, analyzer.config()).expect("cache dir opens");
    let warm = BatchEngine::new(analyzer).with_persistent_cache(cache);
    warm.scan_sources_with_stats(&sources); // populate the disk tier
    group.bench_function("warm-disk", |b| {
        b.iter(|| {
            warm.clear_cache();
            warm.scan_sources_with_stats(&sources).0.len()
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_xcheck(c: &mut Criterion) {
    // Differential-oracle throughput: analyze + execute + join over a
    // generated executable corpus, the cost CI's oracle gate pays per
    // program. Much heavier than a bare scan (every function runs on a
    // fresh machine under several attacker scripts), hence the smaller
    // corpus and sample count.
    let programs = workload::executable_corpus(42, 60);
    let scripts: Vec<Vec<i64>> =
        Oracle::default_inputs().into_iter().chain(workload::attack_inputs(42, 4)).collect();
    let oracle = Oracle::new();
    let mut group = c.benchmark_group("xcheck_corpus");
    group.throughput(Throughput::Elements(programs.len() as u64));
    group.sample_size(10);
    group.bench_function("differential", |b| {
        b.iter(|| {
            let mut matrix = Matrix::new();
            for program in &programs {
                matrix.absorb(&oracle.differential_with(program, &scripts));
            }
            assert_eq!(matrix.false_negatives(), 0);
            matrix.totals().0
        });
    });
    let executor = Executor::new();
    group.bench_function("execute_only", |b| {
        b.iter(|| {
            programs
                .iter()
                .flat_map(|p| scripts.iter().map(|s| executor.run(p, s).events.len()))
                .sum::<usize>()
        });
    });
    group.finish();
}

fn bench_fixer(c: &mut Criterion) {
    let corpus = listings::vulnerable_corpus();
    let fixer = Fixer::new();
    c.bench_function("fixer_full_corpus", |b| {
        b.iter(|| corpus.iter().map(|p| fixer.fix(p).1.len()).sum::<usize>());
    });
}

fn bench_dsl(c: &mut Criterion) {
    let corpus = whole_corpus();
    let texts: Vec<String> = corpus.iter().map(pretty_program).collect();
    let bytes: usize = texts.iter().map(String::len).sum();
    let mut group = c.benchmark_group("dsl");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("pretty_full_corpus", |b| {
        b.iter(|| corpus.iter().map(|p| pretty_program(p).len()).sum::<usize>());
    });
    group.bench_function("parse_full_corpus", |b| {
        b.iter(|| {
            texts.iter().map(|t| parse_program(t).expect("corpus parses").vars.len()).sum::<usize>()
        });
    });
    group.bench_function("parse_recovering_full_corpus", |b| {
        b.iter(|| {
            texts
                .iter()
                .map(|t| parse_program_recovering(t).expect("corpus parses").vars.len())
                .sum::<usize>()
        });
    });
    group.finish();
}

fn bench_emit(c: &mut Criterion) {
    // Serialization cost of the structured outputs over the full corpus.
    let corpus = whole_corpus();
    let analyzer = Analyzer::new();
    let records: Vec<FileRecord> = corpus
        .iter()
        .map(|p| FileRecord {
            path: format!("{}.pnx", p.name),
            report: Some(analyzer.analyze(p)),
            errors: Vec::new(),
        })
        .collect();
    let mut group = c.benchmark_group("emit");
    group.bench_function("json_full_corpus", |b| {
        b.iter(|| render_json(&records, None, None).len());
    });
    group.bench_function("sarif_full_corpus", |b| {
        b.iter(|| render_sarif(&records).len());
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_corpus_scan, bench_scaling, bench_batch, bench_interprocedural, bench_persistent_cache, bench_xcheck, bench_fixer, bench_dsl, bench_emit
}
criterion_main!(benches);
