//! B2 — runtime-protection overhead: frame push/ret cycles under each
//! stack-protection configuration, with and without the §5.2 shadow
//! stack.
//!
//! Reproduces the shape of the classic StackGuard cost argument: the
//! canary adds a constant per-call cost; the shadow stack adds another.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use pnew_core::student::StudentWorld;
use pnew_core::AttackConfig;
use pnew_runtime::{StackProtection, VarDecl};

fn bench_call_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_cycle");
    let world = StudentWorld::plain();
    let configs = [
        ("none", StackProtection::None, false),
        ("frame-pointer", StackProtection::FramePointer, false),
        ("stackguard", StackProtection::StackGuard, false),
        ("stackguard+shadow", StackProtection::StackGuard, true),
    ];
    for (label, protection, shadow) in configs {
        group.bench_function(label, |b| {
            b.iter_batched_ref(
                || {
                    let mut cfg = AttackConfig::with_protection(protection);
                    cfg.shadow_stack = shadow;
                    world.machine(&cfg)
                },
                |m| {
                    m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))]).unwrap();
                    m.ret().unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_deep_call_chain(c: &mut Criterion) {
    // 64 nested frames pushed and popped, the recursion-heavy shape.
    let world = StudentWorld::plain();
    let mut group = c.benchmark_group("deep_call_chain_64");
    for (label, protection) in
        [("none", StackProtection::None), ("stackguard", StackProtection::StackGuard)]
    {
        group.bench_function(label, |b| {
            b.iter_batched_ref(
                || world.machine(&AttackConfig::with_protection(protection)),
                |m| {
                    for i in 0..64 {
                        m.push_frame(
                            if i % 2 == 0 { "even" } else { "odd" },
                            &[("n", VarDecl::Ty(pnew_object::CxxType::Int))],
                        )
                        .unwrap();
                    }
                    for _ in 0..64 {
                        m.ret().unwrap();
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_call_cycle, bench_deep_call_chain
}
criterion_main!(benches);
