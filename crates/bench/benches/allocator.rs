//! B6 — allocator behaviour under the §4.5 leak pressure.
//!
//! Measures the cost of the vulnerable size-mismatched release discipline
//! versus proper placement delete, and the allocator's churn throughput —
//! the fragmentation the leak induces is visible as the widening gap
//! between the two disciplines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use pnew_core::protect::PlacementPool;
use pnew_core::student::StudentWorld;
use pnew_core::AttackConfig;
use pnew_corpus::workload;

fn bench_release_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("release_discipline");
    let world = StudentWorld::plain();
    for (label, placement_delete) in [("leaky", false), ("placement-delete", true)] {
        for rounds in [64u32, 512] {
            group.bench_with_input(BenchmarkId::new(label, rounds), &rounds, |b, &rounds| {
                b.iter_batched_ref(
                    || world.machine(&AttackConfig::paper()),
                    |m| {
                        let pool = PlacementPool::new(placement_delete);
                        for _ in 0..rounds {
                            let st =
                                pool.allocate_and_replace(m, world.grad, world.student).unwrap();
                            pool.release(m, st).unwrap();
                        }
                        m.heap_stats().leaked_bytes
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_alloc_churn(c: &mut Criterion) {
    // Allocation/free churn with a realistic student-record workload.
    let world = StudentWorld::plain();
    let population = workload::student_population(7, 256);
    c.bench_function("alloc_churn_256_students", |b| {
        b.iter_batched_ref(
            || world.machine(&AttackConfig::paper()),
            |m| {
                let mut live = Vec::new();
                for s in &population {
                    let class = if s.grad { world.grad } else { world.student };
                    live.push(pnew_core::heap_new(m, class).unwrap());
                    if live.len() > 32 {
                        let victim = live.swap_remove(live.len() / 2);
                        m.heap_free(victim.addr()).unwrap();
                    }
                }
                for obj in live {
                    m.heap_free(obj.addr()).unwrap();
                }
                m.heap_stats().total_allocs
            },
            BatchSize::SmallInput,
        );
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_release_disciplines, bench_alloc_churn
}
criterion_main!(benches);
