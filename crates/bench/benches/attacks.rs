//! B5 — attack-scenario throughput: end-to-end cost of each experiment
//! under the paper configuration, plus the same scenario defended (the
//! macro view of the protection overheads).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pnew_core::{AttackConfig, Defense};
use pnew_corpus::scenarios;

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_scenarios");
    let cfg = AttackConfig::paper();
    for sc in scenarios() {
        // The DoS and leak scenarios intentionally run to exhaustion;
        // bench them separately below.
        if matches!(sc.experiment, "E18" | "E19") {
            continue;
        }
        group.bench_function(sc.experiment, |b| {
            b.iter(|| (sc.run)(&cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_exhaustion_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_exhaustion");
    group.sample_size(10);
    let cfg = AttackConfig::paper();
    for sc in scenarios() {
        if !matches!(sc.experiment, "E18" | "E19") {
            continue;
        }
        group.bench_function(sc.experiment, |b| {
            b.iter(|| (sc.run)(&cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_defended_vs_vulnerable(c: &mut Criterion) {
    // The macro cost of §5.1 correct coding on a representative scenario
    // (Listing 11 — the flagship bss overflow).
    let mut group = c.benchmark_group("defense_macro_cost");
    for (label, cfg) in [
        ("vulnerable", AttackConfig::paper()),
        ("correct-coding", AttackConfig::with_defense(Defense::correct_coding())),
        ("intercept", AttackConfig::with_defense(Defense::intercept())),
    ] {
        group.bench_with_input(BenchmarkId::new("listing-11", label), &cfg, |b, cfg| {
            b.iter(|| pnew_core::attacks::bss_overflow::run(cfg).unwrap());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scenarios, bench_exhaustion_scenarios, bench_defended_vs_vulnerable
}
criterion_main!(benches);
