//! Experiment harness: computes every table of EXPERIMENTS.md from live
//! runs.
//!
//! The `report` binary (`cargo run -p pnew-bench --bin report`) prints the
//! tables; the Criterion benches (`cargo bench`) measure the performance
//! dimensions (placement-check overhead, canary/shadow-stack overhead,
//! sanitization cost, detector throughput, allocator behaviour under leak
//! pressure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use pnew_core::attacks::{self, run_all};
use pnew_core::{AttackConfig, AttackKind, AttackReport, Defense};
use pnew_corpus::{benign, listings, scenarios, workload};
use pnew_detector::{Analyzer, BaselineChecker, BatchEngine, Fixer, Severity};
use pnew_object::LayoutPolicy;
use pnew_runtime::StackProtection;

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id (`E1`…`E22`).
    pub id: String,
    /// Human title (paper reference).
    pub title: String,
    /// Pre-formatted body.
    pub body: String,
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "{}", self.body)
    }
}

fn fmt_report(report: &AttackReport) -> String {
    let mut out = format!("  verdict: {}\n", report.verdict());
    for e in &report.evidence {
        let _ = writeln!(out, "  | {e}");
    }
    for (k, v) in &report.measurements {
        let _ = writeln!(out, "  | {k} = {v}");
    }
    out
}

/// E1–E19: one table per runnable scenario under the paper platform.
pub fn scenario_tables() -> Vec<Table> {
    scenarios()
        .into_iter()
        .map(|sc| {
            let report = (sc.run)(&AttackConfig::paper()).expect("scenario runs");
            Table {
                id: sc.experiment.to_owned(),
                title: format!("{} ({})", sc.listing, report.kind.paper_ref()),
                body: fmt_report(&report),
            }
        })
        .collect()
}

/// E3/E4 sub-table: the StackGuard experiment across protections and
/// strategies.
pub fn stackguard_table() -> Table {
    let mut body =
        format!("  {:<16} {:<11} {:>14} verdict\n", "protection", "strategy", "canary intact");
    for protection in
        [StackProtection::None, StackProtection::FramePointer, StackProtection::StackGuard]
    {
        for (name, run) in [
            ("naive", attacks::stack_smash::run_naive as attacks::AttackFn),
            ("selective", attacks::stack_smash::run_selective),
        ] {
            let report = run(&AttackConfig::with_protection(protection)).expect("runs");
            let canary = report.measurement("canary_intact").map_or("n/a".into(), |v| {
                if v.is_nan() {
                    "n/a".into()
                } else {
                    format!("{}", v == 1.0)
                }
            });
            let _ = writeln!(
                body,
                "  {:<16} {:<11} {:>14} {}",
                protection.to_string(),
                name,
                canary,
                report.verdict()
            );
        }
    }
    // The second classic bypass: canary replay via a stale-stack leak.
    let replay = attacks::stack_smash::run_canary_replay(&AttackConfig::paper()).expect("runs");
    let _ = writeln!(
        body,
        "  {:<16} {:<11} {:>14} {}",
        "stackguard",
        "replay",
        replay.measurement("canary_intact").map(|v| v == 1.0).unwrap_or(false),
        replay.verdict()
    );
    Table {
        id: "E3/E4".into(),
        title: "Listing 13 under every stack protection (§3.6.1, §5.2)".into(),
        body,
    }
}

/// E20: the protection matrix — attack × defense verdicts.
pub fn protection_matrix() -> Table {
    let configs: Vec<(&str, AttackConfig)> = vec![
        ("none", AttackConfig::with_defense(Defense::none())),
        ("correct-coding", AttackConfig::with_defense(Defense::correct_coding())),
        ("intercept", AttackConfig::with_defense(Defense::intercept())),
        ("shadow-stack", AttackConfig { shadow_stack: true, ..AttackConfig::paper() }),
    ];
    let runs: Vec<(&str, Vec<AttackReport>)> =
        configs.iter().map(|(label, cfg)| (*label, run_all(cfg).expect("matrix runs"))).collect();

    let mut body = format!("  {:<22}", "attack");
    for (label, _) in &runs {
        let _ = write!(body, " {label:>16}");
    }
    body.push('\n');
    for (i, kind) in AttackKind::ALL.iter().enumerate() {
        let _ = write!(body, "  {:<22}", kind.name());
        for (_, reports) in &runs {
            let r = &reports[i];
            let cell = if r.succeeded {
                "SUCCEEDS"
            } else if r.detected_by.is_some() {
                "detected"
            } else if r.blocked_by.is_some() {
                "blocked"
            } else {
                "fails"
            };
            let _ = write!(body, " {cell:>16}");
        }
        body.push('\n');
    }
    Table { id: "E20".into(), title: "protection matrix: attack × defense (§5)".into(), body }
}

/// E21 results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorRates {
    /// Fraction of vulnerable listings our analyzer flags.
    pub analyzer_detection: f64,
    /// Fraction the traditional baseline flags.
    pub baseline_detection: f64,
    /// Warning-level false positives on the benign corpus.
    pub analyzer_false_positives: f64,
    /// Corpus sizes `(vulnerable, benign)`.
    pub corpus: (usize, usize),
}

/// Computes the E21 rates.
pub fn detector_rates() -> DetectorRates {
    let analyzer = Analyzer::new();
    let baseline = BaselineChecker::new();
    let vulnerable = listings::vulnerable_corpus();
    let benign = benign::benign_corpus();
    DetectorRates {
        analyzer_detection: vulnerable.iter().filter(|p| analyzer.analyze(p).detected()).count()
            as f64
            / vulnerable.len() as f64,
        baseline_detection: vulnerable.iter().filter(|p| baseline.analyze(p).detected()).count()
            as f64
            / vulnerable.len() as f64,
        analyzer_false_positives: benign
            .iter()
            .filter(|p| analyzer.analyze(p).detected_at(Severity::Warning))
            .count() as f64
            / benign.len() as f64,
        corpus: (vulnerable.len(), benign.len()),
    }
}

/// E21: the coverage table.
pub fn detector_table() -> Table {
    let analyzer = Analyzer::new();
    let baseline = BaselineChecker::new();
    let mut body = format!("  {:<34} {:>9} {:>9}\n", "listing", "analyzer", "baseline");
    for prog in listings::vulnerable_corpus() {
        let a = analyzer.analyze(&prog).detected();
        let b = baseline.analyze(&prog).detected();
        let _ = writeln!(
            body,
            "  {:<34} {:>9} {:>9}",
            prog.name,
            if a { "FLAGGED" } else { "miss" },
            if b { "FLAGGED" } else { "miss" }
        );
    }
    let rates = detector_rates();
    let _ = writeln!(
        body,
        "  detection: analyzer {:.0}% vs baseline {:.0}%; analyzer false positives {:.0}% over {} benign programs",
        rates.analyzer_detection * 100.0,
        rates.baseline_detection * 100.0,
        rates.analyzer_false_positives * 100.0,
        rates.corpus.1
    );
    Table {
        id: "E21".into(),
        title: "detector coverage vs the traditional baseline (§1, §7)".into(),
        body,
    }
}

/// E22: the layout-ablation table.
pub fn ablation_table() -> Table {
    let mut body = format!(
        "  {:<12} {:>15} {:>19} {:>12} {}\n",
        "policy", "sizeof(Student)", "sizeof(GradStudent)", "L15 padding", "L15 verdict"
    );
    for (label, policy) in [
        ("paper", LayoutPolicy::paper()),
        ("i386-abi", LayoutPolicy::i386_abi()),
        ("lp64", LayoutPolicy::lp64()),
    ] {
        let world = pnew_core::student::StudentWorld::plain();
        let s = world.registry.size_of(world.student, &policy).unwrap();
        let g = world.registry.size_of(world.grad, &policy).unwrap();
        let cfg = AttackConfig { policy, ..AttackConfig::paper() };
        let report = attacks::stack_local::run(&cfg).expect("runs");
        let _ = writeln!(
            body,
            "  {:<12} {:>15} {:>19} {:>12} {}",
            label,
            s,
            g,
            report.measurement("padding_bytes").unwrap_or(f64::NAN),
            report.verdict()
        );
    }
    Table {
        id: "E22".into(),
        title: "layout ablation: data model / double alignment (§3.7.2)".into(),
        body,
    }
}

/// E23: automatic remediation — findings before/after the §7 fixer.
pub fn fixer_table() -> Table {
    let analyzer = Analyzer::new();
    let fixer = Fixer::new();
    let mut body =
        format!("  {:<34} {:>8} {:>7} {:>8}\n", "listing", "findings", "fixes", "residual");
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for prog in listings::vulnerable_corpus() {
        let before = analyzer
            .analyze(&prog)
            .findings
            .iter()
            .filter(|f| f.severity >= Severity::Warning)
            .count();
        let (fixed, fixes) = fixer.fix(&prog);
        let after = analyzer
            .analyze(&fixed)
            .findings
            .iter()
            .filter(|f| f.severity >= Severity::Warning)
            .count();
        total_before += before;
        total_after += after;
        let _ = writeln!(body, "  {:<34} {:>8} {:>7} {:>8}", prog.name, before, fixes.len(), after);
    }
    let _ = writeln!(
        body,
        "  total warning-level findings: {total_before} before, {total_after} after automatic remediation"
    );
    Table {
        id: "E23".into(),
        title: "automatic remediation (§7: \"automatically addressing these vulnerabilities\")"
            .into(),
        body,
    }
}

/// E24: the ASLR ablation — control-flow vs data-only attacks under
/// randomized layouts.
pub fn aslr_table() -> Table {
    const TRIALS: u32 = 50;
    let mut body = format!(
        "  {:<14} {:<8} {:>8} {:>8} {:>8} {:>13}\n",
        "attack family", "aslr", "trials", "hijacks", "crashes", "success rate"
    );
    let rows = [
        ("control-flow", false, attacks::aslr::control_flow_trials(TRIALS, false)),
        ("control-flow", true, attacks::aslr::control_flow_trials(TRIALS, true)),
        ("cf + info leak", true, attacks::aslr::leak_assisted_trials(TRIALS)),
        ("data-only", false, attacks::aslr::data_only_trials(TRIALS, false)),
        ("data-only", true, attacks::aslr::data_only_trials(TRIALS, true)),
    ];
    for (family, aslr, outcome) in rows {
        let o = outcome.expect("aslr trials run");
        let _ = writeln!(
            body,
            "  {:<14} {:<8} {:>8} {:>8} {:>8} {:>12.0}%",
            family,
            if aslr { "on" } else { "off" },
            o.trials,
            o.successes,
            o.crashes,
            o.success_rate() * 100.0
        );
    }
    body.push_str(
        "  ASLR stops the absolute-address (control-flow) attacks and none of the\n  relative, data-only ones; a §4.3 information leak of one code pointer\n  restores the control-flow attack to 100%.\n",
    );
    Table {
        id: "E24".into(),
        title: "ASLR ablation: absolute-address vs relative attacks (extension)".into(),
        body,
    }
}

/// E26: heap-metadata exploitation under classic vs hardened allocators.
pub fn heap_metadata_table() -> Table {
    let o = attacks::heap_overflow::run_metadata_attack(&AttackConfig::paper()).expect("runs");
    let mut body = String::new();
    let _ = writeln!(
        body,
        "  classic (header-trusting) allocator: overlap achieved = {}, victim rewritten = {}",
        o.overlap_achieved, o.victim_overwritten
    );
    let _ = writeln!(
        body,
        "  hardened (checking) allocator:       aborts at free() = {}",
        o.hardened_detects
    );
    body.push_str(
        "  one forged header (size + magic, written through the placed object's ssn[])\n  turns the Listing 12 overflow into an arbitrary overlapping allocation.\n",
    );
    Table {
        id: "E26".into(),
        title: "heap-metadata exploitation (§3.5.1 / §6 w00w00)".into(),
        body,
    }
}

/// E25: the §5.1 partial-sanitization hazard.
pub fn padding_leak_table() -> Table {
    let o = attacks::info_leak::run_padding_leak(&AttackConfig::paper()).expect("runs");
    let mut body = String::new();
    let _ = writeln!(
        body,
        "  SessionRecord {{ char; double; char }}: sizeof {} = {} field bytes + {} padding bytes",
        o.object_size, o.field_bytes, o.padding_bytes
    );
    let _ = writeln!(
        body,
        "  secret bytes recoverable after field-wise memset: {}  (every padding byte)",
        o.leaked_after_partial
    );
    let _ = writeln!(
        body,
        "  secret bytes recoverable after full-arena memset: {}",
        o.leaked_after_full
    );
    body.push_str("  §5.1: \"The bytes used for padding might contain data from A.\"\n");
    Table {
        id: "E25".into(),
        title: "partial-sanitization hazard: padding keeps the secret (§5.1)".into(),
        body,
    }
}

/// All tables, in experiment order.
/// E27: batch analysis throughput — serial vs parallel vs cached scans
/// of a generated 500-program corpus through the detector's
/// [`BatchEngine`].
pub fn batch_throughput_table() -> Table {
    let programs = workload::corpus(42, 500);
    let stmts: usize = programs.iter().map(pnew_detector::Program::stmt_count).sum();

    let serial_engine = BatchEngine::new(Analyzer::new()).with_jobs(1);
    let (serial_reports, serial) = serial_engine.scan_with_stats(&programs);
    let parallel_engine = BatchEngine::new(Analyzer::new());
    let (parallel_reports, parallel) = parallel_engine.scan_with_stats(&programs);
    // Cached: rescan the parallel engine's warm cache.
    let (cached_reports, cached) = parallel_engine.scan_with_stats(&programs);
    assert_eq!(serial_reports, parallel_reports, "worker count changed the findings");
    assert_eq!(serial_reports, cached_reports, "the cache changed the findings");

    let mut body = format!(
        "  {:<10} {:>5} {:>12} {:>14} {:>9} {:>9}\n",
        "mode", "jobs", "elapsed (ms)", "programs/sec", "speedup", "hit rate"
    );
    let serial_secs = serial.elapsed.as_secs_f64();
    for (mode, stats) in [("serial", serial), ("parallel", parallel), ("cached", cached)] {
        let secs = stats.elapsed.as_secs_f64();
        let speedup = if secs > 0.0 { serial_secs / secs } else { f64::INFINITY };
        let _ = writeln!(
            body,
            "  {:<10} {:>5} {:>12.2} {:>14.0} {:>8.2}x {:>8.0}%",
            mode,
            stats.jobs,
            secs * 1e3,
            stats.programs_per_sec(),
            speedup,
            stats.cache_hit_rate() * 100.0
        );
    }
    let _ = writeln!(
        body,
        "  corpus: {} generated programs, {stmts} statements; findings identical across modes",
        programs.len()
    );
    Table {
        id: "E27".into(),
        title: "batch analysis throughput: serial vs parallel vs cached (pncheck engine)".into(),
        body,
    }
}

/// Every experiment table, in report order.
pub fn all_tables() -> Vec<Table> {
    let mut tables = scenario_tables();
    tables.push(stackguard_table());
    tables.push(protection_matrix());
    tables.push(detector_table());
    tables.push(ablation_table());
    tables.push(fixer_table());
    tables.push(aslr_table());
    tables.push(padding_leak_table());
    tables.push(heap_metadata_table());
    tables.push(batch_throughput_table());
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_the_claims() {
        let r = detector_rates();
        assert_eq!(r.analyzer_detection, 1.0);
        assert_eq!(r.baseline_detection, 0.0);
        assert_eq!(r.analyzer_false_positives, 0.0);
        assert!(r.corpus.0 >= 24 && r.corpus.1 >= 17);
    }

    #[test]
    fn all_tables_render() {
        let tables = all_tables();
        assert_eq!(tables.len(), 20 + 9);
        for t in &tables {
            assert!(!t.body.is_empty(), "{} is empty", t.id);
            let rendered = t.to_string();
            assert!(rendered.contains(&t.id));
        }
    }

    #[test]
    fn matrix_has_one_row_per_attack() {
        let m = protection_matrix();
        let rows = m.body.lines().count();
        assert_eq!(rows, 1 + AttackKind::ALL.len());
    }

    #[test]
    fn fixer_table_reaches_zero_residual() {
        let t = fixer_table();
        assert!(t.body.contains("0 after automatic remediation"), "{}", t.body);
    }

    #[test]
    fn heap_metadata_table_shows_both_allocators() {
        let t = heap_metadata_table();
        assert!(t.body.contains("victim rewritten = true"), "{}", t.body);
        assert!(t.body.contains("aborts at free() = true"), "{}", t.body);
    }

    #[test]
    fn padding_leak_table_quotes_the_numbers() {
        let t = padding_leak_table();
        assert!(t.body.contains("14"), "{}", t.body);
        assert!(t.body.contains("memset: 0"), "{}", t.body);
    }

    #[test]
    fn aslr_table_shows_the_contrast() {
        let t = aslr_table();
        assert!(t.body.contains("100%"), "{}", t.body);
        assert!(t.body.contains("0%"), "{}", t.body);
    }

    #[test]
    fn stackguard_table_shows_the_bypass() {
        let t = stackguard_table();
        assert!(t.body.contains("selective"));
        assert!(t.body.contains("replay"));
        assert!(t.body.contains("DETECTED by stackguard"));
        assert!(t.body.contains("SUCCEEDS"));
    }
}
