//! Machine-readable detector benchmark: measures the throughput claims
//! of the summary/cache work and writes them as JSON.
//!
//! ```text
//! usage: bench_detector [--smoke] [--out PATH]
//!
//!   --smoke    small corpora and fewer repetitions (CI-sized)
//!   --out PATH where to write the JSON (default: BENCH_detector.json)
//! ```
//!
//! Four dimensions, each the median of repeated runs:
//!
//! * `serial` / `parallel` — batch engine programs/sec over the
//!   generated workload corpus, cold in-memory cache every run;
//! * `warm_memory` — same corpus, served from the in-memory
//!   fingerprint cache;
//! * `disk` — cold source scan (parse + analyze + store) vs warm
//!   `--cache-dir`-style rescan where every file comes off disk;
//! * `daemon` — warm `analyze` requests/sec through the resident
//!   `pncheckd` protocol layer (request parse + cache hit + envelope);
//! * `fleet` — aggregate warm requests/sec over two sharded replicas
//!   (`--shard 0/2` / `--shard 1/2`, indexed backend), each serving the
//!   fingerprint slice it owns;
//! * `interval` — analyzer throughput over the guarded corpus, the
//!   value-range-analysis stress shape (guards, clamp loops, derived
//!   lengths);
//! * `interprocedural` — summary-based vs inline analysis over the
//!   deep call-graph corpus (depth 16, fan-in 8);
//! * `delta` — incremental rescan after one edited file in a large
//!   on-disk corpus (`delta_edit_ms`, `delta_speedup` vs the cold
//!   tracked scan), plus the hub-edit worst case over the fan-in
//!   corpus, where one edit invalidates a wide summary cone.

use std::path::Path;
use std::time::Instant;

use pnew_corpus::workload;
use pnew_detector::server::{Server, ServerConfig};
use pnew_detector::{
    pretty_program, source_fingerprint, Analyzer, AnalyzerConfig, BackendKind, BatchEngine,
    PersistentCache, ShardSpec,
};

/// A JSON string literal for embedding a source in an analyze request.
fn json_str(text: &str) -> String {
    let mut out = String::from("\"");
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Median wall-clock seconds of `runs` invocations of `f`.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Measures one incremental-edit scenario: writes `sources` under
/// `dir`, takes a cold tracked scan, then alternates one file between
/// its original text and `edited` and times the `rescan_delta` that
/// re-analyzes exactly that file — once with the edit named in the
/// hint (the editor-integration fast path: no stat sweep) and once
/// unhinted (the watch-mode stat sweep over every tracked file).
/// Returns `(cold_secs, hinted_secs, sweep_secs, cone_functions)`.
fn delta_scenario(
    dir: &Path,
    sources: &[String],
    edited: &str,
    runs: usize,
) -> (f64, f64, f64, usize) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("delta corpus dir");
    let paths: Vec<String> = sources
        .iter()
        .enumerate()
        .map(|(i, src)| {
            let path = dir.join(format!("f{i:05}.pnx"));
            std::fs::write(&path, src).expect("corpus file writes");
            path.to_string_lossy().into_owned()
        })
        .collect();

    let engine = BatchEngine::new(Analyzer::new());
    let cold_s = {
        let t = Instant::now();
        let (outcomes, _) = engine.scan_paths_tracked(&paths);
        assert_eq!(outcomes.len(), sources.len());
        t.elapsed().as_secs_f64()
    };

    // Alternate the first file between two texts so every timed rescan
    // sees exactly one changed file (a no-op rescan would flatter the
    // numbers). The ~microsecond file write rides inside the timed
    // region; it is what a real editor-save-to-report cycle pays.
    let target = paths[0].clone();
    let texts = [edited, sources[0].as_str()];
    let mut flip = 0usize;
    let mut cone = 0usize;
    let hint = vec![target.clone()];
    let hinted_s = median_secs(runs.max(2), || {
        std::fs::write(&target, texts[flip % 2]).expect("edit writes");
        flip += 1;
        let (_, _, delta) = engine.rescan_delta(&paths, Some(&hint));
        assert_eq!(delta.changed_files, 1, "exactly the edited file re-analyzes");
        assert_eq!(delta.unchanged_files, sources.len() - 1);
        cone = cone.max(delta.cone_functions);
    });
    let sweep_s = median_secs(runs.max(2), || {
        std::fs::write(&target, texts[flip % 2]).expect("edit writes");
        flip += 1;
        let (_, _, delta) = engine.rescan_delta(&paths, None);
        assert_eq!(delta.changed_files, 1, "the stat sweep finds the edit");
    });
    let _ = std::fs::remove_dir_all(dir);
    (cold_s, hinted_s, sweep_s, cone)
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_detector.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("bench_detector: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bench_detector: unknown argument {other:?}");
                eprintln!("usage: bench_detector [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let (corpus_size, deep_programs, runs) = if smoke { (150, 1, 3) } else { (1000, 4, 5) };
    let programs = workload::corpus(42, corpus_size);
    let sources: Vec<String> = programs.iter().map(pretty_program).collect();

    // Batch throughput: serial, parallel, warm in-memory cache.
    let serial = BatchEngine::new(Analyzer::new()).with_jobs(1);
    let serial_s = median_secs(runs, || {
        serial.clear_cache();
        serial.scan(&programs);
    });
    // Measure parallel throughput at the machine's detected
    // parallelism, and record it so runs on different hosts compare.
    let available_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel = BatchEngine::new(Analyzer::new()).with_jobs(available_cores);
    let parallel_jobs = parallel.jobs();
    let parallel_s = median_secs(runs, || {
        parallel.clear_cache();
        parallel.scan(&programs);
    });
    let warm_mem = BatchEngine::new(Analyzer::new());
    warm_mem.scan(&programs);
    let warm_mem_s = median_secs(runs, || {
        warm_mem.scan(&programs);
    });

    // Disk tier: cold populate vs warm rescan. The warm engine drops its
    // in-memory tier every run, so the rescan exercises only the
    // persistent cache — the `pncheck --cache-dir` warm-restart path.
    let dir = std::env::temp_dir().join(format!("pnx-bench-detector-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let analyzer = Analyzer::new();
    let cache = PersistentCache::open(&dir, analyzer.config()).expect("cache dir opens");
    let disk = BatchEngine::new(analyzer).with_persistent_cache(cache);
    let cold_disk_s = {
        let t = Instant::now();
        let (_, stats) = disk.scan_sources_with_stats(&sources);
        assert_eq!(stats.persistent_hits, 0, "cold run must not hit");
        t.elapsed().as_secs_f64()
    };
    let warm_disk_s = median_secs(runs, || {
        disk.clear_cache();
        let (_, stats) = disk.scan_sources_with_stats(&sources);
        assert_eq!(stats.persistent_hits as usize, sources.len(), "warm run must be all hits");
    });
    let _ = std::fs::remove_dir_all(&dir);

    // Daemon: warm analyze requests/sec through the pncheckd protocol
    // layer in-process — request parsing, the source-fingerprint cache
    // hit, and envelope rendering, without TCP or process-spawn noise.
    let server = Server::new(ServerConfig::default()).expect("server builds");
    let requests: Vec<String> = sources
        .iter()
        .map(|s| format!("{{\"op\":\"analyze\",\"source\":{}}}", json_str(s)))
        .collect();
    for request in &requests {
        server.handle_line(request); // warm every source
    }
    let daemon_warm_s = median_secs(runs, || {
        for request in &requests {
            let reply = server.handle_line(request);
            assert!(reply.header.contains("\"ok\":true"), "{}", reply.header);
        }
    });

    // Fleet: two sharded replicas over indexed single-file backends
    // split the warm fingerprint space. Each replica is warmed on — and
    // then serves — only the slice of the corpus its shard owns, routed
    // by the same source fingerprint the shard filter keys on. On this
    // one host the replicas are timed back to back; the fleet they
    // model runs on independent hosts concurrently, so the aggregate
    // rate is total requests over the slowest replica's wall clock.
    let fleet_replicas: u32 = 2;
    let mut fleet_requests = 0usize;
    let mut fleet_slowest_s = 0.0f64;
    for index in 0..fleet_replicas {
        let shard = ShardSpec { index, count: fleet_replicas };
        let dir =
            std::env::temp_dir().join(format!("pnx-bench-fleet-{index}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let replica = Server::new(ServerConfig {
            cache_dir: Some(dir.clone()),
            cache_backend: BackendKind::Indexed,
            shard: Some(shard),
            ..ServerConfig::default()
        })
        .expect("replica builds");
        let slice: Vec<&String> = sources
            .iter()
            .zip(&requests)
            .filter(|(source, _)| shard.owns(source_fingerprint(source)))
            .map(|(_, request)| request)
            .collect();
        for request in &slice {
            replica.handle_line(request); // warm the owned slice
        }
        let replica_s = median_secs(runs, || {
            for request in &slice {
                let reply = replica.handle_line(request);
                assert!(reply.header.contains("\"ok\":true"), "{}", reply.header);
            }
        });
        fleet_requests += slice.len();
        fleet_slowest_s = fleet_slowest_s.max(replica_s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Value-range analysis: analyzer throughput over the guarded
    // corpus, whose shapes (two-sided guards, clamp loops, derived
    // lengths) exercise the interval lattice — refinement, joins,
    // widening — harder than the mixed workload corpus does.
    let guarded: Vec<_> =
        workload::guarded_corpus(42, corpus_size).into_iter().map(|c| c.program).collect();
    let interval_engine = BatchEngine::new(Analyzer::new()).with_jobs(1);
    let interval_s = median_secs(runs, || {
        interval_engine.clear_cache();
        interval_engine.scan(&guarded);
    });

    // Interprocedural: summary vs inline over the deep call graphs.
    let deep = workload::deep_call_corpus(42, deep_programs);
    let summary_analyzer = Analyzer::new();
    let summary_s = median_secs(runs, || {
        for p in &deep {
            summary_analyzer.analyze(p);
        }
    });
    let inline_analyzer =
        Analyzer::with_config(AnalyzerConfig { use_summaries: false, ..AnalyzerConfig::default() });
    // Inline re-walks exponentially many paths; one timed run is plenty.
    let inline_runs = if smoke { 1 } else { 3 };
    let inline_s = median_secs(inline_runs, || {
        for p in &deep {
            inline_analyzer.analyze(p);
        }
    });

    // Delta: one edited file in a large on-disk corpus. The cold
    // tracked scan is the from-scratch cost the incremental path
    // amortizes away; the hinted rescan re-analyzes only the edit. The
    // corpus mixes a fan-in program in every tenth slot so its analysis
    // cost has the interprocedural weight of real code, not just the
    // small leaf programs of `workload::corpus`.
    let delta_files = if smoke { 300 } else { 10_000 };
    let small = workload::corpus(7, delta_files);
    let heavy = workload::fan_in_call_corpus(7, delta_files / 10);
    let delta_sources: Vec<String> =
        (0..delta_files)
            .map(|i| {
                if i % 10 == 5 {
                    pretty_program(&heavy[i / 10])
                } else {
                    pretty_program(&small[i])
                }
            })
            .collect();
    let edited = pretty_program(&workload::random_vulnerable_program(0xed17));
    let delta_dir = std::env::temp_dir().join(format!("pnx-bench-delta-{}", std::process::id()));
    let (delta_cold_s, delta_edit_s, delta_sweep_s, _) =
        delta_scenario(&delta_dir, &delta_sources, &edited, runs);

    // Hub edit: the fan-in corpus's worst case — the edited program's
    // chain functions feed CALL_WIDTH callers per level, so the one
    // edit invalidates the widest summary cone the workload generates.
    let hub_files = if smoke { 30 } else { 200 };
    let hub_sources: Vec<String> =
        workload::fan_in_call_corpus(7, hub_files).iter().map(pretty_program).collect();
    let hub_edited = pretty_program(&workload::fan_in_call_corpus(8, 1).remove(0));
    let hub_dir = std::env::temp_dir().join(format!("pnx-bench-hub-{}", std::process::id()));
    let (_, hub_edit_s, _, hub_cone) = delta_scenario(&hub_dir, &hub_sources, &hub_edited, runs);

    let per_sec = |secs: f64, n: usize| if secs > 0.0 { n as f64 / secs } else { 0.0 };
    let ratio = |slow: f64, fast: f64| if fast > 0.0 { slow / fast } else { 0.0 };
    let json = format!(
        "{{\n  \"schema\": \"pnx-bench-detector/2\",\n  \"mode\": \"{}\",\n  \"corpus_programs\": {},\n  \"runs_per_measurement\": {},\n  \"available_cores\": {},\n  \"serial_programs_per_sec\": {:.1},\n  \"parallel_jobs\": {},\n  \"parallel_programs_per_sec\": {:.1},\n  \"warm_memory_cache_programs_per_sec\": {:.1},\n  \"cold_disk_scan_s\": {:.4},\n  \"warm_disk_scan_s\": {:.4},\n  \"warm_disk_speedup\": {:.1},\n  \"daemon_warm_requests_per_sec\": {:.1},\n  \"fleet_replicas\": {},\n  \"fleet_backend\": \"indexed\",\n  \"fleet_requests\": {},\n  \"fleet_warm_requests_per_sec\": {:.1},\n  \"guarded_corpus_programs\": {},\n  \"interval_programs_per_sec\": {:.1},\n  \"deep_corpus\": {{ \"programs\": {}, \"depth\": {}, \"fan_in\": {} }},\n  \"summary_scan_s\": {:.4},\n  \"inline_scan_s\": {:.4},\n  \"summary_speedup\": {:.1},\n  \"delta_corpus_files\": {},\n  \"delta_cold_scan_s\": {:.4},\n  \"delta_edit_ms\": {:.3},\n  \"delta_stat_sweep_ms\": {:.3},\n  \"delta_speedup\": {:.1},\n  \"hub_corpus_files\": {},\n  \"hub_edit_ms\": {:.3},\n  \"hub_cone_functions\": {}\n}}\n",
        if smoke { "smoke" } else { "full" },
        corpus_size,
        runs,
        available_cores,
        per_sec(serial_s, corpus_size),
        parallel_jobs,
        per_sec(parallel_s, corpus_size),
        per_sec(warm_mem_s, corpus_size),
        cold_disk_s,
        warm_disk_s,
        ratio(cold_disk_s, warm_disk_s),
        per_sec(daemon_warm_s, corpus_size),
        fleet_replicas,
        fleet_requests,
        per_sec(fleet_slowest_s, fleet_requests),
        corpus_size,
        per_sec(interval_s, corpus_size),
        deep_programs,
        workload::CALL_DEPTH,
        workload::CALL_WIDTH,
        summary_s,
        inline_s,
        ratio(inline_s, summary_s),
        delta_files,
        delta_cold_s,
        delta_edit_s * 1e3,
        delta_sweep_s * 1e3,
        ratio(delta_cold_s, delta_edit_s),
        hub_files,
        hub_edit_s * 1e3,
        hub_cone,
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_detector: cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!(
        "bench_detector: summary {:.1}x over inline on deep call graphs, warm disk rescan {:.1}x over cold, delta edit {:.2}ms ({:.0}x over cold scan of {} files)",
        ratio(inline_s, summary_s),
        ratio(cold_disk_s, warm_disk_s),
        delta_edit_s * 1e3,
        ratio(delta_cold_s, delta_edit_s),
        delta_files,
    );
}
