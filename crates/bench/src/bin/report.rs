//! Prints every experiment table of EXPERIMENTS.md from live runs.
//!
//! Usage: `cargo run -p pnew-bench --bin report [E<id>…]`
//! With no arguments, all tables are printed.

fn main() {
    let mut filters: Vec<String> = std::env::args().skip(1).collect();
    if filters.iter().any(|f| f == "--list") {
        for table in pnew_bench::all_tables() {
            println!("{:<8} {}", table.id, table.title);
        }
        return;
    }
    filters.retain(|f| !f.starts_with("--"));
    for table in pnew_bench::all_tables() {
        if filters.is_empty()
            || filters.iter().any(|f| table.id.eq_ignore_ascii_case(f) || table.id.contains(f))
        {
            println!("{table}");
        }
    }
}
