//! Object layout computation.
//!
//! The engine follows the shape of the Itanium C++ ABI as gcc implements it
//! on the paper's platform, restricted to the constructs the paper uses:
//!
//! * the vtable pointer is the **first entry** of a polymorphic object
//!   ("The C++ compiler adds a pointer to the virtual table `*__vptr` in
//!   each instance as the *first entry*" — §3.8.2);
//! * base subobjects come before the derived class's own fields, so a
//!   subclass's extra members sit **past the end** of the superclass
//!   footprint (`ssn[]` at offset `sizeof(Student)` — the geometry every
//!   attack in §3 relies on);
//! * fields are placed in declaration order at their natural alignment,
//!   with tail padding up to the object alignment;
//! * under multiple inheritance, polymorphic non-primary bases keep their
//!   own vtable pointer inside their subobject ("In case of multiple
//!   inheritance, there are more than one vtable pointers in a given
//!   instance" — §3.8.2).
//!
//! Simplifications relative to the full ABI (documented in DESIGN.md): no
//! virtual bases, no empty-base-optimization, and a non-polymorphic primary
//! base of a polymorphic class is placed after the new vptr rather than
//! fused with it. None of the paper's programs exercise those corners.

use std::error::Error;
use std::fmt;

use crate::class::{ClassId, ClassRegistry};
use crate::types::CxxType;
use pnew_memory::DataModel;

/// Layout rules of the simulated platform.
///
/// [`LayoutPolicy::paper`] reproduces the environment of the paper's
/// experiments (Ubuntu 10.04 / gcc 4.4.3 / x86): ILP32 type sizes, with
/// `double` (and objects containing one) aligned to 8 bytes — the alignment
/// gcc gives stack objects on that platform and the value that makes the
/// §3.7.2 padding observation come out exactly as printed. The strict i386
/// struct ABI value (4) is available via [`with_double_align`] for the
/// layout-ablation experiment E22.
///
/// [`with_double_align`]: LayoutPolicy::with_double_align
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutPolicy {
    model: DataModel,
    double_align: u32,
}

impl LayoutPolicy {
    /// The paper's platform: ILP32 with 8-byte-aligned doubles.
    pub fn paper() -> Self {
        LayoutPolicy { model: DataModel::Ilp32, double_align: 8 }
    }

    /// Strict i386 System V struct ABI: ILP32 with 4-byte-aligned doubles.
    pub fn i386_abi() -> Self {
        LayoutPolicy { model: DataModel::Ilp32, double_align: 4 }
    }

    /// x86-64 (LP64) rules, for the ablation experiment.
    pub fn lp64() -> Self {
        LayoutPolicy { model: DataModel::Lp64, double_align: 8 }
    }

    /// Overrides the in-struct alignment of `double`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn with_double_align(mut self, align: u32) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.double_align = align;
        self
    }

    /// The data model.
    pub fn model(&self) -> DataModel {
        self.model
    }

    /// In-struct alignment of `double`.
    pub fn double_align(&self) -> u32 {
        self.double_align
    }

    /// Size of a pointer (and of the vptr slot).
    pub fn pointer_size(&self) -> u32 {
        self.model.pointer_size()
    }
}

impl Default for LayoutPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for LayoutPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (double align {})", self.model, self.double_align)
    }
}

/// Error from layout computation or field-path resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A field path did not resolve in the layout.
    UnknownField {
        /// Name of the class whose layout was queried.
        class: String,
        /// The path that failed to resolve.
        path: String,
    },
    /// An index like `ssn[7]` exceeded the array bound.
    IndexOutOfBounds {
        /// The path containing the index.
        path: String,
        /// The offending index.
        index: u32,
        /// The array length.
        len: u32,
    },
    /// Indexing was applied to a non-array field.
    NotAnArray {
        /// The path that was indexed.
        path: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::UnknownField { class, path } => {
                write!(f, "class {class} has no field at path {path:?}")
            }
            LayoutError::IndexOutOfBounds { path, index, len } => {
                write!(f, "index {index} in {path:?} exceeds array length {len}")
            }
            LayoutError::NotAnArray { path } => {
                write!(f, "field {path:?} is not an array")
            }
        }
    }
}

impl Error for LayoutError {}

/// One addressable field in a computed layout, including fields inherited
/// from bases and fields of embedded class-typed members (flattened with
/// dotted paths such as `stud1.gpa`).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSlot {
    path: String,
    offset: u32,
    size: u32,
    align: u32,
    ty: CxxType,
}

impl FieldSlot {
    /// Dotted path of the field from the object base.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Byte offset from the object base.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// Size of the field in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Alignment of the field in bytes.
    pub fn align(&self) -> u32 {
        self.align
    }

    /// The field type.
    pub fn ty(&self) -> &CxxType {
        &self.ty
    }
}

/// A vtable-pointer slot inside an instance: its offset and the class whose
/// vtable the slot holds after correct construction. For the object's own
/// (and inherited-primary) vptr this is the most-derived class; for an
/// embedded polymorphic member it is the member's class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VptrSlot {
    /// Byte offset of the slot from the object base.
    pub offset: u32,
    /// Class whose vtable address belongs in the slot.
    pub table_class: ClassId,
}

/// The computed memory layout of a class instance.
///
/// # Examples
///
/// ```
/// use pnew_object::{ClassRegistry, CxxType, LayoutPolicy};
///
/// let mut reg = ClassRegistry::new();
/// let student = reg
///     .class("Student")
///     .field("gpa", CxxType::Double)
///     .field("year", CxxType::Int)
///     .field("semester", CxxType::Int)
///     .virtual_method("getInfo")
///     .register();
/// let layout = reg.layout(student, &LayoutPolicy::paper()).unwrap();
/// // vptr first (§3.8.2), then gpa at the next 8-aligned offset.
/// assert_eq!(layout.vptr_offsets(), &[0]);
/// assert_eq!(layout.offset_of("gpa").unwrap(), 8);
/// assert_eq!(layout.size(), 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectLayout {
    class: ClassId,
    class_name: String,
    size: u32,
    align: u32,
    vptr_slots: Vec<VptrSlot>,
    slots: Vec<FieldSlot>,
    base_offsets: Vec<(ClassId, u32)>,
    payload_end: u32,
}

impl ObjectLayout {
    /// Computes the layout of `id` under `policy`.
    ///
    /// # Errors
    ///
    /// Currently infallible for registry-built classes; the `Result` is
    /// kept for forward compatibility with richer type graphs.
    pub fn compute(
        reg: &ClassRegistry,
        id: ClassId,
        policy: &LayoutPolicy,
    ) -> Result<ObjectLayout, LayoutError> {
        let def = reg.def(id);
        let ptr = policy.pointer_size();
        let polymorphic = reg.is_polymorphic(id);
        let primary_is_polymorphic = def.bases().first().is_some_and(|&b| reg.is_polymorphic(b));

        let mut offset: u32 = 0;
        let mut align: u32 = 1;
        let mut vptr_slots: Vec<VptrSlot> = Vec::new();
        let mut slots: Vec<FieldSlot> = Vec::new();
        let mut base_offsets = Vec::new();

        if polymorphic && !primary_is_polymorphic {
            vptr_slots.push(VptrSlot { offset: 0, table_class: id });
            offset = ptr;
            align = align.max(ptr);
        }

        for &base in def.bases() {
            let bl = ObjectLayout::compute(reg, base, policy)?;
            let boff = next_offset(offset, bl.align);
            align = align.max(bl.align);
            for v in &bl.vptr_slots {
                // A slot that held the base's own vtable now holds the
                // derived class's; embedded-member slots keep their class.
                let table_class = if v.table_class == base { id } else { v.table_class };
                vptr_slots.push(VptrSlot { offset: boff + v.offset, table_class });
            }
            for s in &bl.slots {
                slots.push(FieldSlot {
                    path: s.path.clone(),
                    offset: boff + s.offset,
                    size: s.size,
                    align: s.align,
                    ty: s.ty.clone(),
                });
            }
            base_offsets.push((base, boff));
            offset = boff + bl.size;
        }

        for f in def.fields() {
            let (fsize, falign, sub) = match f.ty().as_class() {
                Some(cid) => {
                    let sl = ObjectLayout::compute(reg, cid, policy)?;
                    (sl.size, sl.align, Some(sl))
                }
                None => (
                    f.ty().scalar_size(policy).expect("non-class type has scalar size"),
                    f.ty().scalar_align(policy).expect("non-class type has scalar align"),
                    None,
                ),
            };
            let foff = next_offset(offset, falign);
            align = align.max(falign);
            slots.push(FieldSlot {
                path: f.name().to_owned(),
                offset: foff,
                size: fsize,
                align: falign,
                ty: f.ty().clone(),
            });
            if let Some(sl) = sub {
                for v in &sl.vptr_slots {
                    // Embedded members keep their own vptr; record it so
                    // experiments can target e.g. `stud1.__vptr`.
                    vptr_slots
                        .push(VptrSlot { offset: foff + v.offset, table_class: v.table_class });
                }
                for s in &sl.slots {
                    slots.push(FieldSlot {
                        path: format!("{}.{}", f.name(), s.path),
                        offset: foff + s.offset,
                        size: s.size,
                        align: s.align,
                        ty: s.ty.clone(),
                    });
                }
            }
            offset = foff + fsize;
        }

        let size = next_offset(offset, align).max(1); // empty class: size 1

        Ok(ObjectLayout {
            class: id,
            class_name: def.name().to_owned(),
            size,
            align,
            vptr_slots,
            slots,
            base_offsets,
            payload_end: offset,
        })
    }

    /// The class this layout describes.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The class name.
    pub fn class_name(&self) -> &str {
        &self.class_name
    }

    /// Total instance size including tail padding — `sizeof()`.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Instance alignment.
    pub fn align(&self) -> u32 {
        self.align
    }

    /// All vtable-pointer slots in the instance (empty when the class is
    /// not polymorphic; more than one under multiple inheritance or for
    /// embedded polymorphic members).
    pub fn vptr_slots(&self) -> &[VptrSlot] {
        &self.vptr_slots
    }

    /// Offsets of all vtable pointers in the instance.
    pub fn vptr_offsets(&self) -> Vec<u32> {
        self.vptr_slots.iter().map(|v| v.offset).collect()
    }

    /// Offset of the primary vtable pointer, if polymorphic. Always 0 for
    /// directly polymorphic classes — the §3.8.2 "first entry".
    pub fn primary_vptr_offset(&self) -> Option<u32> {
        self.vptr_slots.first().map(|v| v.offset)
    }

    /// All addressable field slots (inherited, own, and embedded), in
    /// address order within each declaration group.
    pub fn slots(&self) -> &[FieldSlot] {
        &self.slots
    }

    /// Direct base subobject offsets in declaration order.
    pub fn base_offsets(&self) -> &[(ClassId, u32)] {
        &self.base_offsets
    }

    /// Resolves a field path to its slot.
    ///
    /// Paths use dots for embedded members (`stud1.gpa`). Array elements are
    /// addressed with [`element_offset`](Self::element_offset).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownField`] if no slot has this path.
    pub fn field(&self, path: &str) -> Result<&FieldSlot, LayoutError> {
        self.slots.iter().find(|s| s.path == path).ok_or_else(|| LayoutError::UnknownField {
            class: self.class_name.clone(),
            path: path.to_owned(),
        })
    }

    /// Offset of a field path from the object base.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownField`] if the path does not resolve.
    pub fn offset_of(&self, path: &str) -> Result<u32, LayoutError> {
        Ok(self.field(path)?.offset())
    }

    /// Offset of `path[index]` for an array-typed field.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NotAnArray`] if the field is not an array, or
    /// [`LayoutError::IndexOutOfBounds`] if `index` exceeds the bound —
    /// note that the *attacks* never use this method; they compute raw
    /// addresses exactly as the exploited programs do.
    pub fn element_offset(
        &self,
        path: &str,
        index: u32,
        policy: &LayoutPolicy,
    ) -> Result<u32, LayoutError> {
        let slot = self.field(path)?;
        match slot.ty() {
            CxxType::Array(elem, n) => {
                if index >= *n {
                    return Err(LayoutError::IndexOutOfBounds {
                        path: path.to_owned(),
                        index,
                        len: *n,
                    });
                }
                let esize = elem
                    .scalar_size(policy)
                    .expect("array of class not supported in element_offset");
                Ok(slot.offset() + esize * index)
            }
            _ => Err(LayoutError::NotAnArray { path: path.to_owned() }),
        }
    }

    /// Bytes of tail padding between the last member end and `size()`.
    pub fn tail_padding(&self) -> u32 {
        self.size - self.payload_end
    }
}

impl fmt::Display for ObjectLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "class {} (size {}, align {})", self.class_name, self.size, self.align)?;
        for v in &self.vptr_slots {
            writeln!(f, "  +{:<4} __vptr -> vtable of {}", v.offset, v.table_class)?;
        }
        for s in &self.slots {
            writeln!(f, "  +{:<4} {} : {} ({} bytes)", s.offset, s.path, s.ty, s.size)?;
        }
        Ok(())
    }
}

/// First offset at or after `offset` aligned to `align`.
fn next_offset(offset: u32, align: u32) -> u32 {
    (offset + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registers the paper's running example (Listing 1), non-virtual.
    fn running_example(reg: &mut ClassRegistry) -> (ClassId, ClassId) {
        let s = reg
            .class("Student")
            .field("gpa", CxxType::Double)
            .field("year", CxxType::Int)
            .field("semester", CxxType::Int)
            .register();
        let g = reg
            .class("GradStudent")
            .base(s)
            .field("ssn", CxxType::array(CxxType::Int, 3))
            .register();
        (s, g)
    }

    /// Registers the virtual variant from §3.8.2.
    fn virtual_example(reg: &mut ClassRegistry) -> (ClassId, ClassId) {
        let s = reg
            .class("Student")
            .field("gpa", CxxType::Double)
            .field("year", CxxType::Int)
            .field("semester", CxxType::Int)
            .virtual_method("getInfo")
            .register();
        let g = reg
            .class("GradStudent")
            .base(s)
            .field("ssn", CxxType::array(CxxType::Int, 3))
            .virtual_method("getInfo")
            .register();
        (s, g)
    }

    #[test]
    fn student_layout_matches_the_paper() {
        let mut reg = ClassRegistry::new();
        let (s, g) = running_example(&mut reg);
        let p = LayoutPolicy::paper();
        let sl = reg.layout(s, &p).unwrap();
        assert_eq!(sl.size(), 16);
        assert_eq!(sl.align(), 8);
        assert_eq!(sl.offset_of("gpa").unwrap(), 0);
        assert_eq!(sl.offset_of("year").unwrap(), 8);
        assert_eq!(sl.offset_of("semester").unwrap(), 12);
        assert!(sl.vptr_offsets().is_empty());
        assert!(sl.vptr_slots().is_empty());

        let gl = reg.layout(g, &p).unwrap();
        // ssn[] begins exactly at sizeof(Student): the adjacency every
        // §3 attack exploits.
        assert_eq!(gl.offset_of("ssn").unwrap(), 16);
        assert_eq!(gl.size(), 32); // 28 rounded up to align 8
        assert_eq!(gl.tail_padding(), 4);
        // Inherited fields resolve at their base offsets.
        assert_eq!(gl.offset_of("gpa").unwrap(), 0);
        assert_eq!(gl.base_offsets(), &[(s, 0)]);
    }

    #[test]
    fn ssn_element_offsets() {
        let mut reg = ClassRegistry::new();
        let (_, g) = running_example(&mut reg);
        let p = LayoutPolicy::paper();
        let gl = reg.layout(g, &p).unwrap();
        assert_eq!(gl.element_offset("ssn", 0, &p).unwrap(), 16);
        assert_eq!(gl.element_offset("ssn", 1, &p).unwrap(), 20);
        assert_eq!(gl.element_offset("ssn", 2, &p).unwrap(), 24);
        assert!(matches!(
            gl.element_offset("ssn", 3, &p),
            Err(LayoutError::IndexOutOfBounds { len: 3, .. })
        ));
        assert!(matches!(gl.element_offset("gpa", 0, &p), Err(LayoutError::NotAnArray { .. })));
    }

    #[test]
    fn vptr_is_first_entry() {
        // §3.8.2: "The memory location at the 0'th offset inside an
        // instance of Student or GradStudent contains *__vptr."
        let mut reg = ClassRegistry::new();
        let (s, g) = virtual_example(&mut reg);
        let p = LayoutPolicy::paper();
        let sl = reg.layout(s, &p).unwrap();
        assert_eq!(sl.primary_vptr_offset(), Some(0));
        assert_eq!(sl.offset_of("gpa").unwrap(), 8); // vptr 0..4, pad 4..8
        assert_eq!(sl.size(), 24);

        let gl = reg.layout(g, &p).unwrap();
        assert_eq!(gl.primary_vptr_offset(), Some(0)); // shared with base
        assert_eq!(gl.vptr_offsets(), &[0]);
        assert_eq!(gl.offset_of("ssn").unwrap(), 24);
        assert_eq!(gl.size(), 40); // 24 + 12 → 36 → pad to 40
    }

    #[test]
    fn i386_abi_packs_doubles_tighter() {
        let mut reg = ClassRegistry::new();
        let (s, g) = virtual_example(&mut reg);
        let p = LayoutPolicy::i386_abi();
        let sl = reg.layout(s, &p).unwrap();
        assert_eq!(sl.offset_of("gpa").unwrap(), 4); // no pad after vptr
        assert_eq!(sl.size(), 20);
        assert_eq!(sl.align(), 4);
        let gl = reg.layout(g, &p).unwrap();
        assert_eq!(gl.offset_of("ssn").unwrap(), 20);
        assert_eq!(gl.size(), 32);
    }

    #[test]
    fn lp64_doubles_pointer_slots() {
        let mut reg = ClassRegistry::new();
        let (s, _) = virtual_example(&mut reg);
        let p = LayoutPolicy::lp64();
        let sl = reg.layout(s, &p).unwrap();
        assert_eq!(sl.offset_of("gpa").unwrap(), 8); // 8-byte vptr
        assert_eq!(sl.size(), 24);
    }

    #[test]
    fn multiple_inheritance_has_multiple_vptrs() {
        // §3.8.2: "In case of multiple inheritance, there are more than one
        // vtable pointers in a given instance."
        let mut reg = ClassRegistry::new();
        let a = reg.class("A").field("ax", CxxType::Int).virtual_method("fa").register();
        let b = reg.class("B").field("bx", CxxType::Int).virtual_method("fb").register();
        let c = reg.class("C").base(a).base(b).field("cx", CxxType::Int).register();
        let p = LayoutPolicy::paper();
        let cl = reg.layout(c, &p).unwrap();
        assert_eq!(cl.vptr_offsets().len(), 2);
        assert_eq!(cl.vptr_offsets()[0], 0);
        assert_eq!(cl.vptr_offsets()[1], 8); // B subobject at 8
        assert_eq!(cl.offset_of("ax").unwrap(), 4);
        assert_eq!(cl.offset_of("bx").unwrap(), 12);
        assert_eq!(cl.offset_of("cx").unwrap(), 16);
        assert_eq!(cl.size(), 20);
    }

    #[test]
    fn embedded_members_flatten_with_dotted_paths() {
        // Listing 10's MobilePlayer: internal overflow targets live at
        // dotted paths.
        let mut reg = ClassRegistry::new();
        let (s, _) = running_example(&mut reg);
        let mp = reg
            .class("MobilePlayer")
            .field("stud1", CxxType::Class(s))
            .field("stud2", CxxType::Class(s))
            .field("n", CxxType::Int)
            .register();
        let p = LayoutPolicy::paper();
        let l = reg.layout(mp, &p).unwrap();
        assert_eq!(l.offset_of("stud1").unwrap(), 0);
        assert_eq!(l.offset_of("stud1.gpa").unwrap(), 0);
        assert_eq!(l.offset_of("stud2").unwrap(), 16);
        assert_eq!(l.offset_of("stud2.gpa").unwrap(), 16);
        assert_eq!(l.offset_of("stud2.semester").unwrap(), 28);
        assert_eq!(l.offset_of("n").unwrap(), 32);
        assert_eq!(l.size(), 40); // 36 padded to 8
    }

    #[test]
    fn vptr_slot_table_classes() {
        // The derived object's (inherited) vptr slot holds the *derived*
        // vtable; an embedded member's slot holds the member's own.
        let mut reg = ClassRegistry::new();
        let (s, g) = virtual_example(&mut reg);
        let holder = reg.class("Holder").field("stud", CxxType::Class(s)).register();
        let p = LayoutPolicy::paper();
        let gl = reg.layout(g, &p).unwrap();
        assert_eq!(gl.vptr_slots()[0].table_class, g);
        let hl = reg.layout(holder, &p).unwrap();
        assert_eq!(hl.vptr_slots()[0].table_class, s);
    }

    #[test]
    fn embedded_polymorphic_member_contributes_vptr() {
        let mut reg = ClassRegistry::new();
        let (s, _) = virtual_example(&mut reg);
        let holder = reg
            .class("Holder")
            .field("tag", CxxType::Int)
            .field("stud", CxxType::Class(s))
            .register();
        let l = reg.layout(holder, &LayoutPolicy::paper()).unwrap();
        assert_eq!(l.offset_of("stud").unwrap(), 8);
        assert_eq!(l.vptr_offsets(), &[8]); // stud.__vptr
        assert!(l.primary_vptr_offset() == Some(8));
    }

    #[test]
    fn empty_class_has_size_one() {
        let mut reg = ClassRegistry::new();
        let e = reg.class("Empty").register();
        let l = reg.layout(e, &LayoutPolicy::paper()).unwrap();
        assert_eq!(l.size(), 1);
        assert_eq!(l.align(), 1);
    }

    #[test]
    fn polymorphic_empty_class_is_just_a_vptr() {
        let mut reg = ClassRegistry::new();
        let e = reg.class("Iface").virtual_method("f").register();
        let l = reg.layout(e, &LayoutPolicy::paper()).unwrap();
        assert_eq!(l.size(), 4);
        assert_eq!(l.vptr_offsets(), &[0]);
    }

    #[test]
    fn unknown_field_errors_name_the_class() {
        let mut reg = ClassRegistry::new();
        let (s, _) = running_example(&mut reg);
        let l = reg.layout(s, &LayoutPolicy::paper()).unwrap();
        let err = l.offset_of("ssn").unwrap_err();
        assert_eq!(err.to_string(), "class Student has no field at path \"ssn\"");
    }

    #[test]
    fn display_dumps_the_layout() {
        let mut reg = ClassRegistry::new();
        let (_, g) = virtual_example(&mut reg);
        let text = reg.layout(g, &LayoutPolicy::paper()).unwrap().to_string();
        assert!(text.contains("__vptr"));
        assert!(text.contains("ssn"));
        assert!(text.contains("size 40"));
    }

    #[test]
    fn char_fields_pack_without_padding() {
        let mut reg = ClassRegistry::new();
        let c = reg
            .class("Packed")
            .field("a", CxxType::Char)
            .field("b", CxxType::Char)
            .field("c", CxxType::Short)
            .field("d", CxxType::Int)
            .register();
        let l = reg.layout(c, &LayoutPolicy::paper()).unwrap();
        assert_eq!(l.offset_of("a").unwrap(), 0);
        assert_eq!(l.offset_of("b").unwrap(), 1);
        assert_eq!(l.offset_of("c").unwrap(), 2);
        assert_eq!(l.offset_of("d").unwrap(), 4);
        assert_eq!(l.size(), 8);
    }

    #[test]
    fn padding_holes_from_alignment() {
        let mut reg = ClassRegistry::new();
        let c = reg
            .class("Holey")
            .field("a", CxxType::Char)
            .field("d", CxxType::Double)
            .field("b", CxxType::Char)
            .register();
        let l = reg.layout(c, &LayoutPolicy::paper()).unwrap();
        assert_eq!(l.offset_of("d").unwrap(), 8); // 7-byte hole after a
        assert_eq!(l.offset_of("b").unwrap(), 16);
        assert_eq!(l.size(), 24); // tail pad to 8
        assert_eq!(l.tail_padding(), 7);
    }
}
