//! Serialized-object wire format.
//!
//! §2.1(4) and §3.2 of the paper describe programs that receive serialized
//! objects from untrusted peers (web services, AJAX/JSON clients, mobile
//! objects) and "place" them into pre-allocated arenas with placement new.
//! The receiving program trusts the *header* of the serialized object —
//! its claimed class and element count — which is exactly what a malicious
//! peer forges.
//!
//! This module implements that transport. The format is deliberately
//! simple and deliberately attacker-forgeable: a [`WireObject`] can be
//! [`forged`](WireObject::with_count) to claim any count and carry any
//! payload, and the decoder performs only *syntactic* validation (the
//! semantic size check is precisely what vulnerable receivers omit).
//!
//! Layout of the encoded form (all integers little-endian):
//!
//! ```text
//! [u16 name_len][name bytes][u32 count][u32 payload_len][payload bytes]
//! ```
//!
//! # Examples
//!
//! ```
//! use pnew_object::wire::WireObject;
//!
//! // An honest GradStudent record…
//! let honest = WireObject::new("GradStudent", vec![0u8; 32]);
//! // …and a forged one claiming 1000 elements with an oversized payload.
//! let forged = WireObject::new("GradStudent", vec![0x41; 256]).with_count(1000);
//!
//! let bytes = forged.encode();
//! let back = WireObject::decode(&bytes).unwrap();
//! assert_eq!(back.count(), 1000);
//! assert_eq!(back.payload().len(), 256);
//! ```

use std::error::Error;
use std::fmt;

/// Error from decoding a wire object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The class-name bytes were not valid UTF-8.
    BadName,
    /// Trailing bytes followed the payload.
    TrailingBytes {
        /// Number of unexpected trailing bytes.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "wire object truncated: needed {needed} bytes, had {available}")
            }
            WireError::BadName => f.write_str("wire object class name is not valid utf-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "wire object followed by {extra} unexpected trailing bytes")
            }
        }
    }
}

impl Error for WireError {}

/// A serialized object in transit between programs.
///
/// The `count` header is the number of elements/records the sender *claims*
/// the payload holds; nothing ties it to `payload().len()`. Receivers that
/// size placement-new allocations from `count` without checking it against
/// the destination arena reproduce the Listing 5 vulnerability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireObject {
    class_name: String,
    count: u32,
    payload: Vec<u8>,
}

impl WireObject {
    /// Creates a wire object with `count` = 1.
    pub fn new(class_name: &str, payload: Vec<u8>) -> Self {
        WireObject { class_name: class_name.to_owned(), count: 1, payload }
    }

    /// Returns the object with a different claimed element count — the
    /// attacker's forgery primitive ("n: length of received names[]:
    /// maliciously changed", Listing 5).
    pub fn with_count(mut self, count: u32) -> Self {
        self.count = count;
        self
    }

    /// The claimed class name.
    pub fn class_name(&self) -> &str {
        &self.class_name
    }

    /// The claimed element count.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The raw payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Length of the encoded form in bytes.
    pub fn encoded_len(&self) -> usize {
        2 + self.class_name.len() + 4 + 4 + self.payload.len()
    }

    /// Encodes to the wire representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        let name = self.class_name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a wire representation.
    ///
    /// Only syntactic validation is performed: the claimed `count` is *not*
    /// checked against the payload length, mirroring the trust-the-protocol
    /// behaviour of the vulnerable receivers in §3.2.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, malformed names, or trailing
    /// bytes.
    pub fn decode(bytes: &[u8]) -> Result<WireObject, WireError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<std::ops::Range<usize>, WireError> {
            if *pos + n > bytes.len() {
                return Err(WireError::Truncated { needed: *pos + n, available: bytes.len() });
            }
            let r = *pos..*pos + n;
            *pos += n;
            Ok(r)
        };

        let name_len = u16::from_le_bytes(bytes[take(&mut pos, 2)?].try_into().unwrap()) as usize;
        let name_range = take(&mut pos, name_len)?;
        let class_name =
            std::str::from_utf8(&bytes[name_range]).map_err(|_| WireError::BadName)?.to_owned();
        let count = u32::from_le_bytes(bytes[take(&mut pos, 4)?].try_into().unwrap());
        let payload_len =
            u32::from_le_bytes(bytes[take(&mut pos, 4)?].try_into().unwrap()) as usize;
        let payload = bytes[take(&mut pos, payload_len)?].to_vec();
        if pos != bytes.len() {
            return Err(WireError::TrailingBytes { extra: bytes.len() - pos });
        }
        Ok(WireObject { class_name, count, payload })
    }
}

impl fmt::Display for WireObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire {} (count {}, {} payload bytes)",
            self.class_name,
            self.count,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let obj = WireObject::new("GradStudent", vec![1, 2, 3, 4]).with_count(7);
        let back = WireObject::decode(&obj.encode()).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.class_name(), "GradStudent");
        assert_eq!(back.count(), 7);
        assert_eq!(back.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn empty_payload_round_trips() {
        let obj = WireObject::new("Student", Vec::new());
        assert_eq!(WireObject::decode(&obj.encode()).unwrap(), obj);
    }

    #[test]
    fn forged_count_is_not_checked_against_payload() {
        // The decoder must accept the forgery: that is the §3.2 threat.
        let forged = WireObject::new("Student", vec![0u8; 8]).with_count(1_000_000);
        let back = WireObject::decode(&forged.encode()).unwrap();
        assert_eq!(back.count(), 1_000_000);
        assert_eq!(back.payload().len(), 8);
    }

    #[test]
    fn truncation_detected_at_every_boundary() {
        let full = WireObject::new("Student", vec![9; 16]).encode();
        for cut in [0, 1, 3, 8, full.len() - 1] {
            assert!(
                matches!(WireObject::decode(&full[..cut]), Err(WireError::Truncated { .. })),
                "cut at {cut} should be detected"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = WireObject::new("S", vec![1]).encode();
        bytes.push(0xff);
        assert_eq!(WireObject::decode(&bytes), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn bad_utf8_name_detected() {
        let mut bytes = vec![2, 0, 0xff, 0xfe]; // name_len=2, invalid bytes
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(WireObject::decode(&bytes), Err(WireError::BadName));
    }

    #[test]
    fn encoded_len_matches() {
        let obj = WireObject::new("GradStudent", vec![0; 10]);
        assert_eq!(obj.encode().len(), obj.encoded_len());
    }

    #[test]
    fn display_summarizes() {
        let obj = WireObject::new("Student", vec![0; 3]).with_count(2);
        assert_eq!(obj.to_string(), "wire Student (count 2, 3 payload bytes)");
    }

    #[test]
    fn errors_have_messages() {
        assert!(WireError::Truncated { needed: 4, available: 1 }.to_string().contains("needed 4"));
        assert!(WireError::BadName.to_string().contains("utf-8"));
    }
}
