//! C++ object model: classes, layout, vtables, and the serialized-object
//! wire format.
//!
//! This crate models the parts of the C++ object system that the
//! placement-new attacks of *Kundu & Bertino (ICDCS 2011)* depend on:
//!
//! * class definitions with single and multiple inheritance and virtual
//!   methods ([`ClassBuilder`], [`ClassRegistry`]);
//! * a deterministic, Itanium-ABI-style [`ObjectLayout`] engine — vtable
//!   pointer(s) first, base subobjects, then fields in declaration order
//!   with natural alignment and tail padding ([`LayoutPolicy`]);
//! * virtual tables ([`VTable`]) mapping method slots to implementations,
//!   ready to be materialized into a rodata segment by the runtime;
//! * the [`wire`] format for serialized objects, whose headers are
//!   attacker-forgeable by construction (the §3.2 remote-object vector).
//!
//! Everything is computed, never measured from the host: the whole point of
//! the reproduction is that the layouts match the ILP32/gcc platform the
//! paper reasons about, not whatever the Rust compiler would do.
//!
//! # Examples
//!
//! Build the paper's running example and check the §3 size relation
//! `sizeof(GradStudent) > sizeof(Student)`:
//!
//! ```
//! use pnew_object::{ClassRegistry, CxxType, LayoutPolicy};
//!
//! let mut reg = ClassRegistry::new();
//! let student = reg
//!     .class("Student")
//!     .field("gpa", CxxType::Double)
//!     .field("year", CxxType::Int)
//!     .field("semester", CxxType::Int)
//!     .register();
//! let grad = reg
//!     .class("GradStudent")
//!     .base(student)
//!     .field("ssn", CxxType::array(CxxType::Int, 3))
//!     .register();
//!
//! let policy = LayoutPolicy::paper();
//! let s = reg.layout(student, &policy).unwrap();
//! let g = reg.layout(grad, &policy).unwrap();
//! assert_eq!(s.size(), 16);
//! assert_eq!(g.size(), 32);              // 16 + ssn[3] + tail padding
//! assert_eq!(g.offset_of("ssn").unwrap(), 16);
//! assert!(g.size() > s.size());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod layout;
mod types;
mod vtable;
pub mod wire;

pub use class::{ClassBuilder, ClassDef, ClassId, ClassRegistry, FieldDef};
pub use layout::{FieldSlot, LayoutError, LayoutPolicy, ObjectLayout, VptrSlot};
pub use types::CxxType;
pub use vtable::{MethodSlot, VTable};

/// Crate-wide result alias for layout operations.
pub type Result<T, E = LayoutError> = std::result::Result<T, E>;
