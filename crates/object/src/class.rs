//! Class definitions and the registry.

use std::collections::HashMap;
use std::fmt;

use crate::layout::{LayoutError, LayoutPolicy, ObjectLayout};
use crate::types::CxxType;
use crate::vtable::VTable;

/// Identifier of a class registered in a [`ClassRegistry`].
///
/// Ids are handed out in registration order, and a class may only reference
/// classes registered before it (as bases or field types). That ordering
/// makes the class graph acyclic by construction, which keeps layout
/// computation total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(u32);

impl ClassId {
    /// Creates an id from a raw index (mainly for tests and serialization).
    pub const fn from_index(index: u32) -> Self {
        ClassId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A field declaration inside a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    name: String,
    ty: CxxType,
}

impl FieldDef {
    /// The field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field type.
    pub fn ty(&self) -> &CxxType {
        &self.ty
    }
}

/// A registered class definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    id: ClassId,
    name: String,
    bases: Vec<ClassId>,
    fields: Vec<FieldDef>,
    /// Names of virtual methods *declared or overridden* by this class, in
    /// declaration order.
    virtual_methods: Vec<String>,
}

impl ClassDef {
    /// The class id.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Direct base classes, in declaration order.
    pub fn bases(&self) -> &[ClassId] {
        &self.bases
    }

    /// Fields declared by this class (not including inherited ones).
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Virtual methods declared or overridden by this class.
    pub fn virtual_methods(&self) -> &[String] {
        &self.virtual_methods
    }
}

/// Interns class definitions and computes layouts and vtables.
///
/// # Examples
///
/// ```
/// use pnew_object::{ClassRegistry, CxxType};
///
/// let mut reg = ClassRegistry::new();
/// let student = reg
///     .class("Student")
///     .field("gpa", CxxType::Double)
///     .register();
/// assert_eq!(reg.def(student).name(), "Student");
/// assert_eq!(reg.by_name("Student"), Some(student));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassRegistry {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts defining a class with the given name.
    ///
    /// # Panics
    ///
    /// The terminal [`ClassBuilder::register`] panics if the name is already
    /// taken.
    pub fn class(&mut self, name: &str) -> ClassBuilder<'_> {
        ClassBuilder {
            registry: self,
            name: name.to_owned(),
            bases: Vec::new(),
            fields: Vec::new(),
            virtual_methods: Vec::new(),
        }
    }

    /// Looks a class up by name.
    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Returns the definition of a class.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this registry.
    pub fn def(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over all class definitions in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter()
    }

    /// Returns `true` if the class has (or inherits) virtual methods and
    /// therefore carries vtable pointer(s).
    pub fn is_polymorphic(&self, id: ClassId) -> bool {
        let def = self.def(id);
        !def.virtual_methods.is_empty() || def.bases.iter().any(|&b| self.is_polymorphic(b))
    }

    /// Computes the object layout of `id` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if a field path or class reference cannot be
    /// resolved (not expected for registry-built classes).
    pub fn layout(&self, id: ClassId, policy: &LayoutPolicy) -> Result<ObjectLayout, LayoutError> {
        ObjectLayout::compute(self, id, policy)
    }

    /// Computes the virtual table of `id`: inherited slots first (primary
    /// base order), overridden in place, then slots introduced by `id`.
    pub fn vtable(&self, id: ClassId) -> VTable {
        VTable::compute(self, id)
    }

    /// Size of an instance under `policy` — the simulated `sizeof()`.
    ///
    /// The paper's §5.1 prescribes `sizeof()` over manual estimation
    /// precisely because the compiler inserts hidden members (the vptr);
    /// this method is that operator.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from layout computation.
    pub fn size_of(&self, id: ClassId, policy: &LayoutPolicy) -> Result<u32, LayoutError> {
        Ok(self.layout(id, policy)?.size())
    }
}

/// Builder returned by [`ClassRegistry::class`].
#[derive(Debug)]
pub struct ClassBuilder<'r> {
    registry: &'r mut ClassRegistry,
    name: String,
    bases: Vec<ClassId>,
    fields: Vec<FieldDef>,
    virtual_methods: Vec<String>,
}

impl ClassBuilder<'_> {
    /// Adds a base class. The first base is the primary base.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not already registered (which also rules out
    /// inheritance cycles).
    pub fn base(mut self, base: ClassId) -> Self {
        assert!(
            (base.0 as usize) < self.registry.classes.len(),
            "base {base} must be registered before its subclass"
        );
        self.bases.push(base);
        self
    }

    /// Adds a field.
    ///
    /// # Panics
    ///
    /// Panics if a class-typed field references an unregistered class or if
    /// the field name repeats within this class.
    pub fn field(mut self, name: &str, ty: CxxType) -> Self {
        if let Some(cid) = ty.as_class() {
            assert!(
                (cid.0 as usize) < self.registry.classes.len(),
                "field {name}: class {cid} must be registered first"
            );
        }
        assert!(self.fields.iter().all(|f| f.name != name), "duplicate field name {name}");
        self.fields.push(FieldDef { name: name.to_owned(), ty });
        self
    }

    /// Declares (or overrides) a virtual method by name.
    pub fn virtual_method(mut self, name: &str) -> Self {
        if !self.virtual_methods.iter().any(|m| m == name) {
            self.virtual_methods.push(name.to_owned());
        }
        self
    }

    /// Registers the class and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the class name is already registered.
    pub fn register(self) -> ClassId {
        assert!(
            !self.registry.by_name.contains_key(&self.name),
            "class {} is already registered",
            self.name
        );
        let id = ClassId(self.registry.classes.len() as u32);
        self.registry.by_name.insert(self.name.clone(), id);
        self.registry.classes.push(ClassDef {
            id,
            name: self.name,
            bases: self.bases,
            fields: self.fields,
            virtual_methods: self.virtual_methods,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student_pair(reg: &mut ClassRegistry) -> (ClassId, ClassId) {
        let s = reg
            .class("Student")
            .field("gpa", CxxType::Double)
            .field("year", CxxType::Int)
            .field("semester", CxxType::Int)
            .register();
        let g = reg
            .class("GradStudent")
            .base(s)
            .field("ssn", CxxType::array(CxxType::Int, 3))
            .register();
        (s, g)
    }

    #[test]
    fn registration_and_lookup() {
        let mut reg = ClassRegistry::new();
        let (s, g) = student_pair(&mut reg);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.by_name("Student"), Some(s));
        assert_eq!(reg.by_name("GradStudent"), Some(g));
        assert_eq!(reg.by_name("Nope"), None);
        assert_eq!(reg.def(g).bases(), &[s]);
        assert_eq!(reg.def(g).fields().len(), 1);
        assert_eq!(reg.def(g).fields()[0].name(), "ssn");
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn polymorphism_is_inherited() {
        let mut reg = ClassRegistry::new();
        let s =
            reg.class("Student").field("gpa", CxxType::Double).virtual_method("getInfo").register();
        let g = reg.class("GradStudent").base(s).register();
        let plain = reg.class("Plain").field("x", CxxType::Int).register();
        assert!(reg.is_polymorphic(s));
        assert!(reg.is_polymorphic(g));
        assert!(!reg.is_polymorphic(plain));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_rejected() {
        let mut reg = ClassRegistry::new();
        reg.class("A").register();
        reg.class("A").register();
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_fields_rejected() {
        let mut reg = ClassRegistry::new();
        reg.class("A").field("x", CxxType::Int).field("x", CxxType::Int).register();
    }

    #[test]
    #[should_panic(expected = "must be registered before")]
    fn forward_base_reference_rejected() {
        let mut reg = ClassRegistry::new();
        reg.class("A").base(ClassId::from_index(5)).register();
    }

    #[test]
    #[should_panic(expected = "must be registered first")]
    fn forward_field_class_rejected() {
        let mut reg = ClassRegistry::new();
        reg.class("A").field("f", CxxType::Class(ClassId::from_index(9))).register();
    }

    #[test]
    fn virtual_method_dedup() {
        let mut reg = ClassRegistry::new();
        let a = reg.class("A").virtual_method("getInfo").virtual_method("getInfo").register();
        assert_eq!(reg.def(a).virtual_methods().len(), 1);
    }

    #[test]
    fn sizeof_counts_hidden_members() {
        // §5.1: "Compilers often add member variables such as the virtual
        // table pointer to a class, which influences the size of objects."
        let mut reg = ClassRegistry::new();
        let plain = reg.class("Plain").field("x", CxxType::Int).register();
        let poly = reg.class("Poly").field("x", CxxType::Int).virtual_method("m").register();
        let policy = LayoutPolicy::paper();
        assert_eq!(reg.size_of(plain, &policy).unwrap(), 4);
        assert_eq!(reg.size_of(poly, &policy).unwrap(), 8); // vptr + x
    }
}
