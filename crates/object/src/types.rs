//! The C++ type vocabulary used by class definitions.

use std::fmt;

use crate::class::ClassId;

/// A C++ type as used in field declarations and placement expressions.
///
/// Sizes and alignments are functions of the
/// [`LayoutPolicy`](crate::LayoutPolicy), not of the host: the reproduction
/// targets the ILP32 platform of the paper.
///
/// # Examples
///
/// ```
/// use pnew_object::{CxxType, LayoutPolicy};
///
/// let policy = LayoutPolicy::paper();
/// assert_eq!(CxxType::Int.scalar_size(&policy), Some(4));
/// assert_eq!(CxxType::array(CxxType::Int, 3).scalar_size(&policy), Some(12));
/// assert_eq!(CxxType::ptr(CxxType::Char).scalar_size(&policy), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CxxType {
    /// `bool` (1 byte).
    Bool,
    /// `char` (1 byte).
    Char,
    /// `short` (2 bytes).
    Short,
    /// `int` (4 bytes) — the unit of the paper's overflow arithmetic.
    Int,
    /// `unsigned int` (4 bytes).
    UInt,
    /// `long` (model-dependent).
    Long,
    /// `float` (4 bytes).
    Float,
    /// `double` (8 bytes; alignment is policy-dependent, see §3.7.2).
    Double,
    /// A data pointer `T*` (or a function pointer — same size on the
    /// platforms modeled).
    Ptr(Box<CxxType>),
    /// A fixed-size array `T[n]`.
    Array(Box<CxxType>, u32),
    /// An instance of a registered class.
    Class(ClassId),
}

impl CxxType {
    /// Convenience constructor for `T*`.
    pub fn ptr(pointee: CxxType) -> Self {
        CxxType::Ptr(Box::new(pointee))
    }

    /// Convenience constructor for `T[n]`.
    pub fn array(elem: CxxType, n: u32) -> Self {
        CxxType::Array(Box::new(elem), n)
    }

    /// Size in bytes for non-class types; `None` for class types (which
    /// need a registry to lay out).
    pub fn scalar_size(&self, policy: &crate::LayoutPolicy) -> Option<u32> {
        match self {
            CxxType::Bool | CxxType::Char => Some(1),
            CxxType::Short => Some(2),
            CxxType::Int | CxxType::UInt | CxxType::Float => Some(4),
            CxxType::Long => Some(policy.model().long_size()),
            CxxType::Double => Some(8),
            CxxType::Ptr(_) => Some(policy.model().pointer_size()),
            CxxType::Array(elem, n) => elem.scalar_size(policy).map(|s| s * n),
            CxxType::Class(_) => None,
        }
    }

    /// Alignment in bytes for non-class types; `None` for class types.
    pub fn scalar_align(&self, policy: &crate::LayoutPolicy) -> Option<u32> {
        match self {
            CxxType::Bool | CxxType::Char => Some(1),
            CxxType::Short => Some(2),
            CxxType::Int | CxxType::UInt | CxxType::Float => Some(4),
            CxxType::Long => Some(policy.model().long_size()),
            CxxType::Double => Some(policy.double_align()),
            CxxType::Ptr(_) => Some(policy.model().pointer_size()),
            CxxType::Array(elem, _) => elem.scalar_align(policy),
            CxxType::Class(_) => None,
        }
    }

    /// Returns the class id if this is a class type.
    pub fn as_class(&self) -> Option<ClassId> {
        match self {
            CxxType::Class(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns `true` for pointer types (data or function).
    pub fn is_pointer(&self) -> bool {
        matches!(self, CxxType::Ptr(_))
    }
}

impl fmt::Display for CxxType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CxxType::Bool => f.write_str("bool"),
            CxxType::Char => f.write_str("char"),
            CxxType::Short => f.write_str("short"),
            CxxType::Int => f.write_str("int"),
            CxxType::UInt => f.write_str("unsigned int"),
            CxxType::Long => f.write_str("long"),
            CxxType::Float => f.write_str("float"),
            CxxType::Double => f.write_str("double"),
            CxxType::Ptr(p) => write!(f, "{p}*"),
            CxxType::Array(elem, n) => write!(f, "{elem}[{n}]"),
            CxxType::Class(id) => write!(f, "class#{}", id.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayoutPolicy;

    #[test]
    fn ilp32_sizes_match_the_paper() {
        let p = LayoutPolicy::paper();
        assert_eq!(CxxType::Int.scalar_size(&p), Some(4));
        assert_eq!(CxxType::ptr(CxxType::Char).scalar_size(&p), Some(4));
        assert_eq!(CxxType::Double.scalar_size(&p), Some(8));
        assert_eq!(CxxType::Long.scalar_size(&p), Some(4));
        assert_eq!(CxxType::Bool.scalar_size(&p), Some(1));
        assert_eq!(CxxType::Short.scalar_size(&p), Some(2));
        assert_eq!(CxxType::Float.scalar_size(&p), Some(4));
    }

    #[test]
    fn lp64_widens_pointers_and_longs() {
        let p = LayoutPolicy::lp64();
        assert_eq!(CxxType::ptr(CxxType::Int).scalar_size(&p), Some(8));
        assert_eq!(CxxType::Long.scalar_size(&p), Some(8));
        assert_eq!(CxxType::Int.scalar_size(&p), Some(4));
    }

    #[test]
    fn arrays_multiply() {
        let p = LayoutPolicy::paper();
        let ssn = CxxType::array(CxxType::Int, 3);
        assert_eq!(ssn.scalar_size(&p), Some(12));
        assert_eq!(ssn.scalar_align(&p), Some(4));
        let grid = CxxType::array(CxxType::array(CxxType::Char, 8), 4);
        assert_eq!(grid.scalar_size(&p), Some(32));
        assert_eq!(grid.scalar_align(&p), Some(1));
    }

    #[test]
    fn class_types_have_no_scalar_size() {
        let p = LayoutPolicy::paper();
        let c = CxxType::Class(ClassId::from_index(0));
        assert_eq!(c.scalar_size(&p), None);
        assert_eq!(c.scalar_align(&p), None);
        assert_eq!(c.as_class(), Some(ClassId::from_index(0)));
        assert!(!c.is_pointer());
    }

    #[test]
    fn double_alignment_is_policy_dependent() {
        assert_eq!(CxxType::Double.scalar_align(&LayoutPolicy::paper()), Some(8));
        assert_eq!(
            CxxType::Double.scalar_align(&LayoutPolicy::paper().with_double_align(4)),
            Some(4)
        );
    }

    #[test]
    fn display_is_cxx_like() {
        assert_eq!(CxxType::ptr(CxxType::Char).to_string(), "char*");
        assert_eq!(CxxType::array(CxxType::Int, 3).to_string(), "int[3]");
        assert_eq!(CxxType::UInt.to_string(), "unsigned int");
    }
}
