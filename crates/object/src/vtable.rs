//! Virtual tables.
//!
//! "Virtual tables (vtables) ... are used to carry out dynamic dispatching
//! of invocation of virtual functions. The compiler creates a vtable and
//! adds a pointer to this table in each instance of each class." — §3.8.2.
//!
//! A [`VTable`] is the *logical* table: an ordered list of method slots,
//! each resolved to the class providing the implementation. The runtime
//! materializes it into the rodata segment as an array of function
//! addresses, and stores the table's address into each instance's vptr.
//!
//! Simplification: under multiple inheritance a single merged table is
//! computed per class (real gcc emits one per subobject). The secondary
//! vptr *slots inside objects* are still modeled by
//! [`ObjectLayout::vptr_offsets`](crate::ObjectLayout::vptr_offsets), which
//! is what the paper's attack narrative needs.

use std::fmt;

use crate::class::{ClassId, ClassRegistry};

/// One virtual-method slot in a vtable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSlot {
    name: String,
    impl_class: ClassId,
}

impl MethodSlot {
    /// The method name (e.g. `getInfo`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class whose implementation this slot dispatches to.
    pub fn impl_class(&self) -> ClassId {
        self.impl_class
    }
}

/// The logical virtual table of a class.
///
/// # Examples
///
/// ```
/// use pnew_object::{ClassRegistry, CxxType};
///
/// let mut reg = ClassRegistry::new();
/// let student = reg
///     .class("Student")
///     .virtual_method("getInfo")
///     .register();
/// let grad = reg
///     .class("GradStudent")
///     .base(student)
///     .virtual_method("getInfo")
///     .register();
///
/// // Student's table points at Student::getInfo, GradStudent's at its
/// // local override — exactly the §3.8.2 description.
/// assert_eq!(reg.vtable(student).slots()[0].impl_class(), student);
/// assert_eq!(reg.vtable(grad).slots()[0].impl_class(), grad);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VTable {
    class: ClassId,
    slots: Vec<MethodSlot>,
}

impl VTable {
    /// Computes the vtable of `id`: base slots first (in base declaration
    /// order), overridden in place, then slots newly introduced by `id`.
    pub fn compute(reg: &ClassRegistry, id: ClassId) -> VTable {
        let mut slots: Vec<MethodSlot> = Vec::new();
        collect(reg, id, &mut slots);
        VTable { class: id, slots }
    }

    /// The class this table belongs to.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The method slots in dispatch order.
    pub fn slots(&self) -> &[MethodSlot] {
        &self.slots
    }

    /// Index of the slot for `method`, if the class has it.
    pub fn slot_index(&self, method: &str) -> Option<usize> {
        self.slots.iter().position(|s| s.name == method)
    }

    /// Returns `true` if the table has no slots (non-polymorphic class).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }
}

impl fmt::Display for VTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "vtable for {}", self.class)?;
        for (i, s) in self.slots.iter().enumerate() {
            writeln!(f, "  [{i}] {} -> {}", s.name, s.impl_class)?;
        }
        Ok(())
    }
}

fn collect(reg: &ClassRegistry, id: ClassId, slots: &mut Vec<MethodSlot>) {
    let def = reg.def(id);
    for &base in def.bases() {
        collect(reg, base, slots);
    }
    for m in def.virtual_methods() {
        if let Some(slot) = slots.iter_mut().find(|s| &s.name == m) {
            slot.impl_class = id; // override
        } else {
            slots.push(MethodSlot { name: m.clone(), impl_class: id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CxxType;

    #[test]
    fn override_replaces_in_place() {
        let mut reg = ClassRegistry::new();
        let a = reg.class("A").virtual_method("f").virtual_method("g").register();
        let b = reg.class("B").base(a).virtual_method("g").virtual_method("h").register();
        let vt = reg.vtable(b);
        assert_eq!(vt.len(), 3);
        assert_eq!(vt.slots()[0].name(), "f");
        assert_eq!(vt.slots()[0].impl_class(), a);
        assert_eq!(vt.slots()[1].name(), "g");
        assert_eq!(vt.slots()[1].impl_class(), b);
        assert_eq!(vt.slots()[2].name(), "h");
        assert_eq!(vt.slots()[2].impl_class(), b);
        assert_eq!(vt.slot_index("g"), Some(1));
        assert_eq!(vt.slot_index("nope"), None);
        assert_eq!(vt.class(), b);
    }

    #[test]
    fn non_polymorphic_class_has_empty_table() {
        let mut reg = ClassRegistry::new();
        let p = reg.class("P").field("x", CxxType::Int).register();
        let vt = reg.vtable(p);
        assert!(vt.is_empty());
        assert_eq!(vt.len(), 0);
    }

    #[test]
    fn deep_chain_keeps_slot_order() {
        let mut reg = ClassRegistry::new();
        let a = reg.class("A").virtual_method("f").register();
        let b = reg.class("B").base(a).virtual_method("g").register();
        let c = reg.class("C").base(b).virtual_method("f").register();
        let vt = reg.vtable(c);
        assert_eq!(vt.slot_index("f"), Some(0)); // slot order stable
        assert_eq!(vt.slots()[0].impl_class(), c);
        assert_eq!(vt.slots()[1].impl_class(), b);
    }

    #[test]
    fn multiple_inheritance_merges_tables() {
        let mut reg = ClassRegistry::new();
        let a = reg.class("A").virtual_method("fa").register();
        let b = reg.class("B").virtual_method("fb").register();
        let c = reg.class("C").base(a).base(b).virtual_method("fb").register();
        let vt = reg.vtable(c);
        assert_eq!(vt.len(), 2);
        assert_eq!(vt.slot_index("fa"), Some(0));
        assert_eq!(vt.slots()[1].impl_class(), c);
    }

    #[test]
    fn display_lists_slots() {
        let mut reg = ClassRegistry::new();
        let a = reg.class("A").virtual_method("f").register();
        let text = reg.vtable(a).to_string();
        assert!(text.contains("[0] f"));
    }
}
