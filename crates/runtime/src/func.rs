//! The function table: registered code entry points in the text segment.
//!
//! The reproduction does not execute machine code; it registers *named
//! functions at text-segment addresses* so that control transfers can be
//! classified. Arc injection (§3.6.2) succeeds when a corrupted return
//! address or pointer lands on the entry of some registered function —
//! the interesting case being a [`Privilege::Privileged`] entry such as
//! `system`.

use std::collections::HashMap;
use std::fmt;

use pnew_memory::VirtAddr;

/// A data-driven side effect a registered function performs when invoked
/// (via a legitimate call *or* a hijack). Effects make attack impact
/// observable: reaching `system` actually "spawns a shell" in the
/// machine's ledger instead of merely being classified.
#[derive(Debug, Clone, PartialEq)]
pub enum FuncEffect {
    /// Appends a line to the program output.
    Print(String),
    /// Writes an `int` to an address (e.g. sets a privilege flag).
    WriteI32 {
        /// Destination address.
        addr: VirtAddr,
        /// Value stored.
        value: i32,
    },
    /// Spawns a shell with the NUL-terminated command found at `arg`
    /// (recorded in the machine's shell ledger, never executed for real).
    SpawnShell {
        /// Address of the command string.
        arg: VirtAddr,
    },
}

/// Identifier of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates an id from a raw index (tests, serialization).
    pub const fn from_index(index: u32) -> Self {
        FuncId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Privilege marker for a function — whether reaching it gives the
/// attacker elevated capability (the `system`-in-privileged-mode target of
/// §3.6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Privilege {
    /// Ordinary application code.
    #[default]
    Normal,
    /// Security-sensitive code (spawns shells, writes accounts, …).
    Privileged,
}

/// A registered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    id: FuncId,
    name: String,
    addr: VirtAddr,
    privilege: Privilege,
}

impl FuncDef {
    /// The function id.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The text-segment entry address.
    pub fn addr(&self) -> VirtAddr {
        self.addr
    }

    /// The privilege marker.
    pub fn privilege(&self) -> Privilege {
        self.privilege
    }

    /// `true` if the function is privileged.
    pub fn is_privileged(&self) -> bool {
        self.privilege == Privilege::Privileged
    }
}

/// Registry of functions laid out in the text segment.
///
/// Functions are spaced [`FuncTable::ENTRY_SPAN`] bytes apart starting at
/// `text_base + FIRST_OFFSET`; a control transfer anywhere inside a span
/// resolves to that function (jumping into a function body still executes
/// it, just not from the top).
#[derive(Debug, Clone)]
pub struct FuncTable {
    text_base: VirtAddr,
    text_size: u32,
    funcs: Vec<FuncDef>,
    by_name: HashMap<String, FuncId>,
}

impl FuncTable {
    /// Bytes reserved per function body.
    pub const ENTRY_SPAN: u32 = 0x40;
    /// Offset of the first function above the text base (the gap holds the
    /// synthetic call-site addresses used as legitimate return targets).
    pub const FIRST_OFFSET: u32 = 0x100;

    /// Creates a table over a text segment at `text_base` of `text_size`
    /// bytes.
    pub fn new(text_base: VirtAddr, text_size: u32) -> Self {
        FuncTable { text_base, text_size, funcs: Vec::new(), by_name: HashMap::new() }
    }

    /// Registers a function and returns its id. Re-registering a name
    /// returns the existing id (privilege is not changed).
    ///
    /// # Panics
    ///
    /// Panics if the text segment has no room for another entry.
    pub fn register(&mut self, name: &str, privilege: Privilege) -> FuncId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let index = self.funcs.len() as u32;
        let offset = Self::FIRST_OFFSET + index * Self::ENTRY_SPAN;
        assert!(
            offset + Self::ENTRY_SPAN <= self.text_size,
            "text segment full: cannot register {name}"
        );
        let id = FuncId(index);
        let def = FuncDef { id, name: name.to_owned(), addr: self.text_base + offset, privilege };
        self.by_name.insert(name.to_owned(), id);
        self.funcs.push(def);
        id
    }

    /// Looks a function up by name.
    pub fn by_name(&self, name: &str) -> Option<&FuncDef> {
        self.by_name.get(name).map(|&id| &self.funcs[id.0 as usize])
    }

    /// Returns the definition for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this table.
    pub fn def(&self, id: FuncId) -> &FuncDef {
        &self.funcs[id.0 as usize]
    }

    /// Resolves a code address to the function whose span contains it.
    pub fn resolve(&self, addr: VirtAddr) -> Option<&FuncDef> {
        if addr < self.text_base + Self::FIRST_OFFSET {
            return None;
        }
        let rel = addr.offset_from(self.text_base) as u32 - Self::FIRST_OFFSET;
        let index = (rel / Self::ENTRY_SPAN) as usize;
        self.funcs.get(index).filter(|d| addr >= d.addr && addr < d.addr + Self::ENTRY_SPAN)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// `true` if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Iterates over all registered functions.
    pub fn iter(&self) -> impl Iterator<Item = &FuncDef> {
        self.funcs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FuncTable {
        FuncTable::new(VirtAddr::new(0x0804_8000), 0x1_0000)
    }

    #[test]
    fn register_and_resolve() {
        let mut t = table();
        let f = t.register("system", Privilege::Privileged);
        let g = t.register("getInfo", Privilege::Normal);
        assert_ne!(f, g);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());

        let fd = t.def(f);
        assert_eq!(fd.name(), "system");
        assert!(fd.is_privileged());
        assert_eq!(fd.addr(), VirtAddr::new(0x0804_8100));
        assert_eq!(t.def(g).addr(), VirtAddr::new(0x0804_8140));

        // Entry and mid-body addresses resolve; addresses outside do not.
        assert_eq!(t.resolve(fd.addr()).unwrap().id(), f);
        assert_eq!(t.resolve(fd.addr() + 0x3f).unwrap().id(), f);
        assert_eq!(t.resolve(VirtAddr::new(0x0804_8140)).unwrap().id(), g);
        assert_eq!(t.resolve(VirtAddr::new(0x0804_8000)), None);
        assert_eq!(t.resolve(VirtAddr::new(0x0804_8180)), None);
    }

    #[test]
    fn reregistration_returns_existing_id() {
        let mut t = table();
        let a = t.register("f", Privilege::Normal);
        let b = t.register("f", Privilege::Privileged);
        assert_eq!(a, b);
        assert!(!t.def(a).is_privileged()); // privilege unchanged
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let mut t = table();
        t.register("f", Privilege::Normal);
        assert!(t.by_name("f").is_some());
        assert!(t.by_name("g").is_none());
    }

    #[test]
    #[should_panic(expected = "text segment full")]
    fn full_table_panics() {
        let mut t = FuncTable::new(VirtAddr::new(0x1000), 0x180); // room for 2
        t.register("a", Privilege::Normal);
        t.register("b", Privilege::Normal);
        t.register("c", Privilege::Normal);
    }

    #[test]
    fn iter_lists_in_order() {
        let mut t = table();
        t.register("a", Privilege::Normal);
        t.register("b", Privilege::Normal);
        let names: Vec<_> = t.iter().map(|d| d.name().to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn func_id_display() {
        assert_eq!(FuncId::from_index(3).to_string(), "fn#3");
        assert_eq!(FuncId::from_index(3).index(), 3);
    }
}
