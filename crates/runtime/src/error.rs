//! Runtime error type.

use std::error::Error;
use std::fmt;

use pnew_memory::{MemoryError, VirtAddr};
use pnew_object::LayoutError;

/// An error raised by the simulated machine.
///
/// These are *host-level* failures (bad scenario wiring, exhausted
/// resources), not attack outcomes: a successful overflow is reported
/// through [`ControlOutcome`](crate::ControlOutcome), never as an error.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A memory access faulted (simulated segfault).
    Memory(MemoryError),
    /// Layout computation or field resolution failed.
    Layout(LayoutError),
    /// A named global was not defined.
    UnknownGlobal {
        /// The name that was looked up.
        name: String,
    },
    /// A named local was not found in the current frame.
    UnknownLocal {
        /// The name that was looked up.
        name: String,
    },
    /// `ret` or a local lookup was attempted with no active frame.
    NoActiveFrame,
    /// The scripted attacker input ran out of tokens.
    InputExhausted {
        /// What the program tried to read (`int`, `double`, `string`).
        wanted: &'static str,
    },
    /// The scripted input had the wrong token type.
    InputTypeMismatch {
        /// What the program tried to read.
        wanted: &'static str,
        /// What the script provided.
        found: &'static str,
    },
    /// No function with this name is registered.
    UnknownFunction {
        /// The name that was looked up.
        name: String,
    },
    /// The heap cannot satisfy an allocation.
    HeapExhausted {
        /// Requested size in bytes.
        requested: u32,
        /// Largest free block available.
        largest_free: u32,
    },
    /// `free` was called on an address that is not a live allocation.
    InvalidFree {
        /// The address passed to `free`.
        addr: VirtAddr,
    },
    /// The heap allocator found its block header corrupted — collateral
    /// damage of a heap overflow.
    HeapCorruption {
        /// Address of the damaged block.
        addr: VirtAddr,
    },
    /// Pushing a frame would run the stack into its guard.
    StackExhausted {
        /// Bytes the frame needed.
        needed: u32,
    },
    /// Placement new at the null address ("the address must be a non-null
    /// one", §2).
    NullPlacement,
    /// A segment ran out of room for globals.
    SegmentFull {
        /// Which segment.
        segment: &'static str,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Memory(e) => write!(f, "memory fault: {e}"),
            RuntimeError::Layout(e) => write!(f, "layout error: {e}"),
            RuntimeError::UnknownGlobal { name } => write!(f, "unknown global {name:?}"),
            RuntimeError::UnknownLocal { name } => write!(f, "unknown local {name:?}"),
            RuntimeError::NoActiveFrame => f.write_str("no active stack frame"),
            RuntimeError::InputExhausted { wanted } => {
                write!(f, "attacker input exhausted while reading {wanted}")
            }
            RuntimeError::InputTypeMismatch { wanted, found } => {
                write!(f, "attacker input mismatch: wanted {wanted}, found {found}")
            }
            RuntimeError::UnknownFunction { name } => write!(f, "unknown function {name:?}"),
            RuntimeError::HeapExhausted { requested, largest_free } => write!(
                f,
                "heap exhausted: requested {requested} bytes, largest free block {largest_free}"
            ),
            RuntimeError::InvalidFree { addr } => {
                write!(f, "free of {addr} which is not a live allocation")
            }
            RuntimeError::HeapCorruption { addr } => {
                write!(f, "heap block header at {addr} is corrupted")
            }
            RuntimeError::StackExhausted { needed } => {
                write!(f, "stack exhausted: frame needs {needed} bytes")
            }
            RuntimeError::NullPlacement => f.write_str("placement new at the null address"),
            RuntimeError::SegmentFull { segment } => {
                write!(f, "{segment} segment has no room for more globals")
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Memory(e) => Some(e),
            RuntimeError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemoryError> for RuntimeError {
    fn from(e: MemoryError) -> Self {
        RuntimeError::Memory(e)
    }
}

impl From<LayoutError> for RuntimeError {
    fn from(e: LayoutError) -> Self {
        RuntimeError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RuntimeError::InputExhausted { wanted: "int" };
        assert_eq!(e.to_string(), "attacker input exhausted while reading int");
        let e = RuntimeError::HeapExhausted { requested: 64, largest_free: 16 };
        assert!(e.to_string().contains("64"));
        assert!(RuntimeError::NoActiveFrame.to_string().contains("frame"));
        assert!(RuntimeError::NullPlacement.to_string().contains("null"));
    }

    #[test]
    fn sources_chain() {
        let m = MemoryError::Unmapped { addr: VirtAddr::new(4), len: 1 };
        let e = RuntimeError::from(m.clone());
        assert_eq!(e, RuntimeError::Memory(m));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&RuntimeError::NoActiveFrame).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<RuntimeError>();
    }
}
