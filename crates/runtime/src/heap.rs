//! The heap allocator.
//!
//! A first-fit free-list allocator over the heap segment, with 8-byte
//! in-memory block headers. Headers live *in the simulated memory*, so a
//! heap overflow that runs past an allocation clobbers the next header —
//! the classic heap-metadata collateral the paper's Listing 12 rides on —
//! and is detected (as [`RuntimeError::HeapCorruption`]) only when the
//! damaged block is eventually freed.
//!
//! The allocator also provides [`free_sized`](HeapAllocator::free_sized),
//! the size-mismatched release that produces the §4.5 memory leak
//! ("the amount of memory leaked per iteration is the difference in the
//! size").

use std::collections::HashMap;
use std::fmt;

use pnew_memory::{AddressSpace, VirtAddr};

use crate::error::RuntimeError;

/// Magic value stored in every live block header. Public because an
/// in-world attacker would read it out of the binary — forging it is part
/// of the classic heap-metadata attack (E26).
pub const BLOCK_MAGIC: u32 = 0xa110_c8ed;

/// Header bytes preceding every allocation.
pub const HEADER_SIZE: u32 = 8;

/// Allocation granularity.
const GRAIN: u32 = 8;

/// Counters describing allocator state — the §4.5 leak experiment reads
/// these directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Successful allocations.
    pub total_allocs: u64,
    /// Successful frees (including sized frees).
    pub total_frees: u64,
    /// Currently live blocks.
    pub live_blocks: u64,
    /// Payload bytes in live blocks.
    pub live_bytes: u64,
    /// Bytes stranded by size-mismatched frees — never reusable.
    pub leaked_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_live_bytes: u64,
    /// Allocations that failed for lack of space.
    pub failed_allocs: u64,
}

impl fmt::Display for HeapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "heap: {} live blocks ({} bytes), {} leaked bytes, {} allocs / {} frees, peak {}",
            self.live_blocks,
            self.live_bytes,
            self.leaked_bytes,
            self.total_allocs,
            self.total_frees,
            self.peak_live_bytes
        )
    }
}

/// First-fit free-list allocator over the heap segment.
///
/// # Examples
///
/// ```
/// use pnew_memory::{AddressSpace, SegmentKind};
/// use pnew_runtime::HeapAllocator;
///
/// # fn main() -> Result<(), pnew_runtime::RuntimeError> {
/// let mut space = AddressSpace::ilp32();
/// let mut heap = HeapAllocator::for_space(&space);
/// let a = heap.alloc(&mut space, 16)?;
/// let b = heap.alloc(&mut space, 16)?;
/// assert!(b > a);
/// heap.free(&mut space, a)?;
/// heap.free(&mut space, b)?;
/// assert_eq!(heap.stats().live_blocks, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    base: VirtAddr,
    size: u32,
    /// Free ranges `(start, len)`, sorted by start, coalesced.
    free_list: Vec<(VirtAddr, u32)>,
    /// Live data address → reserved length (header included).
    blocks: HashMap<VirtAddr, u32>,
    stats: HeapStats,
    /// Classic-allocator mode: `free` trusts the *in-memory* block header
    /// (like dlmalloc-era allocators) instead of cross-checking it against
    /// host-side truth. Corrupted headers then poison the free list — the
    /// w00w00-style exploitation path of E26. Off by default.
    trust_headers: bool,
}

impl HeapAllocator {
    /// Creates an allocator over `[base, base + size)`.
    pub fn new(base: VirtAddr, size: u32) -> Self {
        HeapAllocator {
            base,
            size,
            free_list: vec![(base, size)],
            blocks: HashMap::new(),
            stats: HeapStats::default(),
            trust_headers: false,
        }
    }

    /// Switches between the checking allocator (default: corrupted headers
    /// abort the program at `free`, like a hardened allocator) and the
    /// classic header-trusting one (corrupted headers silently poison the
    /// free list).
    pub fn set_trust_headers(&mut self, trust: bool) {
        self.trust_headers = trust;
    }

    /// Creates an allocator covering the heap segment of `space`.
    pub fn for_space(space: &AddressSpace) -> Self {
        let seg = space.segment(pnew_memory::SegmentKind::Heap);
        Self::new(seg.base(), seg.size())
    }

    /// Current statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Size of the largest free range.
    pub fn largest_free(&self) -> u32 {
        self.free_list.iter().map(|&(_, len)| len).max().unwrap_or(0)
    }

    /// Total free bytes (including header overhead to come).
    pub fn total_free(&self) -> u32 {
        self.free_list.iter().map(|&(_, len)| len).sum()
    }

    /// Reserved length (header included) for a payload of `size` bytes.
    fn reserved_len(size: u32) -> u32 {
        HEADER_SIZE + size.max(1).div_ceil(GRAIN) * GRAIN
    }

    /// Allocates `size` payload bytes; returns the payload address
    /// (8-aligned, preceded by the block header).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::HeapExhausted`] when no free range fits, and
    /// propagates memory faults from header writes.
    pub fn alloc(&mut self, space: &mut AddressSpace, size: u32) -> Result<VirtAddr, RuntimeError> {
        let need = Self::reserved_len(size);
        let slot = self.free_list.iter().position(|&(_, len)| len >= need);
        let Some(i) = slot else {
            self.stats.failed_allocs += 1;
            return Err(RuntimeError::HeapExhausted {
                requested: size,
                largest_free: self.largest_free().saturating_sub(HEADER_SIZE),
            });
        };
        let (start, len) = self.free_list[i];
        if len == need {
            self.free_list.remove(i);
        } else {
            self.free_list[i] = (start + need, len - need);
        }
        let data = start + HEADER_SIZE;
        space.write_u32(start, need)?;
        space.write_u32(start + 4, BLOCK_MAGIC)?;
        self.blocks.insert(data, need);
        self.stats.total_allocs += 1;
        self.stats.live_blocks += 1;
        self.stats.live_bytes += u64::from(need - HEADER_SIZE);
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        Ok(data)
    }

    /// Frees a whole block previously returned by
    /// [`alloc`](Self::alloc).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidFree`] for unknown addresses and
    /// [`RuntimeError::HeapCorruption`] when the block header was
    /// overwritten (e.g. by a neighbouring overflow).
    pub fn free(&mut self, space: &mut AddressSpace, data: VirtAddr) -> Result<(), RuntimeError> {
        let need =
            self.blocks.get(&data).copied().ok_or(RuntimeError::InvalidFree { addr: data })?;
        let released = if self.trust_headers {
            // The classic allocator believes whatever the header says, as
            // long as it looks like a block (magic intact — which an
            // attacker can forge).
            let header = data - HEADER_SIZE;
            if space.read_u32(header + 4)? != BLOCK_MAGIC {
                return Err(RuntimeError::HeapCorruption { addr: header });
            }
            space.read_u32(header)?
        } else {
            self.check_header(space, data, need)?;
            need
        };
        self.blocks.remove(&data);
        self.insert_free(data - HEADER_SIZE, released);
        self.stats.total_frees += 1;
        self.stats.live_blocks -= 1;
        self.stats.live_bytes -= u64::from(need - HEADER_SIZE);
        Ok(())
    }

    /// Frees only the first `size` payload bytes of a block, stranding the
    /// rest — the §4.5 size-mismatched pool release (`delete` through a
    /// `Student*` of memory allocated for a `GradStudent`).
    ///
    /// The stranded tail is accounted in [`HeapStats::leaked_bytes`] and is
    /// never returned to the free list.
    ///
    /// # Errors
    ///
    /// Same conditions as [`free`](Self::free).
    pub fn free_sized(
        &mut self,
        space: &mut AddressSpace,
        data: VirtAddr,
        size: u32,
    ) -> Result<(), RuntimeError> {
        let need =
            self.blocks.get(&data).copied().ok_or(RuntimeError::InvalidFree { addr: data })?;
        self.check_header(space, data, need)?;
        let released = Self::reserved_len(size).min(need);
        self.blocks.remove(&data);
        self.insert_free(data - HEADER_SIZE, released);
        self.stats.total_frees += 1;
        self.stats.live_blocks -= 1;
        self.stats.live_bytes -= u64::from(need - HEADER_SIZE);
        self.stats.leaked_bytes += u64::from(need - released);
        Ok(())
    }

    fn check_header(
        &self,
        space: &AddressSpace,
        data: VirtAddr,
        need: u32,
    ) -> Result<(), RuntimeError> {
        let header = data - HEADER_SIZE;
        let size_ok = space.read_u32(header)? == need;
        let magic_ok = space.read_u32(header + 4)? == BLOCK_MAGIC;
        if size_ok && magic_ok {
            Ok(())
        } else {
            Err(RuntimeError::HeapCorruption { addr: header })
        }
    }

    fn insert_free(&mut self, start: VirtAddr, len: u32) {
        let pos = self.free_list.partition_point(|&(s, _)| s <= start);
        self.free_list.insert(pos, (start, len));
        // Coalesce with the right neighbour, then the left.
        if pos + 1 < self.free_list.len() {
            let (s, l) = self.free_list[pos];
            let (ns, nl) = self.free_list[pos + 1];
            if s + l == ns {
                self.free_list[pos] = (s, l + nl);
                self.free_list.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (ps, pl) = self.free_list[pos - 1];
            let (s, l) = self.free_list[pos];
            if ps + pl == s {
                self.free_list[pos - 1] = (ps, pl + l);
                self.free_list.remove(pos);
            }
        }
    }

    /// The live block containing `addr`, as `(payload_start, payload_len)`.
    ///
    /// This is the metadata a libsafe-style interceptor (§5.2) can recover
    /// for heap pointers.
    pub fn block_containing(&self, addr: VirtAddr) -> Option<(VirtAddr, u32)> {
        self.blocks.iter().find_map(|(&data, &need)| {
            let len = need - HEADER_SIZE;
            (addr >= data && addr < data + len).then_some((data, len))
        })
    }

    /// `true` if `data` is a live allocation.
    pub fn is_live(&self, data: VirtAddr) -> bool {
        self.blocks.contains_key(&data)
    }

    /// Payload size of a live allocation, if any.
    pub fn payload_size(&self, data: VirtAddr) -> Option<u32> {
        self.blocks.get(&data).map(|need| need - HEADER_SIZE)
    }

    /// Base of the managed region.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Size of the managed region.
    pub fn region_size(&self) -> u32 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnew_memory::SegmentKind;

    fn setup() -> (AddressSpace, HeapAllocator) {
        let space = AddressSpace::ilp32();
        let heap = HeapAllocator::for_space(&space);
        (space, heap)
    }

    #[test]
    fn sequential_allocations_are_adjacent() {
        let (mut space, mut heap) = setup();
        let a = heap.alloc(&mut space, 16).unwrap();
        let b = heap.alloc(&mut space, 16).unwrap();
        // 16 payload + 8 header
        assert_eq!(b.offset_from(a), 24);
        assert_eq!(heap.payload_size(a), Some(16));
        assert!(heap.is_live(a));
    }

    #[test]
    fn rounding_to_grain() {
        let (mut space, mut heap) = setup();
        let a = heap.alloc(&mut space, 1).unwrap();
        let b = heap.alloc(&mut space, 1).unwrap();
        assert_eq!(b.offset_from(a), 16); // 8 payload grain + 8 header
    }

    #[test]
    fn free_and_reuse() {
        let (mut space, mut heap) = setup();
        let a = heap.alloc(&mut space, 32).unwrap();
        heap.free(&mut space, a).unwrap();
        let b = heap.alloc(&mut space, 32).unwrap();
        assert_eq!(a, b); // first-fit reuses the hole
        assert_eq!(heap.stats().total_allocs, 2);
        assert_eq!(heap.stats().total_frees, 1);
    }

    #[test]
    fn coalescing_rebuilds_large_blocks() {
        let (mut space, mut heap) = setup();
        let initial_largest = heap.largest_free();
        let a = heap.alloc(&mut space, 16).unwrap();
        let b = heap.alloc(&mut space, 16).unwrap();
        let c = heap.alloc(&mut space, 16).unwrap();
        heap.free(&mut space, a).unwrap();
        heap.free(&mut space, c).unwrap();
        heap.free(&mut space, b).unwrap(); // middle last: both merges fire
        assert_eq!(heap.largest_free(), initial_largest);
        assert_eq!(heap.free_list.len(), 1);
    }

    #[test]
    fn double_free_detected() {
        let (mut space, mut heap) = setup();
        let a = heap.alloc(&mut space, 8).unwrap();
        heap.free(&mut space, a).unwrap();
        assert!(matches!(heap.free(&mut space, a), Err(RuntimeError::InvalidFree { .. })));
    }

    #[test]
    fn header_corruption_detected_on_free() {
        let (mut space, mut heap) = setup();
        let a = heap.alloc(&mut space, 16).unwrap();
        let b = heap.alloc(&mut space, 16).unwrap();
        // Overflow a into b's header (the Listing 12 geometry).
        space.write_bytes(a, &[0x41; 20]).unwrap();
        assert!(matches!(heap.free(&mut space, b), Err(RuntimeError::HeapCorruption { .. })));
        // a's own header is intact.
        heap.free(&mut space, a).unwrap();
    }

    #[test]
    fn exhaustion_reports_largest_free() {
        let mut space = AddressSpace::ilp32();
        let seg = space.segment(SegmentKind::Heap);
        let mut heap = HeapAllocator::new(seg.base(), 64);
        let _a = heap.alloc(&mut space, 40).unwrap();
        let err = heap.alloc(&mut space, 40).unwrap_err();
        assert!(matches!(err, RuntimeError::HeapExhausted { requested: 40, .. }));
        assert_eq!(heap.stats().failed_allocs, 1);
    }

    #[test]
    fn trusting_allocator_swallows_forged_sizes() {
        // Forge a neighbour's header to cover the block after it: the
        // trusting free poisons the free list, and the next allocation
        // overlaps the live victim.
        let (mut space, mut heap) = setup();
        heap.set_trust_headers(true);
        let a = heap.alloc(&mut space, 16).unwrap();
        let victim = heap.alloc(&mut space, 16).unwrap();
        // Attacker rewrites a's header: size now covers both blocks.
        space.write_u32(a - HEADER_SIZE, 48).unwrap();
        space.write_u32(a - HEADER_SIZE + 4, BLOCK_MAGIC).unwrap();
        heap.free(&mut space, a).unwrap(); // silently accepted
        let c = heap.alloc(&mut space, 40).unwrap();
        // The new block overlaps the still-live victim.
        assert!(c <= victim && victim < c + 40);
        assert!(heap.is_live(victim));
    }

    #[test]
    fn checking_allocator_rejects_the_same_forgery() {
        let (mut space, mut heap) = setup();
        let a = heap.alloc(&mut space, 16).unwrap();
        let _victim = heap.alloc(&mut space, 16).unwrap();
        space.write_u32(a - HEADER_SIZE, 48).unwrap();
        assert!(matches!(heap.free(&mut space, a), Err(RuntimeError::HeapCorruption { .. })));
    }

    #[test]
    fn sized_free_leaks_the_difference() {
        // §4.5: allocate a GradStudent (32 bytes), release as a Student
        // (16 bytes): 16 bytes leak per iteration.
        let (mut space, mut heap) = setup();
        let mut expected_leak = 0u64;
        for _ in 0..10 {
            let p = heap.alloc(&mut space, 32).unwrap();
            heap.free_sized(&mut space, p, 16).unwrap();
            expected_leak += 16;
            assert_eq!(heap.stats().leaked_bytes, expected_leak);
        }
        assert_eq!(heap.stats().live_blocks, 0);
        // The leaked tails are really unusable: free space dropped.
        assert!(heap.total_free() < heap.region_size());
        assert_eq!(u64::from(heap.region_size() - heap.total_free()), expected_leak);
    }

    #[test]
    fn block_containing_finds_interior_addresses() {
        let (mut space, mut heap) = setup();
        let a = heap.alloc(&mut space, 32).unwrap();
        assert_eq!(heap.block_containing(a), Some((a, 32)));
        assert_eq!(heap.block_containing(a + 31), Some((a, 32)));
        assert_eq!(heap.block_containing(a + 32), None);
        heap.free(&mut space, a).unwrap();
        assert_eq!(heap.block_containing(a), None);
    }

    #[test]
    fn stats_track_peak() {
        let (mut space, mut heap) = setup();
        let a = heap.alloc(&mut space, 100).unwrap();
        let peak = heap.stats().peak_live_bytes;
        heap.free(&mut space, a).unwrap();
        assert_eq!(heap.stats().live_bytes, 0);
        assert_eq!(heap.stats().peak_live_bytes, peak);
        assert!(peak >= 100);
    }

    #[test]
    fn display_stats() {
        let (_, heap) = setup();
        assert!(heap.stats().to_string().contains("live blocks"));
    }
}
