//! Simulated C++ machine: call frames, StackGuard canaries, heap
//! allocator, function table, virtual dispatch, and libc-level operations.
//!
//! This crate is the execution substrate for the reproduction of
//! *"A New Class of Buffer Overflow Attacks"* (Kundu & Bertino, ICDCS
//! 2011). A [`Machine`] bundles:
//!
//! * the [`pnew_memory::AddressSpace`] process image;
//! * a [`pnew_object::ClassRegistry`] with vtables materialized into
//!   rodata;
//! * a call stack whose [`Frame`] geometry reproduces the paper's §3.6
//!   slot arithmetic (locals, then optional canary, optional saved frame
//!   pointer, return address);
//! * a first-fit [`HeapAllocator`] with in-memory block headers;
//! * a [`FuncTable`] of named text-segment entry points (including
//!   privileged ones like `system`) so control transfers can be
//!   classified;
//! * a scripted attacker [`InputStream`] (the `cin >>` of the listings).
//!
//! Attack outcomes are values, not crashes: [`ControlOutcome`] for
//! returns, [`DispatchOutcome`] for virtual/function-pointer calls.
//!
//! # Examples
//!
//! The paper's naive stack smash, detected by StackGuard:
//!
//! ```
//! use pnew_object::{ClassRegistry, CxxType};
//! use pnew_runtime::{ControlOutcome, Machine, VarDecl};
//!
//! # fn main() -> Result<(), pnew_runtime::RuntimeError> {
//! let mut reg = ClassRegistry::new();
//! let student = reg
//!     .class("Student")
//!     .field("gpa", CxxType::Double)
//!     .field("year", CxxType::Int)
//!     .field("semester", CxxType::Int)
//!     .register();
//!
//! let mut machine = Machine::with_registry(reg);
//! machine.push_frame("addStudent", &[("stud", VarDecl::Class(student))])?;
//! let stud = machine.local_addr("stud")?;
//! // Overflow the object: ssn[0..3] land on canary, saved FP, ret.
//! for i in 0..3 {
//!     machine.space_mut().write_u32(stud + 16 + 4 * i, 0xdeadbeef)?;
//! }
//! let event = machine.ret()?;
//! assert!(matches!(event.outcome, ControlOutcome::CanaryDetected { .. }));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod control;
mod error;
mod frame;
mod func;
mod heap;
mod input;
mod machine;
mod resources;

pub use control::{ControlOutcome, DispatchOutcome, FaultReason, RetEvent};
pub use error::RuntimeError;
pub use frame::{Frame, Local, StackProtection};
pub use func::{FuncDef, FuncEffect, FuncId, FuncTable, Privilege};
pub use heap::{HeapAllocator, HeapStats, BLOCK_MAGIC, HEADER_SIZE};
pub use input::{InputStream, InputToken};
pub use machine::{Machine, MachineBuilder, VarDecl};
pub use resources::{Fd, ResourceFailure, ResourceTable};

/// Crate-wide result alias for machine operations.
pub type Result<T, E = RuntimeError> = std::result::Result<T, E>;
