//! The simulated C++ machine.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pnew_memory::{AddressSpace, AddressSpaceBuilder, MemoryError, Perms, SegmentKind, VirtAddr};
use pnew_object::{ClassId, ClassRegistry, CxxType, LayoutPolicy, ObjectLayout};

use crate::control::{ControlOutcome, DispatchOutcome, FaultReason, RetEvent};
use crate::error::RuntimeError;
use crate::frame::{Frame, StackProtection};
use crate::func::{FuncEffect, FuncId, FuncTable, Privilege};
use crate::heap::HeapAllocator;
use crate::input::InputStream;
use crate::resources::ResourceTable;

/// Declaration of a stack local or global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarDecl {
    /// A scalar/array/pointer-typed variable.
    Ty(CxxType),
    /// An instance of a registered class.
    Class(ClassId),
    /// A raw buffer (e.g. `char mem_pool[N]`) with explicit alignment.
    Buffer {
        /// Size in bytes.
        size: u32,
        /// Alignment (power of two).
        align: u32,
    },
}

impl VarDecl {
    /// Shorthand for a class instance declaration.
    pub fn class(id: ClassId) -> Self {
        VarDecl::Class(id)
    }

    /// Shorthand for a `char buf[n]` declaration.
    pub fn char_buf(n: u32) -> Self {
        VarDecl::Buffer { size: n, align: 1 }
    }
}

impl From<CxxType> for VarDecl {
    fn from(ty: CxxType) -> Self {
        VarDecl::Ty(ty)
    }
}

/// A defined global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GlobalVar {
    addr: VirtAddr,
    size: u32,
    decl: VarDecl,
}

/// Configures and builds a [`Machine`].
///
/// Defaults reproduce the paper's platform: ILP32 layout, gcc StackGuard
/// active, NX stack, no shadow stack.
///
/// # Examples
///
/// ```
/// use pnew_object::ClassRegistry;
/// use pnew_runtime::{MachineBuilder, StackProtection};
///
/// let machine = MachineBuilder::new()
///     .protection(StackProtection::None)
///     .seed(7)
///     .build(ClassRegistry::new());
/// assert_eq!(machine.protection(), StackProtection::None);
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    policy: LayoutPolicy,
    protection: StackProtection,
    shadow_stack: bool,
    executable_stack: bool,
    seed: u64,
    aslr_seed: Option<u64>,
    heap_size: Option<u32>,
    stack_size: Option<u32>,
}

impl MachineBuilder {
    /// Starts a builder with the paper-platform defaults.
    pub fn new() -> Self {
        MachineBuilder {
            policy: LayoutPolicy::paper(),
            protection: StackProtection::StackGuard,
            shadow_stack: false,
            executable_stack: false,
            seed: 0x1cdc_2011,
            aslr_seed: None,
            heap_size: None,
            stack_size: None,
        }
    }

    /// Enables seeded ASLR on the process image (the E24 ablation; the
    /// paper's platform has none).
    pub fn aslr(mut self, seed: u64) -> Self {
        self.aslr_seed = Some(seed);
        self
    }

    /// Sets the layout policy (data model / double alignment).
    pub fn policy(mut self, policy: LayoutPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the stack-protection configuration.
    pub fn protection(mut self, protection: StackProtection) -> Self {
        self.protection = protection;
        self
    }

    /// Enables the §5.2 return-address (shadow) stack.
    pub fn shadow_stack(mut self, enabled: bool) -> Self {
        self.shadow_stack = enabled;
        self
    }

    /// Makes the stack executable (pre-NX system, for code injection).
    pub fn executable_stack(mut self, enabled: bool) -> Self {
        self.executable_stack = enabled;
        self
    }

    /// Seeds the canary RNG (determinism for tests and benches).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the heap segment size.
    pub fn heap_size(mut self, size: u32) -> Self {
        self.heap_size = Some(size);
        self
    }

    /// Overrides the stack segment size.
    pub fn stack_size(mut self, size: u32) -> Self {
        self.stack_size = Some(size);
        self
    }

    /// Builds the machine, materializing vtables for every polymorphic
    /// class in `registry`.
    pub fn build(self, registry: ClassRegistry) -> Machine {
        let mut space_builder = AddressSpaceBuilder::new(self.policy.model());
        if let Some(aslr) = self.aslr_seed {
            space_builder = space_builder.aslr(aslr);
        }
        if let Some(h) = self.heap_size {
            space_builder = space_builder.segment_size(SegmentKind::Heap, h);
        }
        if let Some(s) = self.stack_size {
            space_builder = space_builder.segment_size(SegmentKind::Stack, s);
        }
        let mut space = space_builder.build();
        if self.executable_stack {
            space.set_segment_perms(SegmentKind::Stack, Perms::ALL);
        }

        let text = space.segment(SegmentKind::Text);
        let funcs = FuncTable::new(text.base(), text.size());
        let return_site = text.base() + 0x20;
        let heap = HeapAllocator::for_space(&space);
        let sp = space.segment(SegmentKind::Stack).end();
        let data_cursor = space.segment(SegmentKind::Data).base();
        let bss_cursor = space.segment(SegmentKind::Bss).base();

        let mut rng = StdRng::seed_from_u64(self.seed);
        // gcc-style canary: random, with a NUL "terminator" byte.
        let canary = rng.gen::<u32>() & 0xffff_ff00;

        let mut machine = Machine {
            space,
            registry,
            policy: self.policy,
            funcs,
            heap,
            input: InputStream::new(),
            output: Vec::new(),
            protection: self.protection,
            shadow: if self.shadow_stack { Some(Vec::new()) } else { None },
            frames: Vec::new(),
            sp,
            canary,
            return_site,
            vtables: HashMap::new(),
            vtable_class_by_addr: HashMap::new(),
            globals: HashMap::new(),
            data_cursor,
            bss_cursor,
            layout_cache: HashMap::new(),
            effects: HashMap::new(),
            shells: Vec::new(),
            resources: ResourceTable::new(),
            rng,
        };
        machine.materialize_vtables();
        machine
    }
}

impl Default for MachineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The simulated C++ process: address space, object system, call stack,
/// heap, function table, and scripted I/O.
///
/// A `Machine` is the substrate every attack scenario runs on. It enforces
/// what the real platform enforces (segment bounds, permissions, canaries
/// when enabled) and nothing more.
#[derive(Debug, Clone)]
pub struct Machine {
    space: AddressSpace,
    registry: ClassRegistry,
    policy: LayoutPolicy,
    funcs: FuncTable,
    heap: HeapAllocator,
    input: InputStream,
    output: Vec<String>,
    protection: StackProtection,
    shadow: Option<Vec<VirtAddr>>,
    frames: Vec<Frame>,
    sp: VirtAddr,
    canary: u32,
    return_site: VirtAddr,
    vtables: HashMap<ClassId, VirtAddr>,
    vtable_class_by_addr: HashMap<VirtAddr, ClassId>,
    globals: HashMap<String, GlobalVar>,
    data_cursor: VirtAddr,
    bss_cursor: VirtAddr,
    layout_cache: HashMap<ClassId, Arc<ObjectLayout>>,
    effects: HashMap<FuncId, Vec<FuncEffect>>,
    shells: Vec<String>,
    resources: ResourceTable,
    rng: StdRng,
}

impl Machine {
    /// Builds a machine with all defaults over `registry`.
    pub fn with_registry(registry: ClassRegistry) -> Self {
        MachineBuilder::new().build(registry)
    }

    // ----- accessors ------------------------------------------------------

    /// The address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable address space (raw scenario writes).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// The class registry.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// The layout policy.
    pub fn policy(&self) -> LayoutPolicy {
        self.policy
    }

    /// The function table.
    pub fn funcs(&self) -> &FuncTable {
        &self.funcs
    }

    /// The stack-protection configuration.
    pub fn protection(&self) -> StackProtection {
        self.protection
    }

    /// The process canary value (StackGuard).
    pub fn canary(&self) -> u32 {
        self.canary
    }

    /// Scripted input stream.
    pub fn input_mut(&mut self) -> &mut InputStream {
        &mut self.input
    }

    /// Heap statistics.
    pub fn heap_stats(&self) -> crate::heap::HeapStats {
        self.heap.stats()
    }

    /// The heap allocator (read-only view).
    pub fn heap(&self) -> &HeapAllocator {
        &self.heap
    }

    /// Pointer size under the current policy.
    pub fn ptr_size(&self) -> u32 {
        self.policy.pointer_size()
    }

    /// The legitimate return-site address frames are linked to.
    pub fn return_site(&self) -> VirtAddr {
        self.return_site
    }

    // ----- output ---------------------------------------------------------

    /// Appends a line to the program output (the simulated `cout`).
    pub fn print(&mut self, line: impl Into<String>) {
        self.output.push(line.into());
    }

    /// Program output so far.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Takes and clears the program output.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    // ----- input ----------------------------------------------------------

    /// The simulated `cin >> (int)`.
    ///
    /// # Errors
    ///
    /// Fails when the scripted input is exhausted or mistyped.
    pub fn cin_int(&mut self) -> Result<i64, RuntimeError> {
        self.input.next_int()
    }

    /// The simulated `cin >> (double)`.
    ///
    /// # Errors
    ///
    /// Fails when the scripted input is exhausted or mistyped.
    pub fn cin_double(&mut self) -> Result<f64, RuntimeError> {
        self.input.next_double()
    }

    /// The simulated `cin >> (string)`.
    ///
    /// # Errors
    ///
    /// Fails when the scripted input is exhausted or mistyped.
    pub fn cin_str(&mut self) -> Result<String, RuntimeError> {
        self.input.next_str()
    }

    // ----- layouts & classes ----------------------------------------------

    /// Computed (cached) layout of a class under the machine policy.
    ///
    /// # Errors
    ///
    /// Propagates layout-computation failures.
    pub fn layout(&mut self, class: ClassId) -> Result<Arc<ObjectLayout>, RuntimeError> {
        if let Some(l) = self.layout_cache.get(&class) {
            return Ok(Arc::clone(l));
        }
        let l = Arc::new(self.registry.layout(class, &self.policy)?);
        self.layout_cache.insert(class, Arc::clone(&l));
        Ok(l)
    }

    /// The simulated `sizeof()` on a class.
    ///
    /// # Errors
    ///
    /// Propagates layout-computation failures.
    pub fn size_of(&mut self, class: ClassId) -> Result<u32, RuntimeError> {
        Ok(self.layout(class)?.size())
    }

    /// Size and alignment of a variable declaration.
    ///
    /// # Errors
    ///
    /// Propagates layout-computation failures for class declarations.
    pub fn decl_size(&mut self, decl: &VarDecl) -> Result<(u32, u32), RuntimeError> {
        match decl {
            VarDecl::Ty(ty) => {
                let size = ty.scalar_size(&self.policy).expect("scalar decl");
                let align = ty.scalar_align(&self.policy).expect("scalar decl");
                Ok((size, align))
            }
            VarDecl::Class(id) => {
                let l = self.layout(*id)?;
                Ok((l.size(), l.align()))
            }
            VarDecl::Buffer { size, align } => Ok((*size, *align)),
        }
    }

    // ----- functions ------------------------------------------------------

    /// Registers (or finds) a function; returns its id.
    pub fn register_function(&mut self, name: &str, privilege: Privilege) -> FuncId {
        self.funcs.register(name, privilege)
    }

    /// Attaches side effects to a registered function; they run whenever
    /// the function is [`invoke`](Self::invoke)d — legitimately or through
    /// a hijacked transfer.
    pub fn set_function_effects(&mut self, id: FuncId, effects: Vec<FuncEffect>) {
        self.effects.insert(id, effects);
    }

    /// Invokes a registered function's effects (the observable part of
    /// "control reached this code").
    ///
    /// # Errors
    ///
    /// Propagates memory faults from effect writes/reads.
    pub fn invoke(&mut self, id: FuncId) -> Result<(), RuntimeError> {
        let effects = self.effects.get(&id).cloned().unwrap_or_default();
        for effect in effects {
            match effect {
                FuncEffect::Print(line) => self.print(line),
                FuncEffect::WriteI32 { addr, value } => {
                    self.space.write_i32(addr, value)?;
                }
                FuncEffect::SpawnShell { arg } => {
                    let cmd = self.space.read_cstr(arg, 64)?;
                    self.print(format!("$ {cmd}"));
                    self.shells.push(cmd);
                }
            }
        }
        Ok(())
    }

    /// Commands "executed" by [`FuncEffect::SpawnShell`] so far — the
    /// attack-impact ledger.
    pub fn shells_spawned(&self) -> &[String] {
        &self.shells
    }

    /// Address of a registered function.
    ///
    /// # Errors
    ///
    /// Fails if the function is unknown.
    pub fn function_addr(&self, name: &str) -> Result<VirtAddr, RuntimeError> {
        self.funcs
            .by_name(name)
            .map(|d| d.addr())
            .ok_or_else(|| RuntimeError::UnknownFunction { name: name.to_owned() })
    }

    // ----- vtables --------------------------------------------------------

    fn materialize_vtables(&mut self) {
        // Plan: one table per polymorphic class, laid out in rodata after a
        // small gap, each slot a pointer to `Impl::method`.
        let rodata = self.space.segment(SegmentKind::Rodata);
        let mut cursor = rodata.base() + 0x40;
        let ptr = self.ptr_size();

        let ids: Vec<ClassId> = self.registry.iter().map(|d| d.id()).collect();
        let mut writes: Vec<(ClassId, VirtAddr, Vec<VirtAddr>)> = Vec::new();
        for id in ids {
            let vt = self.registry.vtable(id);
            if vt.is_empty() {
                continue;
            }
            let mut entries = Vec::with_capacity(vt.len());
            for slot in vt.slots() {
                let impl_name =
                    format!("{}::{}", self.registry.def(slot.impl_class()).name(), slot.name());
                let fid = self.funcs.register(&impl_name, Privilege::Normal);
                entries.push(self.funcs.def(fid).addr());
            }
            writes.push((id, cursor, entries));
            cursor = (cursor + vt.len() as u32 * ptr).align_up(8);
        }

        // Loader step: rodata is briefly writable while tables are emitted.
        self.space.set_segment_perms(SegmentKind::Rodata, Perms::READ_WRITE);
        for (id, addr, entries) in writes {
            for (i, e) in entries.iter().enumerate() {
                self.space.write_ptr(addr + i as u32 * ptr, *e).expect("rodata vtable write");
            }
            self.vtables.insert(id, addr);
            self.vtable_class_by_addr.insert(addr, id);
        }
        self.space.set_segment_perms(SegmentKind::Rodata, Perms::READ);
        self.space.trace_mut().clear();
    }

    /// Address of the materialized vtable of `class`, if polymorphic.
    pub fn vtable_addr(&self, class: ClassId) -> Option<VirtAddr> {
        self.vtables.get(&class).copied()
    }

    // ----- globals ---------------------------------------------------------

    /// Defines a global variable in the data or bss segment, in declaration
    /// order (adjacency is what the §3.5/§3.7 attacks exploit).
    ///
    /// # Errors
    ///
    /// Fails if the segment is full or the declaration cannot be sized.
    ///
    /// # Panics
    ///
    /// Panics if `segment` is not [`SegmentKind::Data`] or
    /// [`SegmentKind::Bss`], or if the name is already defined.
    pub fn define_global(
        &mut self,
        name: &str,
        decl: VarDecl,
        segment: SegmentKind,
    ) -> Result<VirtAddr, RuntimeError> {
        assert!(
            matches!(segment, SegmentKind::Data | SegmentKind::Bss),
            "globals live in data or bss"
        );
        assert!(!self.globals.contains_key(name), "global {name} is already defined");
        let (size, align) = self.decl_size(&decl)?;
        let (cursor, seg_name) = match segment {
            SegmentKind::Data => (&mut self.data_cursor, "data"),
            _ => (&mut self.bss_cursor, "bss"),
        };
        let addr = cursor.align_up(align);
        let end = addr.checked_add(u64::from(size))?;
        if end > self.space.segment(segment).end() {
            return Err(RuntimeError::SegmentFull { segment: seg_name });
        }
        *cursor = end;
        self.globals.insert(name.to_owned(), GlobalVar { addr, size, decl });
        Ok(addr)
    }

    /// Address of a defined global.
    ///
    /// # Errors
    ///
    /// Fails if the global is unknown.
    pub fn global(&self, name: &str) -> Result<VirtAddr, RuntimeError> {
        self.globals
            .get(name)
            .map(|g| g.addr)
            .ok_or_else(|| RuntimeError::UnknownGlobal { name: name.to_owned() })
    }

    /// Size of a defined global.
    ///
    /// # Errors
    ///
    /// Fails if the global is unknown.
    pub fn global_size(&self, name: &str) -> Result<u32, RuntimeError> {
        self.globals
            .get(name)
            .map(|g| g.size)
            .ok_or_else(|| RuntimeError::UnknownGlobal { name: name.to_owned() })
    }

    // ----- heap -------------------------------------------------------------

    /// The simulated non-placement `new` / `new[]`: heap allocation.
    ///
    /// # Errors
    ///
    /// Fails when the heap is exhausted.
    pub fn heap_alloc(&mut self, size: u32) -> Result<VirtAddr, RuntimeError> {
        self.heap.alloc(&mut self.space, size)
    }

    /// The simulated `delete` of a whole allocation.
    ///
    /// # Errors
    ///
    /// Fails on invalid frees and corrupted headers.
    pub fn heap_free(&mut self, addr: VirtAddr) -> Result<(), RuntimeError> {
        self.heap.free(&mut self.space, addr)
    }

    /// Switches the allocator between hardened (default) and classic
    /// header-trusting behaviour (see
    /// [`HeapAllocator::set_trust_headers`]).
    pub fn set_heap_trust_headers(&mut self, trust: bool) {
        self.heap.set_trust_headers(trust);
    }

    /// Size-mismatched release (§4.5): frees only `size` bytes of the
    /// block, stranding the rest.
    ///
    /// # Errors
    ///
    /// Fails on invalid frees and corrupted headers.
    pub fn heap_free_sized(&mut self, addr: VirtAddr, size: u32) -> Result<(), RuntimeError> {
        self.heap.free_sized(&mut self.space, addr, size)
    }

    // ----- stack ------------------------------------------------------------

    /// Pushes a stack frame for `function` with the given locals (in
    /// declaration order), writing return address, saved frame pointer and
    /// canary as configured.
    ///
    /// # Errors
    ///
    /// Fails if the stack would overflow its segment or a declaration
    /// cannot be sized.
    pub fn push_frame(
        &mut self,
        function: &str,
        locals: &[(&str, VarDecl)],
    ) -> Result<(), RuntimeError> {
        let mut resolved = Vec::with_capacity(locals.len());
        for (name, decl) in locals {
            let (size, align) = self.decl_size(decl)?;
            resolved.push(((*name).to_owned(), size, align));
        }
        let mut frame = Frame::plan(function, self.sp, self.ptr_size(), self.protection, &resolved);
        let stack_base = self.space.segment(SegmentKind::Stack).base();
        if frame.sp() < stack_base + 64 {
            return Err(RuntimeError::StackExhausted { needed: frame.size() });
        }

        let fp_value = frame.entry_sp().value();
        self.space.write_ptr(frame.ret_slot(), self.return_site)?;
        if let Some(fp) = frame.fp_slot() {
            self.space.write_u32(fp, fp_value)?;
        }
        let canary_value = if let Some(c) = frame.canary_slot() {
            self.space.write_u32(c, self.canary)?;
            Some(self.canary)
        } else {
            None
        };
        frame.record_entry(self.return_site, canary_value, fp_value);
        if let Some(shadow) = &mut self.shadow {
            shadow.push(self.return_site);
        }
        self.sp = frame.sp();
        self.frames.push(frame);
        Ok(())
    }

    /// The current (innermost) frame.
    ///
    /// # Errors
    ///
    /// Fails if no frame is active.
    pub fn frame(&self) -> Result<&Frame, RuntimeError> {
        self.frames.last().ok_or(RuntimeError::NoActiveFrame)
    }

    /// Address of a local in the current frame.
    ///
    /// # Errors
    ///
    /// Fails if no frame is active or the local is unknown.
    pub fn local_addr(&self, name: &str) -> Result<VirtAddr, RuntimeError> {
        let frame = self.frame()?;
        frame
            .local(name)
            .map(|l| l.addr())
            .ok_or_else(|| RuntimeError::UnknownLocal { name: name.to_owned() })
    }

    /// Returns from the current frame, performing the canary check (if
    /// StackGuard is on), the shadow-stack check (if enabled), and
    /// classifying where control goes.
    ///
    /// # Errors
    ///
    /// Fails if no frame is active or frame metadata cannot be read.
    pub fn ret(&mut self) -> Result<RetEvent, RuntimeError> {
        let frame = self.frames.pop().ok_or(RuntimeError::NoActiveFrame)?;
        self.sp = frame.entry_sp();
        let shadow_expected = self.shadow.as_mut().and_then(|s| s.pop());

        let canary_intact = match (frame.canary_slot(), frame.canary_value()) {
            (Some(slot), Some(value)) => Some(self.space.read_u32(slot)? == value),
            _ => None,
        };
        let fp_intact = match frame.fp_slot() {
            Some(slot) => Some(self.space.read_u32(slot)? == frame.saved_fp_value()),
            None => None,
        };

        if canary_intact == Some(false) {
            let found = self.space.read_u32(frame.canary_slot().expect("canary slot"))?;
            self.print("*** stack smashing detected ***: terminated");
            return Ok(RetEvent {
                outcome: ControlOutcome::CanaryDetected {
                    expected: frame.canary_value().expect("canary value"),
                    found,
                },
                canary_intact,
                fp_intact,
            });
        }

        let target = self.space.read_ptr(frame.ret_slot())?;

        if let Some(expected) = shadow_expected {
            if target != expected {
                self.print("return address stack mismatch: terminated");
                return Ok(RetEvent {
                    outcome: ControlOutcome::ShadowStackDetected { expected, found: target },
                    canary_intact,
                    fp_intact,
                });
            }
        }

        let outcome = if target == frame.return_target() {
            ControlOutcome::Return
        } else {
            self.classify_code_target(target)
        };
        Ok(RetEvent { outcome, canary_intact, fp_intact })
    }

    /// Classifies a control transfer to `target` (used by `ret` and by the
    /// pointer-subterfuge scenarios).
    pub fn classify_code_target(&self, target: VirtAddr) -> ControlOutcome {
        if let Some(def) = self.funcs.resolve(target) {
            return ControlOutcome::Hijacked {
                func: def.id(),
                name: def.name().to_owned(),
                privileged: def.is_privileged(),
                target,
            };
        }
        match self.space.check_exec(target) {
            Ok(segment) => ControlOutcome::ShellCode { addr: target, segment },
            Err(MemoryError::PermissionDenied { .. }) => {
                ControlOutcome::Fault { addr: target, reason: FaultReason::NxViolation }
            }
            Err(_) => ControlOutcome::Fault { addr: target, reason: FaultReason::Unmapped },
        }
    }

    // ----- objects ----------------------------------------------------------

    /// Writes the compiler-generated part of construction: every vtable
    /// pointer of `class` at `addr`. Field initialization is up to the
    /// scenario (as in the paper's constructors).
    ///
    /// # Errors
    ///
    /// Fails if the object memory cannot be written, or if a vptr slot
    /// lands past the end of the address space (the placement address is
    /// attacker-influenced, so the arithmetic is checked, not panicking).
    pub fn construct(&mut self, addr: VirtAddr, class: ClassId) -> Result<(), RuntimeError> {
        let layout = self.layout(class)?;
        for slot in layout.vptr_slots() {
            let table = self
                .vtables
                .get(&slot.table_class)
                .copied()
                .expect("polymorphic class has a materialized vtable");
            let slot_addr = addr.checked_add(u64::from(slot.offset))?;
            self.space.write_ptr(slot_addr, table)?;
        }
        Ok(())
    }

    /// Address of `path` inside an instance of `class` based at `base`.
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve, or if `base` plus the field
    /// offset overflows the address space (`base` is attacker-influenced).
    pub fn field_addr(
        &mut self,
        class: ClassId,
        base: VirtAddr,
        path: &str,
    ) -> Result<VirtAddr, RuntimeError> {
        let layout = self.layout(class)?;
        let offset = layout.offset_of(path)?;
        Ok(base.checked_add(u64::from(offset))?)
    }

    /// Address of `path[index]` inside an instance of `class` at `base`.
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve, the index is out of bounds, or
    /// the element address overflows the address space (`base` and `index`
    /// are attacker-influenced).
    pub fn element_addr(
        &mut self,
        class: ClassId,
        base: VirtAddr,
        path: &str,
        index: u32,
    ) -> Result<VirtAddr, RuntimeError> {
        let layout = self.layout(class)?;
        let policy = self.policy;
        let offset = layout.element_offset(path, index, &policy)?;
        Ok(base.checked_add(u64::from(offset))?)
    }

    /// Performs a virtual call `obj->method()` where `obj` statically has
    /// type `class`, following the in-object vptr like the generated code
    /// would (§3.8.2).
    ///
    /// # Errors
    ///
    /// Fails only on scenario errors (unknown method); attacker-induced
    /// bad pointers are reported as [`DispatchOutcome::Fault`].
    pub fn virtual_call(
        &mut self,
        obj: VirtAddr,
        class: ClassId,
        method: &str,
    ) -> Result<DispatchOutcome, RuntimeError> {
        let layout = self.layout(class)?;
        let Some(voff) = layout.primary_vptr_offset() else {
            return Err(RuntimeError::UnknownFunction {
                name: format!("{}::{method}", layout.class_name()),
            });
        };
        let vt = self.registry.vtable(class);
        let Some(slot_idx) = vt.slot_index(method) else {
            return Err(RuntimeError::UnknownFunction {
                name: format!("{}::{method}", layout.class_name()),
            });
        };
        let ptr = self.ptr_size();

        // `obj` is attacker-influenced (the paper's corrupted pointers can
        // point anywhere), so the vptr address is computed checked: an
        // object placed at the top of the address space faults instead of
        // panicking the simulator.
        let Ok(vptr_addr) = obj.checked_add(u64::from(voff)) else {
            return Ok(DispatchOutcome::Fault { addr: obj, reason: FaultReason::BadPointer });
        };
        let vptr = match self.space.read_ptr(vptr_addr) {
            Ok(p) => p,
            Err(_) => {
                return Ok(DispatchOutcome::Fault {
                    addr: vptr_addr,
                    reason: FaultReason::BadPointer,
                })
            }
        };
        let slot_addr = match vptr.checked_add(u64::from(slot_idx as u32 * ptr)) {
            Ok(a) => a,
            Err(_) => {
                return Ok(DispatchOutcome::Fault { addr: vptr, reason: FaultReason::BadPointer })
            }
        };
        let fn_addr = match self.space.read_ptr(slot_addr) {
            Ok(a) => a,
            Err(_) => {
                return Ok(DispatchOutcome::Fault {
                    addr: slot_addr,
                    reason: FaultReason::BadPointer,
                })
            }
        };

        let legit = self.vtable_class_by_addr.get(&vptr).copied();
        match self.funcs.resolve(fn_addr) {
            Some(def) => {
                if let Some(dynamic_class) = legit {
                    let dyn_vt = self.registry.vtable(dynamic_class);
                    let expected = dyn_vt.slots().get(slot_idx).map(|s| {
                        format!("{}::{}", self.registry.def(s.impl_class()).name(), s.name())
                    });
                    if expected.as_deref() == Some(def.name()) {
                        return Ok(DispatchOutcome::Valid {
                            func: def.id(),
                            name: def.name().to_owned(),
                        });
                    }
                }
                Ok(DispatchOutcome::Hijacked {
                    func: def.id(),
                    name: def.name().to_owned(),
                    privileged: def.is_privileged(),
                })
            }
            None => match self.space.check_exec(fn_addr) {
                Ok(_) => {
                    Ok(DispatchOutcome::Fault { addr: fn_addr, reason: FaultReason::BadPointer })
                }
                Err(MemoryError::PermissionDenied { .. }) => {
                    Ok(DispatchOutcome::Fault { addr: fn_addr, reason: FaultReason::NxViolation })
                }
                Err(_) => {
                    Ok(DispatchOutcome::Fault { addr: fn_addr, reason: FaultReason::Unmapped })
                }
            },
        }
    }

    /// Calls through a C function pointer holding `target`, expecting the
    /// function named `expected` (§3.9). `None` for `expected` means the
    /// pointer was supposed to stay NULL/unused.
    pub fn call_function_pointer(
        &self,
        target: VirtAddr,
        expected: Option<&str>,
    ) -> DispatchOutcome {
        match self.funcs.resolve(target) {
            Some(def) if Some(def.name()) == expected => {
                DispatchOutcome::Valid { func: def.id(), name: def.name().to_owned() }
            }
            Some(def) => DispatchOutcome::Hijacked {
                func: def.id(),
                name: def.name().to_owned(),
                privileged: def.is_privileged(),
            },
            None => match self.space.check_exec(target) {
                Ok(_) => DispatchOutcome::Fault { addr: target, reason: FaultReason::BadPointer },
                Err(MemoryError::PermissionDenied { .. }) => {
                    DispatchOutcome::Fault { addr: target, reason: FaultReason::NxViolation }
                }
                Err(_) => DispatchOutcome::Fault { addr: target, reason: FaultReason::Unmapped },
            },
        }
    }

    // ----- libc -------------------------------------------------------------

    /// The simulated `strncpy(dst, src, n)`: copies at most `n` bytes of
    /// `src`, stopping at (and including) its NUL, then zero-fills up to
    /// `n` — faithful to the C semantics the paper's Listings 2/19 use.
    ///
    /// # Errors
    ///
    /// Fails if the destination range is unwritable — but, like the real
    /// thing, succeeds silently when `n` merely overruns the logical
    /// buffer inside a segment.
    pub fn strncpy(&mut self, dst: VirtAddr, src: &[u8], n: u32) -> Result<(), RuntimeError> {
        let mut buf = vec![0u8; n as usize];
        let copy_len =
            src.iter().position(|&b| b == 0).map_or(src.len(), |nul| nul + 1).min(n as usize);
        buf[..copy_len].copy_from_slice(&src[..copy_len]);
        self.space.write_bytes(dst, &buf)?;
        Ok(())
    }

    /// The simulated `memset`.
    ///
    /// # Errors
    ///
    /// Fails if the range is unwritable.
    pub fn memset(&mut self, dst: VirtAddr, value: u8, len: u32) -> Result<(), RuntimeError> {
        self.space.fill(dst, value, len)?;
        Ok(())
    }

    /// The simulated `memcpy`.
    ///
    /// # Errors
    ///
    /// Fails if either range faults.
    pub fn memcpy(&mut self, dst: VirtAddr, src: VirtAddr, len: u32) -> Result<(), RuntimeError> {
        self.space.copy(dst, src, len)?;
        Ok(())
    }

    /// Maps file contents at `addr` (the simulated `mmap`/`read` of e.g.
    /// the password file in Listing 21).
    ///
    /// # Errors
    ///
    /// Fails if the range is unwritable.
    pub fn mmap_file(&mut self, addr: VirtAddr, contents: &[u8]) -> Result<(), RuntimeError> {
        self.space.write_bytes(addr, contents)?;
        Ok(())
    }

    /// Fresh random value from the machine RNG (deterministic per seed).
    pub fn random_u32(&mut self) -> u32 {
        self.rng.gen()
    }

    // ----- OS resources (the §4.4 exhaustion/deadlock vectors) -------------

    /// The process resource table (descriptors, locks).
    pub fn resources(&self) -> &ResourceTable {
        &self.resources
    }

    /// Mutable resource table (opening files, taking locks).
    pub fn resources_mut(&mut self) -> &mut ResourceTable {
        &mut self.resources
    }

    // ----- region metadata (for runtime interception, §5.2) ----------------

    /// The live heap block containing `addr`, as `(start, len)` — what a
    /// library interceptor can learn about a heap pointer.
    pub fn known_heap_block(&self, addr: VirtAddr) -> Option<(VirtAddr, u32)> {
        self.heap.block_containing(addr)
    }

    /// The defined global containing `addr`, as `(start, len)` — what a
    /// library interceptor can learn from the symbol table.
    pub fn known_global_region(&self, addr: VirtAddr) -> Option<(VirtAddr, u32)> {
        self.globals
            .values()
            .find_map(|g| (addr >= g.addr && addr < g.addr + g.size).then_some((g.addr, g.size)))
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.space)?;
        writeln!(f, "  frames: {}, sp {}", self.frames.len(), self.sp)?;
        writeln!(f, "  protection: {}", self.protection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnew_object::CxxType;

    fn student_registry() -> (ClassRegistry, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let s = reg
            .class("Student")
            .field("gpa", CxxType::Double)
            .field("year", CxxType::Int)
            .field("semester", CxxType::Int)
            .register();
        let g = reg
            .class("GradStudent")
            .base(s)
            .field("ssn", CxxType::array(CxxType::Int, 3))
            .register();
        (reg, s, g)
    }

    fn virtual_registry() -> (ClassRegistry, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let s = reg
            .class("Student")
            .field("gpa", CxxType::Double)
            .field("year", CxxType::Int)
            .field("semester", CxxType::Int)
            .virtual_method("getInfo")
            .register();
        let g = reg
            .class("GradStudent")
            .base(s)
            .field("ssn", CxxType::array(CxxType::Int, 3))
            .virtual_method("getInfo")
            .register();
        (reg, s, g)
    }

    #[test]
    fn globals_are_adjacent_in_declaration_order() {
        let (reg, s, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        let a = m.define_global("stud1", VarDecl::Class(s), SegmentKind::Bss).unwrap();
        let b = m.define_global("stud2", VarDecl::Class(s), SegmentKind::Bss).unwrap();
        assert_eq!(b.offset_from(a), 16);
        assert_eq!(m.global("stud1").unwrap(), a);
        assert_eq!(m.global_size("stud2").unwrap(), 16);
        assert!(m.global("nope").is_err());
    }

    #[test]
    fn global_alignment_respected() {
        let (reg, s, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        m.define_global("c", VarDecl::Ty(CxxType::Char), SegmentKind::Bss).unwrap();
        let stud = m.define_global("stud", VarDecl::Class(s), SegmentKind::Bss).unwrap();
        assert!(stud.is_aligned(8));
    }

    #[test]
    fn frame_lifecycle_normal_return() {
        let (reg, s, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        m.push_frame("addStudent", &[("stud", VarDecl::Class(s))]).unwrap();
        let stud = m.local_addr("stud").unwrap();
        assert!(stud.is_aligned(8));
        let ev = m.ret().unwrap();
        assert_eq!(ev.outcome, ControlOutcome::Return);
        assert_eq!(ev.canary_intact, Some(true));
        assert_eq!(ev.fp_intact, Some(true));
        assert!(m.frame().is_err());
    }

    #[test]
    fn smash_detected_by_canary() {
        let (reg, s, g) = student_registry();
        let mut m = Machine::with_registry(reg);
        m.push_frame("addStudent", &[("stud", VarDecl::Class(s))]).unwrap();
        let stud = m.local_addr("stud").unwrap();
        // Naive smash: write through ssn[0..2] = canary, fp, ret.
        let _ = g;
        for i in 0..3u32 {
            m.space_mut().write_u32(stud + 16 + 4 * i, 0xdead_beef).unwrap();
        }
        let ev = m.ret().unwrap();
        assert!(matches!(ev.outcome, ControlOutcome::CanaryDetected { .. }));
        assert_eq!(ev.canary_intact, Some(false));
        assert!(m.output().iter().any(|l| l.contains("stack smashing")));
    }

    #[test]
    fn selective_overwrite_bypasses_canary() {
        // The paper's §5.2 experiment: skip the canary and FP words, only
        // rewrite the return address.
        let (reg, s, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        let target = m.register_function("system", Privilege::Privileged);
        let target_addr = m.funcs().def(target).addr();
        m.push_frame("addStudent", &[("stud", VarDecl::Class(s))]).unwrap();
        let ret_slot = m.frame().unwrap().ret_slot();
        m.space_mut().write_ptr(ret_slot, target_addr).unwrap();
        let ev = m.ret().unwrap();
        assert_eq!(ev.canary_intact, Some(true));
        match ev.outcome {
            ControlOutcome::Hijacked { name, privileged, .. } => {
                assert_eq!(name, "system");
                assert!(privileged);
            }
            other => panic!("expected hijack, got {other:?}"),
        }
    }

    #[test]
    fn shadow_stack_detects_what_canary_missed() {
        let (reg, s, _) = student_registry();
        let mut m = MachineBuilder::new().shadow_stack(true).build(reg);
        m.register_function("system", Privilege::Privileged);
        let target_addr = m.function_addr("system").unwrap();
        m.push_frame("addStudent", &[("stud", VarDecl::Class(s))]).unwrap();
        let ret_slot = m.frame().unwrap().ret_slot();
        m.space_mut().write_ptr(ret_slot, target_addr).unwrap();
        let ev = m.ret().unwrap();
        assert!(matches!(ev.outcome, ControlOutcome::ShadowStackDetected { .. }));
    }

    #[test]
    fn ret_into_nx_stack_faults_but_exec_stack_runs_shellcode() {
        let (reg, s, _) = student_registry();
        // NX stack (default): fault.
        let mut m = MachineBuilder::new().protection(StackProtection::None).build(reg.clone());
        m.push_frame("f", &[("stud", VarDecl::Class(s))]).unwrap();
        let stud = m.local_addr("stud").unwrap();
        let ret_slot = m.frame().unwrap().ret_slot();
        m.space_mut().write_ptr(ret_slot, stud).unwrap();
        let ev = m.ret().unwrap();
        assert!(matches!(
            ev.outcome,
            ControlOutcome::Fault { reason: FaultReason::NxViolation, .. }
        ));

        // Executable stack: shellcode.
        let mut m = MachineBuilder::new()
            .protection(StackProtection::None)
            .executable_stack(true)
            .build(reg);
        m.push_frame("f", &[("stud", VarDecl::Class(s))]).unwrap();
        let stud = m.local_addr("stud").unwrap();
        let ret_slot = m.frame().unwrap().ret_slot();
        m.space_mut().write_ptr(ret_slot, stud).unwrap();
        let ev = m.ret().unwrap();
        assert!(matches!(
            ev.outcome,
            ControlOutcome::ShellCode { segment: SegmentKind::Stack, .. }
        ));
    }

    #[test]
    fn nested_frames_restore_sp() {
        let (reg, s, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        let sp0 = m.sp;
        m.push_frame("outer", &[("stud", VarDecl::Class(s))]).unwrap();
        let sp1 = m.sp;
        m.push_frame("inner", &[("n", VarDecl::Ty(CxxType::Int))]).unwrap();
        assert!(m.sp < sp1);
        assert!(m.ret().unwrap().outcome.is_normal());
        assert_eq!(m.sp, sp1);
        assert!(m.ret().unwrap().outcome.is_normal());
        assert_eq!(m.sp, sp0);
    }

    #[test]
    fn stack_exhaustion_detected() {
        let (reg, _, _) = student_registry();
        let mut m = MachineBuilder::new().stack_size(4096).build(reg);
        let r = m.push_frame("f", &[("big", VarDecl::char_buf(8192))]);
        assert!(matches!(r, Err(RuntimeError::StackExhausted { .. })));
    }

    #[test]
    fn construct_writes_vptr_and_dispatch_works() {
        let (reg, s, g) = virtual_registry();
        let mut m = Machine::with_registry(reg);
        let obj = m.define_global("stud", VarDecl::Class(g), SegmentKind::Bss).unwrap();
        m.construct(obj, g).unwrap();
        let vptr = m.space().read_ptr(obj).unwrap();
        assert_eq!(Some(vptr), m.vtable_addr(g));
        // Static type Student, dynamic type GradStudent: dispatches to the
        // override.
        let out = m.virtual_call(obj, s, "getInfo").unwrap();
        assert_eq!(
            out,
            DispatchOutcome::Valid {
                func: m.funcs().by_name("GradStudent::getInfo").unwrap().id(),
                name: "GradStudent::getInfo".into(),
            }
        );
    }

    #[test]
    fn clobbered_vptr_hijacks_or_crashes_dispatch() {
        let (reg, s, _) = virtual_registry();
        let mut m = Machine::with_registry(reg);
        let sys = m.register_function("system", Privilege::Privileged);
        let sys_addr = m.funcs().def(sys).addr();
        let obj = m.define_global("stud", VarDecl::Class(s), SegmentKind::Bss).unwrap();
        m.construct(obj, s).unwrap();

        // Fake vtable in attacker-controlled bss memory pointing at system().
        let fake = m.define_global("fake_vt", VarDecl::char_buf(8), SegmentKind::Bss).unwrap();
        m.space_mut().write_ptr(fake, sys_addr).unwrap();
        m.space_mut().write_ptr(obj, fake).unwrap(); // vptr subterfuge
        let out = m.virtual_call(obj, s, "getInfo").unwrap();
        assert!(matches!(out, DispatchOutcome::Hijacked { privileged: true, .. }));

        // Invalid vptr: crash.
        m.space_mut().write_ptr(obj, VirtAddr::new(0x44)).unwrap();
        let out = m.virtual_call(obj, s, "getInfo").unwrap();
        assert!(matches!(out, DispatchOutcome::Fault { .. }));
    }

    #[test]
    fn function_pointer_classification() {
        let (reg, _, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        m.register_function("createStudentAccount", Privilege::Normal);
        m.register_function("system", Privilege::Privileged);
        let good = m.function_addr("createStudentAccount").unwrap();
        let evil = m.function_addr("system").unwrap();

        assert!(matches!(
            m.call_function_pointer(good, Some("createStudentAccount")),
            DispatchOutcome::Valid { .. }
        ));
        assert!(matches!(
            m.call_function_pointer(evil, Some("createStudentAccount")),
            DispatchOutcome::Hijacked { privileged: true, .. }
        ));
        assert!(matches!(
            m.call_function_pointer(VirtAddr::new(0x10), Some("x")),
            DispatchOutcome::Fault { .. }
        ));
    }

    #[test]
    fn strncpy_is_faithful_to_c() {
        let (reg, _, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        let p = m.define_global("buf", VarDecl::char_buf(16), SegmentKind::Data).unwrap();
        m.space_mut().fill(p, 0xff, 16).unwrap();
        // Short source: NUL-padded to n.
        m.strncpy(p, b"ab\0", 8).unwrap();
        assert_eq!(m.space().read_vec(p, 8).unwrap(), b"ab\0\0\0\0\0\0");
        // Long source: truncated, NOT NUL-terminated.
        m.strncpy(p, b"abcdefgh", 4).unwrap();
        assert_eq!(m.space().read_vec(p, 4).unwrap(), b"abcd");
        assert_eq!(m.space().read_u8(p + 4).unwrap(), 0); // from previous pad
    }

    #[test]
    fn cin_reads_scripted_tokens() {
        let (reg, _, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        m.input_mut().extend([111i64, 222]);
        m.input_mut().push(4.0f64);
        m.input_mut().push("alice");
        assert_eq!(m.cin_int().unwrap(), 111);
        assert_eq!(m.cin_int().unwrap(), 222);
        assert_eq!(m.cin_double().unwrap(), 4.0);
        assert_eq!(m.cin_str().unwrap(), "alice");
        assert!(m.cin_int().is_err());
    }

    #[test]
    fn output_capture() {
        let (reg, _, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        m.print("Before Attack: Name:abcdefghijklmno");
        assert_eq!(m.output().len(), 1);
        let lines = m.take_output();
        assert_eq!(lines.len(), 1);
        assert!(m.output().is_empty());
    }

    #[test]
    fn canary_is_deterministic_per_seed_and_has_nul_byte() {
        let (reg, _, _) = student_registry();
        let m1 = MachineBuilder::new().seed(42).build(reg.clone());
        let m2 = MachineBuilder::new().seed(42).build(reg.clone());
        let m3 = MachineBuilder::new().seed(43).build(reg);
        assert_eq!(m1.canary(), m2.canary());
        assert_ne!(m1.canary(), m3.canary());
        assert_eq!(m1.canary() & 0xff, 0); // terminator byte
    }

    #[test]
    fn field_and_element_addresses() {
        let (reg, _, g) = student_registry();
        let mut m = Machine::with_registry(reg);
        let obj = m.define_global("gs", VarDecl::Class(g), SegmentKind::Bss).unwrap();
        assert_eq!(m.field_addr(g, obj, "gpa").unwrap(), obj);
        assert_eq!(m.field_addr(g, obj, "ssn").unwrap(), obj + 16);
        assert_eq!(m.element_addr(g, obj, "ssn", 2).unwrap(), obj + 24);
        assert!(m.element_addr(g, obj, "ssn", 3).is_err());
    }

    #[test]
    fn attacker_reachable_address_arithmetic_is_checked() {
        let (reg, s, g) = student_registry();
        let mut m = Machine::with_registry(reg);
        // A corrupted base at the top of the address space must report
        // AddressOverflow, not panic the simulator.
        let top = VirtAddr::new(u32::MAX - 4);
        assert!(matches!(
            m.field_addr(g, top, "ssn"),
            Err(RuntimeError::Memory(MemoryError::AddressOverflow { .. }))
        ));
        assert!(matches!(
            m.element_addr(g, top, "ssn", 2),
            Err(RuntimeError::Memory(MemoryError::AddressOverflow { .. }))
        ));
        let _ = s;
        // Constructing or dispatching a polymorphic object up there
        // degrades to an error or a fault outcome — never a panic.
        let (vreg, vs, vg) = virtual_registry();
        let mut vm = Machine::with_registry(vreg);
        assert!(vm.construct(top, vg).is_err());
        let out = vm.virtual_call(top, vs, "getInfo").unwrap();
        assert!(matches!(out, DispatchOutcome::Fault { .. }));
    }

    #[test]
    fn heap_wrappers() {
        let (reg, _, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        let p = m.heap_alloc(32).unwrap();
        assert_eq!(m.heap_stats().live_blocks, 1);
        m.heap_free_sized(p, 16).unwrap();
        assert_eq!(m.heap_stats().leaked_bytes, 16);
        assert!(m.heap_free(p).is_err());
        assert!(m.heap().payload_size(p).is_none());
    }

    #[test]
    fn mmap_file_writes_contents() {
        let (reg, _, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        let pool = m.define_global("mem_pool", VarDecl::char_buf(64), SegmentKind::Bss).unwrap();
        m.mmap_file(pool, b"root:x:0:0\n").unwrap();
        assert_eq!(m.space().read_cstr(pool, 11).unwrap(), "root:x:0:0\n");
    }

    #[test]
    fn display_shows_map_and_protection() {
        let (reg, _, _) = student_registry();
        let m = Machine::with_registry(reg);
        let text = m.to_string();
        assert!(text.contains("stackguard"));
        assert!(text.contains("stack"));
    }

    #[test]
    fn vtables_do_not_pollute_write_trace() {
        let (reg, _, _) = virtual_registry();
        let m = Machine::with_registry(reg);
        assert_eq!(m.space().trace().total_writes(), 0);
    }

    #[test]
    fn function_effects_are_observable() {
        let (reg, _, _) = student_registry();
        let mut m = Machine::with_registry(reg);
        let flag = m.define_global("flag", VarDecl::Ty(CxxType::Int), SegmentKind::Bss).unwrap();
        let cmd = m.define_global("cmd", VarDecl::char_buf(16), SegmentKind::Bss).unwrap();
        m.space_mut().write_bytes(cmd, b"/bin/sh\0").unwrap();
        let system = m.register_function("system", Privilege::Privileged);
        m.set_function_effects(
            system,
            vec![
                FuncEffect::Print("uid=0(root)".into()),
                FuncEffect::WriteI32 { addr: flag, value: 7 },
                FuncEffect::SpawnShell { arg: cmd },
            ],
        );
        m.invoke(system).unwrap();
        assert_eq!(m.space().read_i32(flag).unwrap(), 7);
        assert_eq!(m.shells_spawned(), ["/bin/sh".to_owned()]);
        assert!(m.output().iter().any(|l| l == "uid=0(root)"));
        assert!(m.output().iter().any(|l| l == "$ /bin/sh"));
        // Functions without effects invoke as no-ops.
        let f = m.register_function("noop", Privilege::Normal);
        m.invoke(f).unwrap();
        assert_eq!(m.shells_spawned().len(), 1);
    }

    #[test]
    fn sizeof_via_machine() {
        let (reg, s, g) = student_registry();
        let mut m = Machine::with_registry(reg);
        assert_eq!(m.size_of(s).unwrap(), 16);
        assert_eq!(m.size_of(g).unwrap(), 32);
    }
}
