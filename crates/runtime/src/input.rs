//! Scripted attacker input.
//!
//! The paper's attacks are driven by values the victim reads with
//! `cin >>` or receives from files/sockets. [`InputStream`] is the
//! deterministic stand-in: a queue of typed tokens prepared by the attack
//! scenario ("user input: ssn[0], ssn[1], ssn[2]").

use std::collections::VecDeque;
use std::fmt;

use crate::error::RuntimeError;

/// One token of scripted input.
#[derive(Debug, Clone, PartialEq)]
pub enum InputToken {
    /// An integer (what `cin >> int_var` consumes).
    Int(i64),
    /// A floating-point value (`cin >> double_var`).
    Double(f64),
    /// A string / byte payload (usernames, shell commands, …).
    Str(String),
}

impl InputToken {
    fn kind(&self) -> &'static str {
        match self {
            InputToken::Int(_) => "int",
            InputToken::Double(_) => "double",
            InputToken::Str(_) => "string",
        }
    }
}

impl fmt::Display for InputToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputToken::Int(v) => write!(f, "{v}"),
            InputToken::Double(v) => write!(f, "{v}"),
            InputToken::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for InputToken {
    fn from(v: i64) -> Self {
        InputToken::Int(v)
    }
}

impl From<i32> for InputToken {
    fn from(v: i32) -> Self {
        InputToken::Int(i64::from(v))
    }
}

impl From<u32> for InputToken {
    fn from(v: u32) -> Self {
        InputToken::Int(i64::from(v))
    }
}

impl From<f64> for InputToken {
    fn from(v: f64) -> Self {
        InputToken::Double(v)
    }
}

impl From<&str> for InputToken {
    fn from(v: &str) -> Self {
        InputToken::Str(v.to_owned())
    }
}

impl From<String> for InputToken {
    fn from(v: String) -> Self {
        InputToken::Str(v)
    }
}

/// A queue of attacker-chosen input tokens.
///
/// # Examples
///
/// ```
/// use pnew_runtime::InputStream;
///
/// let mut input = InputStream::new();
/// input.push(0x0804_8100u32);      // the attacker's replacement address
/// input.push(-1);                  // non-positive: skipped by the victim
/// assert_eq!(input.remaining(), 2);
/// assert_eq!(input.next_int().unwrap(), 0x0804_8100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InputStream {
    tokens: VecDeque<InputToken>,
    consumed: usize,
}

impl InputStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one token.
    pub fn push(&mut self, token: impl Into<InputToken>) {
        self.tokens.push_back(token.into());
    }

    /// Appends several tokens.
    pub fn extend<I, T>(&mut self, tokens: I)
    where
        I: IntoIterator<Item = T>,
        T: Into<InputToken>,
    {
        for t in tokens {
            self.push(t);
        }
    }

    /// Number of unconsumed tokens.
    pub fn remaining(&self) -> usize {
        self.tokens.len()
    }

    /// Number of tokens consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// `true` if no tokens remain.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Reads an integer token (the simulated `cin >> i`).
    ///
    /// # Errors
    ///
    /// Fails if the stream is exhausted or the next token is not an
    /// integer.
    pub fn next_int(&mut self) -> Result<i64, RuntimeError> {
        match self.tokens.pop_front() {
            Some(InputToken::Int(v)) => {
                self.consumed += 1;
                Ok(v)
            }
            Some(other) => {
                let found = other.kind();
                self.tokens.push_front(other);
                Err(RuntimeError::InputTypeMismatch { wanted: "int", found })
            }
            None => Err(RuntimeError::InputExhausted { wanted: "int" }),
        }
    }

    /// Reads a floating-point token (the simulated `cin >> d`).
    ///
    /// Integer tokens are accepted and widened, as `cin` would parse them.
    ///
    /// # Errors
    ///
    /// Fails if the stream is exhausted or the next token is a string.
    pub fn next_double(&mut self) -> Result<f64, RuntimeError> {
        match self.tokens.pop_front() {
            Some(InputToken::Double(v)) => {
                self.consumed += 1;
                Ok(v)
            }
            Some(InputToken::Int(v)) => {
                self.consumed += 1;
                Ok(v as f64)
            }
            Some(other) => {
                let found = other.kind();
                self.tokens.push_front(other);
                Err(RuntimeError::InputTypeMismatch { wanted: "double", found })
            }
            None => Err(RuntimeError::InputExhausted { wanted: "double" }),
        }
    }

    /// Reads a string token (usernames, payloads).
    ///
    /// # Errors
    ///
    /// Fails if the stream is exhausted or the next token is not a string.
    pub fn next_str(&mut self) -> Result<String, RuntimeError> {
        match self.tokens.pop_front() {
            Some(InputToken::Str(s)) => {
                self.consumed += 1;
                Ok(s)
            }
            Some(other) => {
                let found = other.kind();
                self.tokens.push_front(other);
                Err(RuntimeError::InputTypeMismatch { wanted: "string", found })
            }
            None => Err(RuntimeError::InputExhausted { wanted: "string" }),
        }
    }
}

impl<T: Into<InputToken>> FromIterator<T> for InputStream {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = InputStream::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_counters() {
        let mut s: InputStream = [1i64, 2, 3].into_iter().collect();
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_int().unwrap(), 1);
        assert_eq!(s.next_int().unwrap(), 2);
        assert_eq!(s.consumed(), 2);
        assert_eq!(s.remaining(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut s = InputStream::new();
        assert!(matches!(s.next_int(), Err(RuntimeError::InputExhausted { wanted: "int" })));
        assert!(matches!(s.next_str(), Err(RuntimeError::InputExhausted { wanted: "string" })));
    }

    #[test]
    fn type_mismatch_preserves_the_token() {
        let mut s = InputStream::new();
        s.push("hello");
        assert!(matches!(
            s.next_int(),
            Err(RuntimeError::InputTypeMismatch { wanted: "int", found: "string" })
        ));
        // token still there
        assert_eq!(s.next_str().unwrap(), "hello");
    }

    #[test]
    fn double_accepts_int_tokens() {
        let mut s = InputStream::new();
        s.push(4.0f64);
        s.push(2009);
        assert_eq!(s.next_double().unwrap(), 4.0);
        assert_eq!(s.next_double().unwrap(), 2009.0);
    }

    #[test]
    fn mixed_script_for_listing_13() {
        // Selective-overwrite script: two non-positive ints, then the
        // attacker's address.
        let mut s = InputStream::new();
        s.extend([-1i64, 0, 0x0804_8100]);
        assert_eq!(s.next_int().unwrap(), -1);
        assert_eq!(s.next_int().unwrap(), 0);
        assert_eq!(s.next_int().unwrap(), 0x0804_8100);
        assert!(s.is_empty());
    }

    #[test]
    fn token_display_and_kinds() {
        assert_eq!(InputToken::from(5).to_string(), "5");
        assert_eq!(InputToken::from(1.5).to_string(), "1.5");
        assert_eq!(InputToken::from("x").to_string(), "\"x\"");
    }
}
