//! Control-flow outcomes observed by the simulated machine.

use std::fmt;

use pnew_memory::{SegmentKind, VirtAddr};

use crate::func::FuncId;

/// Why a control transfer faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultReason {
    /// Target address is not mapped.
    Unmapped,
    /// Target segment is not executable (the NX defeat of §3.6.2
    /// code injection).
    NxViolation,
    /// The pointer that should have been followed could not be read.
    BadPointer,
}

impl fmt::Display for FaultReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultReason::Unmapped => f.write_str("unmapped target"),
            FaultReason::NxViolation => f.write_str("nx violation"),
            FaultReason::BadPointer => f.write_str("bad pointer"),
        }
    }
}

/// The observable result of a function return.
///
/// This is the reproduction's substitute for "the attacker's code runs":
/// instead of executing real machine code, the machine classifies where
/// control *would* go. Attack success predicates in the experiment suite
/// are written against these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlOutcome {
    /// The return address was intact; control returns to the caller.
    Return,
    /// StackGuard found the canary modified and aborted the program
    /// (`*** stack smashing detected ***`).
    CanaryDetected {
        /// Canary value written at function entry.
        expected: u32,
        /// Value found at return.
        found: u32,
    },
    /// The §5.2 return-address (shadow) stack found a mismatch and aborted.
    ShadowStackDetected {
        /// Return address recorded at call time.
        expected: VirtAddr,
        /// Address found in the frame at return.
        found: VirtAddr,
    },
    /// Control transferred to a registered function other than the caller —
    /// arc injection / return-to-libc (§3.6.2).
    Hijacked {
        /// The function reached.
        func: FuncId,
        /// Its name (e.g. `system`).
        name: String,
        /// Whether the function is marked privileged.
        privileged: bool,
        /// The raw overwritten return address.
        target: VirtAddr,
    },
    /// Control transferred into attacker-written bytes in an executable
    /// segment — code injection succeeded (§3.6.2).
    ShellCode {
        /// Entry address of the injected code.
        addr: VirtAddr,
        /// Segment the code lives in (stack for classic smashing).
        segment: SegmentKind,
    },
    /// The transfer faulted; the program crashes.
    Fault {
        /// Target address.
        addr: VirtAddr,
        /// Why it faulted.
        reason: FaultReason,
    },
}

impl ControlOutcome {
    /// `true` if the attacker diverted control (hijack or shellcode).
    pub fn is_hijack(&self) -> bool {
        matches!(self, ControlOutcome::Hijacked { .. } | ControlOutcome::ShellCode { .. })
    }

    /// `true` if a protection mechanism stopped the program.
    pub fn is_detected(&self) -> bool {
        matches!(
            self,
            ControlOutcome::CanaryDetected { .. } | ControlOutcome::ShadowStackDetected { .. }
        )
    }

    /// `true` for an ordinary, unhijacked return.
    pub fn is_normal(&self) -> bool {
        matches!(self, ControlOutcome::Return)
    }
}

impl fmt::Display for ControlOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlOutcome::Return => f.write_str("normal return"),
            ControlOutcome::CanaryDetected { .. } => {
                f.write_str("*** stack smashing detected ***: terminated")
            }
            ControlOutcome::ShadowStackDetected { .. } => {
                f.write_str("shadow stack mismatch: terminated")
            }
            ControlOutcome::Hijacked { name, privileged, target, .. } => write!(
                f,
                "control hijacked to {name}{} at {target}",
                if *privileged { " [privileged]" } else { "" }
            ),
            ControlOutcome::ShellCode { addr, segment } => {
                write!(f, "shellcode executed at {addr} ({segment} segment)")
            }
            ControlOutcome::Fault { addr, reason } => {
                write!(f, "fault at {addr}: {reason}")
            }
        }
    }
}

/// Full report of a `ret` — the outcome plus the integrity of the frame
/// metadata, which the experiments print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetEvent {
    /// Where control went.
    pub outcome: ControlOutcome,
    /// Canary integrity (`None` when StackGuard is off).
    pub canary_intact: Option<bool>,
    /// Saved-frame-pointer integrity (`None` when frame pointers are not
    /// saved).
    pub fp_intact: Option<bool>,
}

impl RetEvent {
    /// Shorthand for `outcome.is_hijack()`.
    pub fn is_hijack(&self) -> bool {
        self.outcome.is_hijack()
    }
}

/// The observable result of a call through a pointer — virtual dispatch
/// (§3.8.2) or a C function pointer (§3.9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// Dispatch reached the implementation the type system intended.
    Valid {
        /// The function invoked.
        func: FuncId,
        /// Its name (e.g. `GradStudent::getInfo`).
        name: String,
    },
    /// Dispatch reached some *other* registered function — subterfuge
    /// succeeded.
    Hijacked {
        /// The function reached.
        func: FuncId,
        /// Its name.
        name: String,
        /// Whether it is privileged.
        privileged: bool,
    },
    /// Dispatch faulted (invalid vptr / table / target), crashing the
    /// program — the paper's "or even crash the program by supplying an
    /// invalid address".
    Fault {
        /// The address that could not be followed.
        addr: VirtAddr,
        /// Why it faulted.
        reason: FaultReason,
    },
}

impl DispatchOutcome {
    /// `true` if the attacker diverted the dispatch.
    pub fn is_hijack(&self) -> bool {
        matches!(self, DispatchOutcome::Hijacked { .. })
    }
}

impl fmt::Display for DispatchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchOutcome::Valid { name, .. } => write!(f, "dispatched to {name}"),
            DispatchOutcome::Hijacked { name, privileged, .. } => write!(
                f,
                "dispatch hijacked to {name}{}",
                if *privileged { " [privileged]" } else { "" }
            ),
            DispatchOutcome::Fault { addr, reason } => {
                write!(f, "dispatch fault at {addr}: {reason}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(ControlOutcome::Return.is_normal());
        assert!(!ControlOutcome::Return.is_hijack());
        let hij = ControlOutcome::Hijacked {
            func: FuncId::from_index(0),
            name: "system".into(),
            privileged: true,
            target: VirtAddr::new(0x8048100),
        };
        assert!(hij.is_hijack());
        assert!(!hij.is_detected());
        let det = ControlOutcome::CanaryDetected { expected: 1, found: 2 };
        assert!(det.is_detected());
        assert!(!det.is_hijack());
        let sc = ControlOutcome::ShellCode { addr: VirtAddr::new(8), segment: SegmentKind::Stack };
        assert!(sc.is_hijack());
    }

    #[test]
    fn displays() {
        let det = ControlOutcome::CanaryDetected { expected: 1, found: 2 };
        assert!(det.to_string().contains("stack smashing detected"));
        let f = ControlOutcome::Fault { addr: VirtAddr::new(4), reason: FaultReason::NxViolation };
        assert!(f.to_string().contains("nx violation"));
        let d = DispatchOutcome::Fault { addr: VirtAddr::new(4), reason: FaultReason::Unmapped };
        assert!(d.to_string().contains("unmapped"));
    }

    #[test]
    fn ret_event_shorthand() {
        let e = RetEvent {
            outcome: ControlOutcome::ShellCode {
                addr: VirtAddr::new(1),
                segment: SegmentKind::Stack,
            },
            canary_intact: Some(true),
            fp_intact: None,
        };
        assert!(e.is_hijack());
    }

    #[test]
    fn dispatch_predicates() {
        let v = DispatchOutcome::Valid { func: FuncId::from_index(1), name: "f".into() };
        assert!(!v.is_hijack());
        let h = DispatchOutcome::Hijacked {
            func: FuncId::from_index(2),
            name: "g".into(),
            privileged: false,
        };
        assert!(h.is_hijack());
    }
}
