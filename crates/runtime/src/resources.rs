//! OS-resource accounting: file descriptors and locks.
//!
//! §4.4 lists the resource-exhaustion consequences of a corrupted loop
//! bound: "the attacker … might crash the whole software stack … by using
//! up all the memory, or opening maximum number of files or creating
//! maximum number of processes", and "deadlocks (trying to lock the same
//! resource multiple times)". The machine models those resources so the
//! DoS experiment can measure them: a bounded descriptor table and a
//! non-reentrant lock table.

use std::collections::BTreeSet;
use std::fmt;

/// A file-descriptor handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(u32);

impl Fd {
    /// The raw descriptor number.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Why a resource operation failed — these are *program* outcomes (the
/// crash/deadlock §4.4 predicts), distinct from scenario wiring errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceFailure {
    /// `RLIMIT_NOFILE` reached: `open` fails.
    FdExhausted {
        /// The configured descriptor limit.
        limit: u32,
    },
    /// A non-reentrant lock was acquired twice by the same (single)
    /// thread: the program deadlocks.
    Deadlock {
        /// The lock that was re-acquired.
        lock: String,
    },
    /// Close/unlock of something not held.
    NotHeld,
}

impl fmt::Display for ResourceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceFailure::FdExhausted { limit } => {
                write!(f, "descriptor limit reached ({limit} open files)")
            }
            ResourceFailure::Deadlock { lock } => {
                write!(f, "deadlock: lock {lock:?} acquired twice")
            }
            ResourceFailure::NotHeld => f.write_str("resource is not held"),
        }
    }
}

impl std::error::Error for ResourceFailure {}

/// Per-process resource table (descriptors + locks), with a ulimit-style
/// descriptor bound.
#[derive(Debug, Clone)]
pub struct ResourceTable {
    fd_limit: u32,
    next_fd: u32,
    open: BTreeSet<u32>,
    locks: BTreeSet<String>,
    /// High-water mark of simultaneously open descriptors.
    peak_open: u32,
}

impl ResourceTable {
    /// The default descriptor limit (the classic `ulimit -n` 1024).
    pub const DEFAULT_FD_LIMIT: u32 = 1024;

    /// Creates a table with the given descriptor limit.
    pub fn with_fd_limit(fd_limit: u32) -> Self {
        ResourceTable {
            fd_limit,
            next_fd: 3, // stdin/stdout/stderr
            open: BTreeSet::new(),
            locks: BTreeSet::new(),
            peak_open: 0,
        }
    }

    /// Creates a table with [`DEFAULT_FD_LIMIT`](Self::DEFAULT_FD_LIMIT).
    pub fn new() -> Self {
        Self::with_fd_limit(Self::DEFAULT_FD_LIMIT)
    }

    /// Opens a descriptor.
    ///
    /// # Errors
    ///
    /// Fails with [`ResourceFailure::FdExhausted`] at the limit.
    pub fn open(&mut self) -> Result<Fd, ResourceFailure> {
        if self.open.len() as u32 >= self.fd_limit {
            return Err(ResourceFailure::FdExhausted { limit: self.fd_limit });
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open.insert(fd);
        self.peak_open = self.peak_open.max(self.open.len() as u32);
        Ok(Fd(fd))
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// Fails with [`ResourceFailure::NotHeld`] if it is not open.
    pub fn close(&mut self, fd: Fd) -> Result<(), ResourceFailure> {
        if self.open.remove(&fd.0) {
            Ok(())
        } else {
            Err(ResourceFailure::NotHeld)
        }
    }

    /// Acquires a named, non-reentrant lock.
    ///
    /// # Errors
    ///
    /// Fails with [`ResourceFailure::Deadlock`] when the lock is already
    /// held — the single-threaded self-deadlock of §4.4.
    pub fn lock(&mut self, name: &str) -> Result<(), ResourceFailure> {
        if !self.locks.insert(name.to_owned()) {
            return Err(ResourceFailure::Deadlock { lock: name.to_owned() });
        }
        Ok(())
    }

    /// Releases a named lock.
    ///
    /// # Errors
    ///
    /// Fails with [`ResourceFailure::NotHeld`] if it was not held.
    pub fn unlock(&mut self, name: &str) -> Result<(), ResourceFailure> {
        if self.locks.remove(name) {
            Ok(())
        } else {
            Err(ResourceFailure::NotHeld)
        }
    }

    /// Currently open descriptors.
    pub fn open_count(&self) -> u32 {
        self.open.len() as u32
    }

    /// High-water mark of open descriptors.
    pub fn peak_open(&self) -> u32 {
        self.peak_open
    }

    /// Currently held locks.
    pub fn held_locks(&self) -> impl Iterator<Item = &str> {
        self.locks.iter().map(String::as_str)
    }

    /// The descriptor limit.
    pub fn fd_limit(&self) -> u32 {
        self.fd_limit
    }
}

impl Default for ResourceTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_exhaust_at_the_limit() {
        let mut t = ResourceTable::with_fd_limit(3);
        let a = t.open().unwrap();
        let _b = t.open().unwrap();
        let _c = t.open().unwrap();
        assert_eq!(t.open_count(), 3);
        assert_eq!(t.open(), Err(ResourceFailure::FdExhausted { limit: 3 }));
        t.close(a).unwrap();
        assert!(t.open().is_ok());
        assert_eq!(t.peak_open(), 3);
    }

    #[test]
    fn descriptor_numbers_start_past_stdio_and_never_repeat() {
        let mut t = ResourceTable::new();
        let a = t.open().unwrap();
        assert_eq!(a.raw(), 3);
        t.close(a).unwrap();
        let b = t.open().unwrap();
        assert_eq!(b.raw(), 4);
        assert_eq!(b.to_string(), "fd4");
    }

    #[test]
    fn double_close_fails() {
        let mut t = ResourceTable::new();
        let a = t.open().unwrap();
        t.close(a).unwrap();
        assert_eq!(t.close(a), Err(ResourceFailure::NotHeld));
    }

    #[test]
    fn relocking_deadlocks() {
        let mut t = ResourceTable::new();
        t.lock("students.db").unwrap();
        assert_eq!(
            t.lock("students.db"),
            Err(ResourceFailure::Deadlock { lock: "students.db".into() })
        );
        assert_eq!(t.held_locks().collect::<Vec<_>>(), ["students.db"]);
        t.unlock("students.db").unwrap();
        assert_eq!(t.unlock("students.db"), Err(ResourceFailure::NotHeld));
        t.lock("students.db").unwrap(); // reacquirable after release
    }

    #[test]
    fn failure_messages() {
        assert!(ResourceFailure::FdExhausted { limit: 9 }.to_string().contains("9"));
        assert!(ResourceFailure::Deadlock { lock: "x".into() }.to_string().contains("deadlock"));
        assert!(ResourceFailure::NotHeld.to_string().contains("not held"));
    }
}
