//! Stack frames.
//!
//! Frame geometry is the load-bearing detail of the paper's §3.6:
//!
//! > "the return address of `addStudent()` is being overwritten by
//! > `ssn[0]` (If the frame pointer is saved, then `ssn[1]` would
//! > overwrite the return address.) If the system employs canaries (such
//! > as the StackGuard in gcc) ... then `ssn[2]` overwrites the return
//! > address."
//!
//! The planner reproduces that geometry exactly: above the locals sit (low
//! to high) the optional canary, the optional saved frame pointer, and the
//! return address, each one pointer wide; locals are allocated top-down in
//! declaration order at their natural alignment. The metadata block is
//! anchored at an 8-byte boundary, which is also what makes the §3.7.2
//! padding observation (`ssn[0]` lands in padding, `ssn[1]` on `n`) come
//! out as printed.

use std::fmt;

use pnew_memory::VirtAddr;

/// Stack-protection configuration of the simulated compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StackProtection {
    /// No saved frame pointer, no canary (`-fomit-frame-pointer`,
    /// no protector): the return address sits directly above the locals.
    None,
    /// Frame pointer saved, no canary: `[locals][saved FP][ret]`.
    FramePointer,
    /// gcc StackGuard: `[locals][canary][saved FP][ret]`.
    #[default]
    StackGuard,
}

impl StackProtection {
    /// `true` if a canary word is placed.
    pub fn has_canary(self) -> bool {
        matches!(self, StackProtection::StackGuard)
    }

    /// `true` if the frame pointer is saved.
    pub fn has_frame_pointer(self) -> bool {
        matches!(self, StackProtection::FramePointer | StackProtection::StackGuard)
    }
}

impl fmt::Display for StackProtection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackProtection::None => f.write_str("none"),
            StackProtection::FramePointer => f.write_str("frame pointer"),
            StackProtection::StackGuard => f.write_str("stackguard"),
        }
    }
}

/// A local variable slot in a planned frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Local {
    name: String,
    addr: VirtAddr,
    size: u32,
    align: u32,
}

impl Local {
    /// The declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The slot address.
    pub fn addr(&self) -> VirtAddr {
        self.addr
    }

    /// The slot size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The slot alignment.
    pub fn align(&self) -> u32 {
        self.align
    }

    /// One past the last byte of the slot.
    pub fn end(&self) -> VirtAddr {
        self.addr + self.size
    }
}

/// A planned (and, once pushed, live) stack frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    function: String,
    locals: Vec<Local>,
    ret_slot: VirtAddr,
    fp_slot: Option<VirtAddr>,
    canary_slot: Option<VirtAddr>,
    return_target: VirtAddr,
    canary_value: Option<u32>,
    saved_fp_value: u32,
    entry_sp: VirtAddr,
    sp: VirtAddr,
}

impl Frame {
    /// Plans a frame below `sp`.
    ///
    /// `locals` are `(name, size, align)` in declaration order; the first
    /// declared local receives the highest address, exactly as the paper's
    /// examples assume.
    ///
    /// # Panics
    ///
    /// Panics if an alignment is not a power of two.
    pub fn plan(
        function: &str,
        sp: VirtAddr,
        ptr_size: u32,
        protection: StackProtection,
        locals: &[(String, u32, u32)],
    ) -> Frame {
        let meta_words =
            1 + u32::from(protection.has_frame_pointer()) + u32::from(protection.has_canary());
        let meta_size = ptr_size * meta_words;
        // Anchor the metadata block so its lowest word is 8-aligned: this is
        // the invariant that reproduces the paper's slot arithmetic.
        let lowest_meta = (sp - meta_size).align_down(8);
        let ret_slot = lowest_meta + meta_size - ptr_size;
        let (canary_slot, fp_slot) = match protection {
            StackProtection::None => (None, None),
            StackProtection::FramePointer => (None, Some(lowest_meta)),
            StackProtection::StackGuard => (Some(lowest_meta), Some(lowest_meta + ptr_size)),
        };

        let mut cursor = lowest_meta;
        let mut planned = Vec::with_capacity(locals.len());
        for (name, size, align) in locals {
            cursor = (cursor - *size).align_down(*align);
            planned.push(Local { name: name.clone(), addr: cursor, size: *size, align: *align });
        }
        let new_sp = cursor.align_down(16);

        Frame {
            function: function.to_owned(),
            locals: planned,
            ret_slot,
            fp_slot,
            canary_slot,
            return_target: VirtAddr::NULL,
            canary_value: None,
            saved_fp_value: 0,
            entry_sp: sp,
            sp: new_sp,
        }
    }

    /// The function name.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// All locals in declaration order.
    pub fn locals(&self) -> &[Local] {
        &self.locals
    }

    /// Looks a local up by name.
    pub fn local(&self, name: &str) -> Option<&Local> {
        self.locals.iter().find(|l| l.name == name)
    }

    /// Address of the return-address slot.
    pub fn ret_slot(&self) -> VirtAddr {
        self.ret_slot
    }

    /// Address of the saved-frame-pointer slot, if saved.
    pub fn fp_slot(&self) -> Option<VirtAddr> {
        self.fp_slot
    }

    /// Address of the canary slot, if StackGuard is active.
    pub fn canary_slot(&self) -> Option<VirtAddr> {
        self.canary_slot
    }

    /// The legitimate return target recorded at call time.
    pub fn return_target(&self) -> VirtAddr {
        self.return_target
    }

    /// The canary value written at entry, if any.
    pub fn canary_value(&self) -> Option<u32> {
        self.canary_value
    }

    /// The frame-pointer value written at entry.
    pub fn saved_fp_value(&self) -> u32 {
        self.saved_fp_value
    }

    /// Stack pointer before this frame was pushed.
    pub fn entry_sp(&self) -> VirtAddr {
        self.entry_sp
    }

    /// Stack pointer while this frame is live.
    pub fn sp(&self) -> VirtAddr {
        self.sp
    }

    /// Bytes this frame occupies.
    pub fn size(&self) -> u32 {
        self.entry_sp.offset_from(self.sp) as u32
    }

    /// Records the values written at entry (used by the machine).
    pub(crate) fn record_entry(
        &mut self,
        return_target: VirtAddr,
        canary_value: Option<u32>,
        saved_fp_value: u32,
    ) {
        self.return_target = return_target;
        self.canary_value = canary_value;
        self.saved_fp_value = saved_fp_value;
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "frame {} (sp {})", self.function, self.sp)?;
        writeln!(f, "  {} ret", self.ret_slot)?;
        if let Some(fp) = self.fp_slot {
            writeln!(f, "  {fp} saved fp")?;
        }
        if let Some(c) = self.canary_slot {
            writeln!(f, "  {c} canary")?;
        }
        for l in &self.locals {
            writeln!(f, "  {} {} ({} bytes, align {})", l.addr, l.name, l.size, l.align)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SP: VirtAddr = VirtAddr::new(0xc000_0000);

    fn student_local(name: &str) -> (String, u32, u32) {
        (name.to_owned(), 16, 8) // sizeof/alignof(Student) under the paper policy
    }

    #[test]
    fn listing_13_geometry_under_stackguard() {
        // [stud][canary][fp][ret]: ssn[i] = stud+16+4i hits canary, fp, ret.
        let f =
            Frame::plan("addStudent", SP, 4, StackProtection::StackGuard, &[student_local("stud")]);
        let stud = f.local("stud").unwrap();
        let canary = f.canary_slot().unwrap();
        let fp = f.fp_slot().unwrap();
        assert_eq!(stud.end(), canary);
        assert_eq!(canary + 4, fp);
        assert_eq!(fp + 4, f.ret_slot());
        assert!(canary.is_aligned(8));
    }

    #[test]
    fn listing_13_geometry_without_protection() {
        // ssn[0] overwrites the return address directly.
        let f = Frame::plan("addStudent", SP, 4, StackProtection::None, &[student_local("stud")]);
        let stud = f.local("stud").unwrap();
        assert_eq!(f.canary_slot(), None);
        assert_eq!(f.fp_slot(), None);
        assert_eq!(stud.end(), f.ret_slot());
    }

    #[test]
    fn listing_13_geometry_with_frame_pointer() {
        // "If the frame pointer is saved, then ssn[1] would overwrite the
        // return address."
        let f = Frame::plan(
            "addStudent",
            SP,
            4,
            StackProtection::FramePointer,
            &[student_local("stud")],
        );
        let stud = f.local("stud").unwrap();
        assert_eq!(stud.end(), f.fp_slot().unwrap());
        assert_eq!(stud.end() + 4, f.ret_slot());
    }

    #[test]
    fn listing_15_padding_between_stud_and_n() {
        // §3.7.2: "ssn[0] does not overwrite n, but ssn[1] overwrites n
        // because stud ... leaves 4 bytes for padding".
        let f = Frame::plan(
            "addStudent",
            SP,
            4,
            StackProtection::StackGuard,
            &[("n".to_owned(), 4, 4), student_local("stud")],
        );
        let n = f.local("n").unwrap();
        let stud = f.local("stud").unwrap();
        assert_eq!(n.addr().offset_from(stud.end()), 4); // 4 bytes of padding
        assert_eq!(stud.end() + 4, n.addr()); // ssn[1] hits n
        assert!(stud.addr().is_aligned(8));
    }

    #[test]
    fn listing_16_first_sits_right_above_stud() {
        // Student first; Student stud: no padding (both 8-aligned, size 16),
        // so gs->ssn[0] at stud+16 hits first.gpa at offset 0 of `first`.
        let f = Frame::plan(
            "addStudent",
            SP,
            4,
            StackProtection::StackGuard,
            &[("first".to_owned(), 16, 8), student_local("stud")],
        );
        let first = f.local("first").unwrap();
        let stud = f.local("stud").unwrap();
        assert_eq!(stud.end(), first.addr());
    }

    #[test]
    fn declaration_order_maps_to_descending_addresses() {
        let f = Frame::plan(
            "f",
            SP,
            4,
            StackProtection::None,
            &[("a".to_owned(), 4, 4), ("b".to_owned(), 4, 4), ("c".to_owned(), 4, 4)],
        );
        let (a, b, c) = (
            f.local("a").unwrap().addr(),
            f.local("b").unwrap().addr(),
            f.local("c").unwrap().addr(),
        );
        assert!(a > b && b > c);
        assert_eq!(a.offset_from(b), 4);
    }

    #[test]
    fn sp_is_16_aligned_and_below_all_locals() {
        let f = Frame::plan("f", SP, 4, StackProtection::StackGuard, &[("buf".to_owned(), 100, 1)]);
        assert!(f.sp().is_aligned(16));
        assert!(f.sp() <= f.local("buf").unwrap().addr());
        assert!(f.size() >= 100);
        assert_eq!(f.entry_sp(), SP);
    }

    #[test]
    fn lp64_metadata_words_are_wider() {
        let f = Frame::plan("f", SP, 8, StackProtection::StackGuard, &[student_local("stud")]);
        let canary = f.canary_slot().unwrap();
        assert_eq!(f.fp_slot().unwrap().offset_from(canary), 8);
        assert_eq!(f.ret_slot().offset_from(canary), 16);
    }

    #[test]
    fn unknown_local_is_none() {
        let f = Frame::plan("f", SP, 4, StackProtection::None, &[]);
        assert!(f.local("nope").is_none());
        assert!(f.locals().is_empty());
    }

    #[test]
    fn protection_queries() {
        assert!(!StackProtection::None.has_canary());
        assert!(!StackProtection::None.has_frame_pointer());
        assert!(!StackProtection::FramePointer.has_canary());
        assert!(StackProtection::FramePointer.has_frame_pointer());
        assert!(StackProtection::StackGuard.has_canary());
        assert!(StackProtection::StackGuard.has_frame_pointer());
        assert_eq!(StackProtection::StackGuard.to_string(), "stackguard");
    }

    #[test]
    fn display_dumps_slots() {
        let f =
            Frame::plan("addStudent", SP, 4, StackProtection::StackGuard, &[student_local("stud")]);
        let text = f.to_string();
        assert!(text.contains("ret"));
        assert!(text.contains("canary"));
        assert!(text.contains("stud"));
    }
}
