//! Golden-file tests for `pncheck --format json` and `--format sarif`.
//!
//! Each case runs the real binary from inside `tests/golden/` (so the
//! paths embedded in the output are bare file names) and compares stdout
//! byte-for-byte against a checked-in golden. The goldens use
//! `{{VERSION}}` where the crate version appears, so a version bump does
//! not invalidate them.
//!
//! To regenerate after an intentional output change:
//! `PNCHECK_BLESS=1 cargo test -p pnew-detector --test golden`.

use std::path::{Path, PathBuf};
use std::process::Command;

const PNCHECK: &str = env!("CARGO_BIN_EXE_pncheck");

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs pncheck on `input` (a bare file name inside the fixture dir) and
/// checks stdout against `<case>.<format>.golden`.
fn check(case: &str, format: &str, input: &str, expect_code: i32) {
    check_with(case, format, &[], input, expect_code);
}

/// Like [`check`], with extra flags (e.g. `--oracle`) before the input.
fn check_with(case: &str, format: &str, flags: &[&str], input: &str, expect_code: i32) {
    let mut args = vec!["--format", format];
    args.extend_from_slice(flags);
    args.push(input);
    let out =
        Command::new(PNCHECK).args(&args).current_dir(fixtures()).output().expect("pncheck runs");
    assert_eq!(out.status.code(), Some(expect_code), "exit code for {case}.{format}");
    let actual = String::from_utf8(out.stdout).expect("output is UTF-8");

    let golden_path = fixtures().join(format!("{case}.{format}.golden"));
    if std::env::var_os("PNCHECK_BLESS").is_some() {
        let blessed = actual.replace(env!("CARGO_PKG_VERSION"), "{{VERSION}}");
        std::fs::write(&golden_path, blessed).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()))
        .replace("{{VERSION}}", env!("CARGO_PKG_VERSION"));
    assert_eq!(actual, expected, "{case}.{format} drifted from its golden");
}

#[test]
fn json_findings_case_matches_golden() {
    check("findings", "json", "vuln.pnx", 1);
}

#[test]
fn json_empty_report_case_matches_golden() {
    check("empty", "json", "clean.pnx", 0);
}

#[test]
fn json_parse_error_case_matches_golden() {
    check("errors", "json", "broken.pnx", 2);
}

#[test]
fn json_oracle_case_matches_golden() {
    // The differential on the vulnerable fixture: one machine-confirmed
    // true positive, zero false negatives, so exit 0 (oracle mode exits
    // 1 only on false negatives).
    check_with("oracle", "json", &["--oracle"], "vuln.pnx", 0);
}

#[test]
fn sarif_findings_case_matches_golden() {
    check("findings", "sarif", "vuln.pnx", 1);
}

#[test]
fn sarif_empty_report_case_matches_golden() {
    check("empty", "sarif", "clean.pnx", 0);
}

#[test]
fn sarif_parse_error_case_matches_golden() {
    check("errors", "sarif", "broken.pnx", 2);
}

#[test]
fn goldens_carry_spans_and_sarif_structure() {
    // Belt-and-braces over the byte comparison: the properties the issue
    // demands hold in the goldens themselves.
    let json = std::fs::read_to_string(fixtures().join("findings.json.golden")).unwrap();
    assert!(json.contains("\"line\": 7"), "finding span line missing");
    assert!(json.contains("\"col\": 5"), "finding span column missing");
    assert!(json.contains("\"rule\": \"pnx/oversized-placement\""));

    let sarif = std::fs::read_to_string(fixtures().join("findings.sarif.golden")).unwrap();
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"runs\""));
    assert!(sarif.contains("\"startLine\": 7"));
    assert!(sarif.contains("\"startColumn\": 5"));

    let errors = std::fs::read_to_string(fixtures().join("errors.json.golden")).unwrap();
    assert!(errors.contains("\"program\": null"));
    assert!(errors.contains("\"parse_errors\": 2"), "both recovered errors reported");
}
