//! End-to-end tests of the `pncheck` command-line tool.

use std::io::Write as _;
use std::process::{Command, Stdio};

const PNCHECK: &str = env!("CARGO_BIN_EXE_pncheck");

const VULNERABLE: &str = "\
program cli-demo;
class Student size 16;
class GradStudent size 32 : Student;
fn main() {
    local stud: Student;
    local st: ptr;
    st = new (&stud) GradStudent();
}
";

const CLEAN: &str = "\
program cli-clean;
class Student size 16;
fn main() {
    local stud: Student;
    local st: ptr;
    st = new (&stud) Student();
}
";

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(PNCHECK)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("pncheck spawns");
    // The child may exit before reading stdin (flag errors): a broken
    // pipe here is fine.
    let _ = child.stdin.as_mut().expect("stdin piped").write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("pncheck runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn flags_the_vulnerable_program_with_exit_one() {
    let (stdout, _, code) = run_with_stdin(&["-"], VULNERABLE);
    assert_eq!(code, 1);
    assert!(stdout.contains("oversized-placement"), "{stdout}");
    assert!(stdout.contains("overflows by 16 bytes"), "{stdout}");
    assert!(stdout.contains("hint: check sizeof()"), "{stdout}");
}

#[test]
fn passes_the_clean_program_with_exit_zero() {
    let (stdout, _, code) = run_with_stdin(&["-"], CLEAN);
    assert_eq!(code, 0);
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn baseline_mode_is_blind_to_placement_new() {
    let (stdout, _, code) = run_with_stdin(&["--baseline", "-"], VULNERABLE);
    assert_eq!(code, 0);
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn fix_mode_prints_a_clean_program() {
    let (stdout, stderr, code) = run_with_stdin(&["--fix", "-"], VULNERABLE);
    assert_eq!(code, 1); // findings were present before the fix
    assert!(stderr.contains("fallback"), "{stderr}");
    // The fixed program replaces the placement with heap new…
    assert!(stdout.contains("st = new GradStudent();"), "{stdout}");
    // …and feeding it back through pncheck is clean.
    let fixed_src = stdout
        .split_once("program cli-demo;")
        .map(|(_, rest)| format!("program cli-demo;{rest}"))
        .expect("fixed program printed");
    let (stdout2, _, code2) = run_with_stdin(&["-"], &fixed_src);
    assert_eq!(code2, 0, "{stdout2}");
}

#[test]
fn parse_errors_exit_two() {
    let (_, stderr, code) = run_with_stdin(&["-"], "this is not a program");
    assert_eq!(code, 2);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn all_leading_parse_errors_are_reported_with_positions() {
    let broken = "program multi;\nfn f() {\n    x = 1;\n    local n: int;\n    n = ;\n}\n";
    let (_, stderr, code) = run_with_stdin(&["-"], broken);
    assert_eq!(code, 2);
    // Both errors surface in one run, each with line and column.
    assert!(stderr.contains("line 3, col 5"), "{stderr}");
    assert!(stderr.contains("unknown variable `x`"), "{stderr}");
    assert!(stderr.contains("line 5, col 9"), "{stderr}");
}

#[test]
fn format_json_emits_the_envelope() {
    let (stdout, _, code) = run_with_stdin(&["--format", "json", "-"], VULNERABLE);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"schema\": \"pncheck-report/1\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"pnx/oversized-placement\""), "{stdout}");
    assert!(stdout.contains("\"line\": 7"), "{stdout}");
    assert!(stdout.contains("\"stats\": null"), "{stdout}");
}

#[test]
fn format_json_with_stats_embeds_stats_and_trace() {
    let (stdout, stderr, code) =
        run_with_stdin(&["--format", "json", "--stats", "--jobs", "1", "-"], VULNERABLE);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"cache_misses\": 1"), "{stdout}");
    assert!(stdout.contains("\"analysis.programs\": 1"), "{stdout}");
    assert!(stderr.contains("trace: counter batch.programs = 1"), "{stderr}");
}

#[test]
fn format_sarif_emits_a_2_1_0_log() {
    let (stdout, _, code) = run_with_stdin(&["--format", "sarif", "-"], VULNERABLE);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\": \"pnx/oversized-placement\""), "{stdout}");
    assert!(stdout.contains("\"startColumn\": 5"), "{stdout}");
}

#[test]
fn bad_format_and_fix_with_json_exit_two() {
    let (_, stderr, code) = run_with_stdin(&["--format", "yaml", "-"], CLEAN);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown format"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["--fix", "--format", "json", "-"], CLEAN);
    assert_eq!(code, 2);
    assert!(stderr.contains("--fix is only supported"), "{stderr}");
}

#[test]
fn missing_file_exits_two() {
    let out = Command::new(PNCHECK)
        .arg("/nonexistent/definitely-missing.pnx")
        .output()
        .expect("pncheck runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn no_args_prints_usage() {
    let out = Command::new(PNCHECK).output().expect("pncheck runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn min_severity_filters_findings() {
    // The vulnerable program has only an Error finding: min-severity error
    // keeps it; disabling the kind drops it.
    let (stdout, _, code) = run_with_stdin(&["--min-severity", "error", "-"], VULNERABLE);
    assert_eq!(code, 1);
    assert!(stdout.contains("oversized-placement"), "{stdout}");

    let (stdout, _, code) = run_with_stdin(&["--disable", "oversized-placement", "-"], VULNERABLE);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn bad_flag_values_exit_two() {
    let (_, stderr, code) = run_with_stdin(&["--min-severity", "loud", "-"], CLEAN);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown severity"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["--disable", "bogus-kind", "-"], CLEAN);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown finding kind"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["--jobs", "zero?", "-"], CLEAN);
    assert_eq!(code, 2);
    assert!(stderr.contains("--jobs"), "{stderr}");
}

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pncheck-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create parent dirs");
        }
        std::fs::write(path, contents).expect("write corpus file");
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_on_dir(args: &[&str], dir: &TempDir) -> (String, String, i32) {
    let out = Command::new(PNCHECK).args(args).arg(dir.path()).output().expect("pncheck runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn directory_input_recurses_in_sorted_order() {
    let dir = TempDir::new("dirscan");
    dir.write("b.pnx", &VULNERABLE.replace("cli-demo", "prog-beta"));
    dir.write("a.pnx", &CLEAN.replace("cli-clean", "prog-alpha"));
    dir.write("sub/nested.pnx", &VULNERABLE.replace("cli-demo", "prog-nested"));
    dir.write("notes.txt", "not a pnx file; must be ignored");

    let (stdout, _, code) = run_on_dir(&[], &dir);
    assert_eq!(code, 1, "{stdout}");
    let alpha = stdout.find("prog-alpha").expect("alpha scanned");
    let beta = stdout.find("prog-beta").expect("beta scanned");
    let nested = stdout.find("prog-nested").expect("nested dir scanned");
    assert!(alpha < beta && beta < nested, "unsorted output: {stdout}");
    assert!(!stdout.contains("notes"), "non-pnx file scanned: {stdout}");
}

#[test]
fn duplicate_inputs_scan_once() {
    let dir = TempDir::new("dedup");
    dir.write("dup.pnx", VULNERABLE);
    // The same file named directly, via its directory, and via a
    // non-canonical path must scan exactly once.
    let direct = dir.path().join("dup.pnx");
    let dotted = dir.path().join(".").join("dup.pnx");
    let out = Command::new(PNCHECK)
        .arg(&direct)
        .arg(dir.path())
        .arg(&dotted)
        .output()
        .expect("pncheck runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("cli-demo").count(), 1, "file scanned more than once: {stdout}");
}

#[test]
fn jobs_flag_does_not_change_output() {
    let dir = TempDir::new("jobs");
    for i in 0..12 {
        let src = if i % 2 == 0 { VULNERABLE } else { CLEAN };
        dir.write(&format!("p{i:02}.pnx"), &src.replace("cli-", &format!("p{i:02}-")));
    }
    let (serial, _, code1) = run_on_dir(&["--jobs", "1"], &dir);
    let (parallel, _, code8) = run_on_dir(&["--jobs", "8"], &dir);
    assert_eq!(code1, 1);
    assert_eq!(code8, 1);
    assert_eq!(serial, parallel);
}

#[test]
fn stats_flag_reports_throughput_and_cache() {
    let dir = TempDir::new("stats");
    dir.write("one.pnx", VULNERABLE);
    dir.write("two.pnx", &VULNERABLE.replace("cli-demo", "cli-demo-2"));
    let (_, stderr, code) = run_on_dir(&["--stats", "--jobs", "2"], &dir);
    assert_eq!(code, 1);
    assert!(stderr.contains("programs/sec"), "{stderr}");
    assert!(stderr.contains("hit rate"), "{stderr}");
    assert!(stderr.contains("2 jobs"), "{stderr}");
}

#[test]
fn parse_error_reports_path_and_keeps_scanning() {
    let dir = TempDir::new("parse-cont");
    dir.write("aa-broken.pnx", "this is not a program");
    dir.write("bb-good.pnx", VULNERABLE);
    let (stdout, stderr, code) = run_on_dir(&[], &dir);
    // The error names the offending file, the good file is still
    // scanned and reported, and the exit code signals the error.
    assert_eq!(code, 2, "{stdout}{stderr}");
    assert!(stderr.contains("aa-broken.pnx"), "{stderr}");
    assert!(stderr.contains("parse error"), "{stderr}");
    assert!(stdout.contains("cli-demo"), "{stdout}");
    assert!(stdout.contains("oversized-placement"), "{stdout}");
}

#[test]
fn mixed_batch_keeps_exit_two_and_counts_errored_files_once() {
    // Satellite: a batch with both parse errors and findings must exit 2
    // (errors outrank findings), and --stats must count each errored
    // file exactly once even when the scan is parallel.
    let dir = TempDir::new("mixed-stats");
    dir.write("aa-broken.pnx", "this is not a program");
    dir.write("bb-broken.pnx", "neither is this");
    dir.write("cc-vuln.pnx", VULNERABLE);
    dir.write("dd-vuln.pnx", &VULNERABLE.replace("cli-demo", "cli-demo-2"));
    for jobs in ["1", "4"] {
        let (stdout, stderr, code) = run_on_dir(&["--stats", "--jobs", jobs], &dir);
        assert_eq!(code, 2, "jobs={jobs}: findings must not mask errors\n{stdout}{stderr}");
        assert!(stdout.contains("oversized-placement"), "jobs={jobs}: {stdout}");
        assert!(
            stderr.contains("2 errored files"),
            "jobs={jobs}: errored files miscounted: {stderr}"
        );
        assert!(stderr.contains("2 programs"), "jobs={jobs}: {stderr}");
    }
}

#[test]
fn oracle_mode_prints_the_matrix_and_confirms_the_vulnerable_program() {
    let dir = TempDir::new("oracle-text");
    dir.write("vuln.pnx", VULNERABLE);
    dir.write("clean.pnx", CLEAN);
    let (stdout, _, code) = run_on_dir(&["--oracle"], &dir);
    // One confirmed true positive, zero false negatives → exit 0.
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("true-positive"), "{stdout}");
    assert!(stdout.contains("oversized-placement"), "{stdout}");
    assert!(stdout.contains("agreement: sound"), "{stdout}");
    assert!(stdout.contains("programs: 2"), "{stdout}");
}

#[test]
fn oracle_mode_keeps_exit_two_on_parse_errors() {
    let dir = TempDir::new("oracle-err");
    dir.write("broken.pnx", "nope");
    dir.write("vuln.pnx", VULNERABLE);
    let (stdout, stderr, code) = run_on_dir(&["--oracle", "--stats"], &dir);
    assert_eq!(code, 2, "{stdout}{stderr}");
    assert!(stderr.contains("1 errored files"), "{stderr}");
    assert!(stdout.contains("agreement: sound"), "{stdout}");
}

#[test]
fn oracle_mode_rejects_incompatible_flags() {
    let (_, stderr, code) = run_with_stdin(&["--oracle", "--baseline", "-"], VULNERABLE);
    assert_eq!(code, 2);
    assert!(stderr.contains("incompatible"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["--oracle", "--fix", "-"], VULNERABLE);
    assert_eq!(code, 2, "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["--oracle", "--format", "sarif", "-"], VULNERABLE);
    assert_eq!(code, 2);
    assert!(stderr.contains("text or json"), "{stderr}");
}

#[test]
fn oracle_json_envelope_comes_out_of_the_cli() {
    let (stdout, _, code) = run_with_stdin(&["--oracle", "--format", "json", "-"], VULNERABLE);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"schema\": \"pncheck-oracle/1\""), "{stdout}");
    assert!(stdout.contains("\"false_negatives\": 0"), "{stdout}");
    assert!(stdout.contains("\"verdict\": \"true-positive\""), "{stdout}");
}

#[test]
fn unusable_cache_dir_fails_fast_with_exit_two() {
    // A regular file where the cache directory should be: creation
    // fails for any uid, so the test holds even when run as root.
    let dir = TempDir::new("badcache");
    dir.write("blocker", "a file, not a directory");
    dir.write("vuln.pnx", VULNERABLE);
    let blocker = dir.path().join("blocker");
    let input = dir.path().join("vuln.pnx");

    let out = Command::new(PNCHECK)
        .args(["--cache-dir", blocker.to_str().unwrap(), input.to_str().unwrap()])
        .output()
        .expect("pncheck runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "{stdout}{stderr}");
    assert!(stderr.contains("pncheck: error: cannot open cache dir"), "{stderr}");
    // Fail-fast: the input is never analyzed, so no findings print.
    assert!(!stdout.contains("oversized-placement"), "{stdout}");

    // With --format json the failure is still a parseable envelope with
    // a structured error code.
    let out = Command::new(PNCHECK)
        .args([
            "--format",
            "json",
            "--cache-dir",
            blocker.to_str().unwrap(),
            input.to_str().unwrap(),
        ])
        .output()
        .expect("pncheck runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "{stdout}");
    assert!(stdout.contains("\"schema\": \"pncheck-report/1\""), "{stdout}");
    assert!(stdout.contains("\"code\": \"cache-dir-unusable\""), "{stdout}");
    assert!(stdout.contains("\"files\": []"), "{stdout}");
}

#[test]
fn delta_flag_validations_exit_two() {
    let dir = TempDir::new("delta-flags");
    dir.write("ok.pnx", CLEAN);
    let cache = dir.path().join("cache");
    let cache = cache.to_str().unwrap();
    let input = dir.path().join("ok.pnx");
    let input = input.to_str().unwrap();

    for args in [
        vec!["--delta", input],
        vec!["--delta", "--cache-dir", cache, "--oracle", input],
        vec!["--delta", "--cache-dir", cache, "--baseline", input],
        vec!["--delta", "--cache-dir", cache, "--fix", input],
        vec!["--delta", "--cache-dir", cache, "-"],
    ] {
        let (_, stderr, code) = run_with_stdin(&args, "");
        assert_eq!(code, 2, "{args:?}: {stderr}");
        assert!(stderr.contains("--delta"), "{args:?}: {stderr}");
    }
}

#[test]
fn delta_scan_is_byte_identical_to_a_full_scan_across_edits() {
    let dir = TempDir::new("delta-e2e");
    dir.write("src/a.pnx", CLEAN);
    dir.write("src/b.pnx", &CLEAN.replace("program demo", "program other"));
    dir.write("src/c.pnx", &CLEAN.replace("program demo", "program third"));
    let cache = dir.path().join("cache");
    let cache = cache.to_str().unwrap();
    let src = dir.path().join("src");
    let src = src.to_str().unwrap();
    let fresh = |fmt: &str| {
        let out = Command::new(PNCHECK).args(["--format", fmt, src]).output().expect("runs");
        (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.code().unwrap_or(-1))
    };
    let delta = |fmt: &str| {
        let out = Command::new(PNCHECK)
            .args(["--delta", "--cache-dir", cache, "--format", fmt, "--stats", src])
            .output()
            .expect("runs");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.code().unwrap_or(-1),
        )
    };

    // Cold delta run: everything is new, output matches a full scan
    // (sarif has no embedded stats, so it compares byte-for-byte even
    // with --stats on).
    let (reference, ref_code) = fresh("sarif");
    let (got, stderr, code) = delta("sarif");
    assert_eq!(code, ref_code, "{stderr}");
    assert_eq!(got, reference, "cold delta equals full scan");
    assert!(stderr.contains("delta: 3 tracked"), "{stderr}");
    assert!(dir.path().join("cache").join("manifest.pnm").exists(), "manifest persists");

    // Second process, no edits: the manifest seeds the index and every
    // file is served unchanged — still the same bytes.
    let (got, stderr, code) = delta("sarif");
    assert_eq!((got.as_str(), code), (reference.as_str(), ref_code));
    assert!(stderr.contains("3 unchanged, 0 changed"), "{stderr}");
    assert!(stderr.contains("3 seeded"), "{stderr}");

    // Edit one file to become vulnerable: the next delta run re-analyzes
    // just that file and matches a fresh full scan, exit code included.
    dir.write("src/b.pnx", &VULNERABLE.replace("program demo", "program other"));
    let (reference, ref_code) = fresh("sarif");
    let (got, stderr, code) = delta("sarif");
    assert_eq!(code, ref_code, "{stderr}");
    assert_eq!(got, reference, "delta after edit equals full scan");
    assert_eq!(ref_code, 1, "the edit introduced a finding");
    assert!(stderr.contains("2 unchanged, 1 changed"), "{stderr}");

    // Text format round for coverage: identical reports as a full scan.
    let (reference, _) = fresh("text");
    let (got, _, _) = delta("text");
    assert_eq!(got, reference, "text envelopes match");
}

#[test]
fn delta_run_surfaces_unreadable_files_like_a_full_scan() {
    let dir = TempDir::new("delta-unreadable");
    dir.write("a.pnx", CLEAN);
    dir.write("b.pnx", &CLEAN.replace("program demo", "program other"));
    let cache = dir.path().join("cache");
    let a = dir.path().join("a.pnx");
    let b = dir.path().join("b.pnx");
    let args: Vec<String> = vec![
        "--delta".into(),
        "--cache-dir".into(),
        cache.to_str().unwrap().into(),
        a.to_str().unwrap().into(),
        b.to_str().unwrap().into(),
    ];
    let run = || {
        let out = Command::new(PNCHECK).args(&args).output().expect("runs");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.code().unwrap_or(-1),
        )
    };
    let (_, _, code) = run();
    assert_eq!(code, 0);
    std::fs::remove_file(&b).unwrap();
    let (stdout, stderr, code) = run();
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("b.pnx"), "{stderr}");
    assert!(!stdout.contains("b.pnx"), "no record for the unreadable file: {stdout}");
}
