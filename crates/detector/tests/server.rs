//! End-to-end and adversarial tests of `pncheckd` and the `pncheckd/1`
//! protocol.
//!
//! Three layers:
//!
//! * **differential** — daemon `analyze` responses must be byte-identical
//!   to one-shot `pncheck --format json/sarif` over the same inputs;
//! * **adversarial** — malformed, oversized, binary, and concurrent
//!   traffic must always produce structured errors, never a panic, a
//!   dropped connection, or cross-client interference;
//! * **lifecycle** — warm-cache behavior across requests, idle-timeout
//!   reaping (never while a request is queued or in flight), fair
//!   queuing beyond `--max-connections` with `busy` only at the hard
//!   cap, per-client quotas, fleet sharding, and clean shutdown.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use pnew_detector::server::{parse_json, JsonNode, Server, ServerConfig};

const PNCHECKD: &str = env!("CARGO_BIN_EXE_pncheckd");
const PNCHECK: &str = env!("CARGO_BIN_EXE_pncheck");
const EXAMPLES: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/pnx");

const VULNERABLE: &str = "\
program served-demo;
class Student size 16;
class GradStudent size 32 : Student;
fn main() {
    local stud: Student;
    local st: ptr;
    st = new (&stud) GradStudent();
}
";

// ---------------------------------------------------------------------
// Protocol plumbing.
// ---------------------------------------------------------------------

/// Reads one framed reply: the header line, then exactly the payload
/// bytes the header advertises.
fn read_reply(reader: &mut impl BufRead) -> (Vec<(String, JsonNode)>, String) {
    let mut header_line = String::new();
    reader.read_line(&mut header_line).expect("header line");
    assert!(header_line.ends_with('\n'), "unterminated header {header_line:?}");
    let JsonNode::Obj(fields) = parse_json(header_line.trim_end()).expect("header parses") else {
        panic!("header is not an object: {header_line}");
    };
    let JsonNode::Int(bytes) = field(&fields, "bytes") else {
        panic!("header has no bytes: {header_line}");
    };
    let mut payload = vec![0u8; usize::try_from(*bytes).expect("payload fits")];
    reader.read_exact(&mut payload).expect("payload bytes");
    (fields, String::from_utf8(payload).expect("payload is UTF-8"))
}

fn field<'a>(fields: &'a [(String, JsonNode)], name: &str) -> &'a JsonNode {
    &fields.iter().find(|(k, _)| k == name).unwrap_or_else(|| panic!("no field {name}")).1
}

fn int_field(fields: &[(String, JsonNode)], name: &str) -> i64 {
    match field(fields, name) {
        JsonNode::Int(n) => *n,
        other => panic!("field {name} is not an int: {other:?}"),
    }
}

/// JSON string literal with full escaping — the client side of the
/// protocol, written independently of the server's serializer.
fn json_str(text: &str) -> String {
    let mut out = String::from("\"");
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn analyze_paths_request(id: u64, path: &str) -> String {
    format!("{{\"op\":\"analyze\",\"id\":{id},\"paths\":[{}]}}\n", json_str(path))
}

// ---------------------------------------------------------------------
// Daemon harness.
// ---------------------------------------------------------------------

/// A `pncheckd --listen` child, killed on drop.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(PNCHECKD)
            .arg("--listen")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("pncheckd spawns");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut line = String::new();
        stderr.read_line(&mut line).expect("startup line");
        let addr = line
            .trim()
            .strip_prefix("pncheckd: listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
            .to_owned();
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while stderr.read_line(&mut sink).is_ok_and(|n| n > 0) {
                sink.clear();
            }
        });
        Daemon { child, addr }
    }

    fn connect(&self) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        (BufReader::new(stream.try_clone().expect("clone stream")), stream)
    }

    /// Waits for the child to exit on its own (after a shutdown
    /// request), asserting a clean status within the deadline.
    fn wait_clean(mut self, deadline: Duration) {
        let start = Instant::now();
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status:?}");
                    // Disarm the kill-on-drop.
                    std::mem::forget(self);
                    return;
                }
                None if start.elapsed() > deadline => {
                    panic!("daemon did not exit within {deadline:?}");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn pncheck_output(args: &[&str]) -> (String, i32) {
    let out = Command::new(PNCHECK).args(args).output().expect("pncheck runs");
    (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.code().unwrap_or(-1))
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pncheckd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------------
// Differential: the daemon serves exactly the CLI's envelopes.
// ---------------------------------------------------------------------

#[test]
fn stdio_analyze_is_byte_identical_to_one_shot_pncheck() {
    let (cli_json, cli_code) = pncheck_output(&["--format", "json", EXAMPLES]);
    let (cli_sarif, _) = pncheck_output(&["--format", "sarif", EXAMPLES]);

    let mut child = Command::new(PNCHECKD)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("pncheckd spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin.write_all(analyze_paths_request(1, EXAMPLES).as_bytes()).unwrap();
    let sarif_request = format!(
        "{{\"op\":\"analyze\",\"id\":2,\"paths\":[{}],\"format\":\"sarif\"}}\n",
        json_str(EXAMPLES)
    );
    stdin.write_all(sarif_request.as_bytes()).unwrap();
    drop(stdin); // EOF ends the session cleanly

    let out = child.wait_with_output().expect("pncheckd runs");
    assert!(out.status.success(), "{:?}", out.status);
    let mut reader = BufReader::new(&out.stdout[..]);

    let (header, payload) = read_reply(&mut reader);
    assert_eq!(int_field(&header, "id"), 1);
    assert_eq!(field(&header, "ok"), &JsonNode::Bool(true));
    assert_eq!(int_field(&header, "exit"), i64::from(cli_code));
    assert_eq!(payload, cli_json, "daemon JSON envelope differs from pncheck");

    let (header, payload) = read_reply(&mut reader);
    assert_eq!(int_field(&header, "id"), 2);
    assert_eq!(payload, cli_sarif, "daemon SARIF envelope differs from pncheck");
}

#[test]
fn inline_source_matches_pncheck_reading_stdin() {
    let mut cli = Command::new(PNCHECK)
        .args(["--format", "json", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("pncheck spawns");
    cli.stdin.take().expect("stdin").write_all(VULNERABLE.as_bytes()).unwrap();
    let cli_out = cli.wait_with_output().expect("pncheck runs");
    let cli_json = String::from_utf8_lossy(&cli_out.stdout).into_owned();

    let server = Server::new(ServerConfig::default()).expect("server builds");
    let request = format!("{{\"op\":\"analyze\",\"id\":7,\"source\":{}}}", json_str(VULNERABLE));
    let reply = server.handle_line(&request);
    assert_eq!(reply.payload, cli_json, "inline source envelope differs from pncheck -");
    assert!(reply.header.contains("\"exit\":1"), "{}", reply.header);
}

// ---------------------------------------------------------------------
// Lifecycle: warm caches, timeouts, backpressure, shutdown.
// ---------------------------------------------------------------------

/// The acceptance criterion for the daemon: a second `analyze` of the
/// same corpus is served entirely from warm caches — zero parses, every
/// file a fingerprint hit — and stays byte-identical to the CLI.
#[test]
fn warm_rescan_runs_zero_parses_and_all_fingerprint_hits() {
    let cache = TempDir::new("warm");
    let daemon = Daemon::start(&["--cache-dir", cache.0.to_str().unwrap()]);
    let (mut reader, mut writer) = daemon.connect();

    writer.write_all(analyze_paths_request(1, EXAMPLES).as_bytes()).unwrap();
    let (_, cold_payload) = read_reply(&mut reader);
    writer.write_all(b"{\"op\":\"stats\",\"id\":2}\n").unwrap();
    let (_, cold_stats) = read_reply(&mut reader);

    writer.write_all(analyze_paths_request(3, EXAMPLES).as_bytes()).unwrap();
    let (_, warm_payload) = read_reply(&mut reader);
    writer.write_all(b"{\"op\":\"stats\",\"id\":4}\n").unwrap();
    let (_, warm_stats) = read_reply(&mut reader);

    assert_eq!(cold_payload, warm_payload, "warm rescan changed the envelope");
    let (cli_json, _) = pncheck_output(&["--format", "json", EXAMPLES]);
    assert_eq!(warm_payload, cli_json, "daemon envelope differs from pncheck");

    let analysis = |payload: &str| -> (i64, i64, i64) {
        let JsonNode::Obj(fields) = parse_json(payload.trim()).expect("stats parse") else {
            panic!("stats payload not an object");
        };
        let JsonNode::Obj(analysis) = field(&fields, "analysis").clone() else {
            panic!("no analysis block");
        };
        (
            int_field(&analysis, "parses"),
            int_field(&analysis, "fingerprint_hits"),
            int_field(&analysis, "files"),
        )
    };
    let (cold_parses, cold_hits, cold_files) = analysis(&cold_stats);
    let (warm_parses, warm_hits, warm_files) = analysis(&warm_stats);
    let rescanned = warm_files - cold_files;
    assert!(cold_files > 0 && rescanned == cold_files, "{cold_stats} vs {warm_stats}");
    assert_eq!(warm_parses, cold_parses, "warm rescan must run zero parses");
    assert_eq!(warm_hits, cold_hits + rescanned, "every rescanned file must be a cache hit");

    writer.write_all(b"{\"op\":\"shutdown\",\"id\":5}\n").unwrap();
    let (header, _) = read_reply(&mut reader);
    assert_eq!(field(&header, "event"), &JsonNode::Str("shutting-down".into()));
    daemon.wait_clean(Duration::from_secs(10));
}

/// A freshly started daemon pointed at a cache a previous run filled
/// serves its first scan from disk — still zero parses.
#[test]
fn persistent_cache_survives_a_daemon_restart() {
    let cache = TempDir::new("restart");
    let cache_path = cache.0.to_str().unwrap().to_owned();
    {
        let daemon = Daemon::start(&["--cache-dir", &cache_path]);
        let (mut reader, mut writer) = daemon.connect();
        writer.write_all(analyze_paths_request(1, EXAMPLES).as_bytes()).unwrap();
        read_reply(&mut reader);
        writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        read_reply(&mut reader);
        daemon.wait_clean(Duration::from_secs(10));
    }
    let daemon = Daemon::start(&["--cache-dir", &cache_path]);
    let (mut reader, mut writer) = daemon.connect();
    writer.write_all(analyze_paths_request(1, EXAMPLES).as_bytes()).unwrap();
    let (_, payload) = read_reply(&mut reader);
    writer.write_all(b"{\"op\":\"stats\",\"id\":2}\n").unwrap();
    let (_, stats) = read_reply(&mut reader);
    let (cli_json, _) = pncheck_output(&["--format", "json", EXAMPLES]);
    assert_eq!(payload, cli_json);
    let JsonNode::Obj(fields) = parse_json(stats.trim()).unwrap() else { panic!() };
    let JsonNode::Obj(analysis) = field(&fields, "analysis").clone() else { panic!() };
    assert_eq!(int_field(&analysis, "parses"), 0, "disk-warm scan must not parse: {stats}");
    assert!(int_field(&analysis, "persistent_hits") > 0, "{stats}");
}

#[test]
fn malformed_and_oversized_requests_leave_the_connection_usable() {
    let daemon = Daemon::start(&["--max-request-bytes", "4096"]);
    let (mut reader, mut writer) = daemon.connect();

    writer.write_all(b"this is not json\n").unwrap();
    let (header, _) = read_reply(&mut reader);
    assert_eq!(field(&header, "ok"), &JsonNode::Bool(false));

    writer.write_all(b"\xde\xad\xbe\xef\xff\n").unwrap();
    let (header, _) = read_reply(&mut reader);
    assert_eq!(field(&header, "ok"), &JsonNode::Bool(false));

    let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(100_000));
    writer.write_all(huge.as_bytes()).unwrap();
    let (header, _) = read_reply(&mut reader);
    let JsonNode::Obj(err) = field(&header, "error") else { panic!("no error object") };
    assert_eq!(field(err, "code"), &JsonNode::Str("too-large".into()));

    // The same connection still serves real work afterwards.
    writer.write_all(b"{\"op\":\"ping\",\"id\":99}\n").unwrap();
    let (header, _) = read_reply(&mut reader);
    assert_eq!(int_field(&header, "id"), 99);
    assert_eq!(field(&header, "event"), &JsonNode::Str("pong".into()));
}

#[test]
fn idle_connections_are_reaped_with_a_timeout_error() {
    let daemon = Daemon::start(&["--idle-timeout-secs", "1"]);
    let (mut reader, mut writer) = daemon.connect();
    writer.write_all(b"{\"op\":\"ping\",\"id\":1}\n").unwrap();
    read_reply(&mut reader);
    // Say nothing; the server must close the connection, not hang.
    let (header, _) = read_reply(&mut reader);
    let JsonNode::Obj(err) = field(&header, "error") else { panic!("no error object") };
    assert_eq!(field(err, "code"), &JsonNode::Str("idle-timeout".into()));
    let mut rest = String::new();
    reader.read_line(&mut rest).expect("EOF after timeout");
    assert!(rest.is_empty(), "expected EOF, got {rest:?}");
}

/// `--max-connections` pressure degrades to fair queuing: with a limit
/// of 1, seven *more* clients are still accepted and served, and
/// `busy` only appears at the hard cap (8 × the limit).
#[test]
fn connections_beyond_the_limit_queue_and_busy_only_at_the_hard_cap() {
    let daemon = Daemon::start(&["--max-connections", "1"]);
    let mut clients = Vec::new();
    for id in 1..=8 {
        let (mut reader, mut writer) = daemon.connect();
        writer.write_all(format!("{{\"op\":\"ping\",\"id\":{id}}}\n").as_bytes()).unwrap();
        let (header, _) = read_reply(&mut reader);
        assert_eq!(int_field(&header, "id"), id, "connection {id} must be served, not rejected");
        assert_eq!(field(&header, "event"), &JsonNode::Str("pong".into()));
        clients.push((reader, writer));
    }

    // The ninth connection crosses 8 × max_connections: busy, closed.
    let (mut reader9, _writer9) = daemon.connect();
    let (header, _) = read_reply(&mut reader9);
    assert_eq!(field(&header, "ok"), &JsonNode::Bool(false));
    let JsonNode::Obj(err) = field(&header, "error") else { panic!("no error object") };
    assert_eq!(field(err, "code"), &JsonNode::Str("busy".into()));

    // Every queued client is unaffected by the rejection.
    for (id, (reader, writer)) in clients.iter_mut().enumerate() {
        writer.write_all(format!("{{\"op\":\"ping\",\"id\":{}}}\n", 100 + id).as_bytes()).unwrap();
        let (header, _) = read_reply(reader);
        assert_eq!(int_field(&header, "id"), 100 + id as i64);
    }
}

/// Pipelining past `--client-quota` rejects the *excess request* with
/// `quota-exceeded` — the connection survives and keeps serving.
#[test]
fn pipelining_past_the_client_quota_is_rejected_but_the_connection_survives() {
    let daemon = Daemon::start(&["--client-quota", "1"]);
    let (mut reader, mut writer) = daemon.connect();

    // One write delivers both lines in one burst: the analyze fills the
    // quota, so the ping behind it must bounce while the analyze is
    // queued or in flight.
    let burst = format!("{}{}", analyze_paths_request(1, EXAMPLES), "{\"op\":\"ping\",\"id\":2}\n");
    writer.write_all(burst.as_bytes()).unwrap();

    // The quota rejection is written immediately (before the analyze
    // completes), so it arrives first.
    let (header, _) = read_reply(&mut reader);
    assert_eq!(field(&header, "ok"), &JsonNode::Bool(false));
    let JsonNode::Obj(err) = field(&header, "error") else { panic!("no error object") };
    assert_eq!(field(err, "code"), &JsonNode::Str("quota-exceeded".into()));

    let (header, payload) = read_reply(&mut reader);
    assert_eq!(int_field(&header, "id"), 1);
    assert_eq!(field(&header, "ok"), &JsonNode::Bool(true));
    assert!(!payload.is_empty(), "analyze still delivered its full envelope");

    // The connection is still usable once the backlog drained.
    writer.write_all(b"{\"op\":\"ping\",\"id\":3}\n").unwrap();
    let (header, _) = read_reply(&mut reader);
    assert_eq!(int_field(&header, "id"), 3);
    assert_eq!(field(&header, "event"), &JsonNode::Str("pong".into()));
}

/// Regression test for the reap-vs-in-flight race: requests landing at
/// (or replies straddling) the idle boundary must never produce a torn
/// frame — every reply is complete, and the only thing allowed after
/// the final full frame is the `idle-timeout` error and EOF.
#[test]
fn idle_reaping_never_tears_a_frame_at_the_timeout_boundary() {
    let daemon = Daemon::start(&["--idle-timeout-secs", "1"]);
    let (mut reader, mut writer) = daemon.connect();

    // Requests spaced just under the timeout: each one must reset the
    // idle clock, so the connection survives several boundary grazes.
    for id in 1..=3 {
        std::thread::sleep(Duration::from_millis(900));
        writer.write_all(format!("{{\"op\":\"ping\",\"id\":{id}}}\n").as_bytes()).unwrap();
        let (header, _) = read_reply(&mut reader);
        assert_eq!(int_field(&header, "id"), id, "boundary-grazing request was served");
    }

    // Fire a real analysis and only start reading *after* the idle
    // deadline has passed on the server: the reply must arrive whole
    // (an in-flight or just-completed request is not "idle"), then the
    // reaper closes with a complete error frame and EOF.
    writer.write_all(analyze_paths_request(9, EXAMPLES).as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(1500));
    let (header, payload) = read_reply(&mut reader);
    assert_eq!(int_field(&header, "id"), 9);
    assert_eq!(field(&header, "ok"), &JsonNode::Bool(true));
    assert!(!payload.is_empty(), "the straddling reply arrived untorn");

    let (header, _) = read_reply(&mut reader);
    let JsonNode::Obj(err) = field(&header, "error") else { panic!("no error object") };
    assert_eq!(field(err, "code"), &JsonNode::Str("idle-timeout".into()));
    let mut rest = String::new();
    reader.read_line(&mut rest).expect("EOF after timeout");
    assert!(rest.is_empty(), "expected EOF, got {rest:?}");
}

/// Two sharded replicas over indexed backends split the warm state but
/// serve byte-identical envelopes — each equal to one-shot `pncheck`.
#[test]
fn sharded_replicas_with_indexed_backends_serve_identical_envelopes() {
    let (cli_json, _) = pncheck_output(&["--format", "json", EXAMPLES]);
    let caches = [TempDir::new("shard0"), TempDir::new("shard1")];
    for (replica, cache) in caches.iter().enumerate() {
        let shard = format!("{replica}/2");
        let daemon = Daemon::start(&[
            "--shard",
            &shard,
            "--cache-backend",
            "indexed",
            "--cache-dir",
            cache.0.to_str().unwrap(),
        ]);
        let (mut reader, mut writer) = daemon.connect();
        writer.write_all(analyze_paths_request(1, EXAMPLES).as_bytes()).unwrap();
        let (_, cold) = read_reply(&mut reader);
        writer.write_all(analyze_paths_request(2, EXAMPLES).as_bytes()).unwrap();
        let (_, warm) = read_reply(&mut reader);
        assert_eq!(cold, cli_json, "shard {shard} cold envelope differs from pncheck");
        assert_eq!(warm, cli_json, "shard {shard} warm envelope differs from pncheck");

        // The stats payload advertises the fleet placement.
        writer.write_all(b"{\"op\":\"stats\",\"id\":3}\n").unwrap();
        let (_, stats) = read_reply(&mut reader);
        let JsonNode::Obj(fields) = parse_json(stats.trim()).unwrap() else { panic!() };
        let JsonNode::Obj(fleet) = field(&fields, "fleet").clone() else {
            panic!("no fleet block: {stats}")
        };
        assert_eq!(field(&fleet, "shard"), &JsonNode::Str(shard.clone()));
        assert_eq!(field(&fleet, "cache_backend"), &JsonNode::Str("indexed".into()));
        let JsonNode::Obj(analysis) = field(&fields, "analysis").clone() else { panic!() };
        assert_eq!(
            int_field(&analysis, "fingerprint_lookups"),
            int_field(&analysis, "fingerprint_hits") + int_field(&analysis, "fingerprint_misses"),
            "stats snapshot must never be torn: {stats}"
        );

        writer.write_all(b"{\"op\":\"shutdown\",\"id\":4}\n").unwrap();
        read_reply(&mut reader);
        daemon.wait_clean(Duration::from_secs(10));
    }
}

#[test]
fn startup_fails_fast_on_an_unusable_cache_dir() {
    let blocker = std::env::temp_dir().join(format!("pncheckd-blocker-{}", std::process::id()));
    std::fs::write(&blocker, "a file, not a directory").unwrap();
    let out = Command::new(PNCHECKD)
        .args(["--cache-dir", blocker.to_str().unwrap()])
        .stdin(Stdio::null())
        .output()
        .expect("pncheckd runs");
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot open cache dir"), "{stderr}");
}

// ---------------------------------------------------------------------
// Concurrency soak: many clients, interleaved requests, one daemon.
// ---------------------------------------------------------------------

/// N clients × M interleaved requests against one daemon: every
/// response must carry its request's id, identical sources must get
/// identical envelopes regardless of thread, the whole soak must finish
/// well within a bound, and the post-soak stats must show the cache
/// absorbed the repeats.
#[test]
fn concurrent_clients_get_deterministic_per_request_results() {
    const THREADS: usize = 8;
    const REQUESTS: usize = 25; // a multiple of the source pool size
    let sources: Vec<String> = (0..5)
        .map(|i| {
            format!(
                "program soak{i};\nclass C size {};\nfn main() {{\n    local c: C;\n    local p: ptr;\n    p = new (&c) C();\n}}\n",
                8 * (i + 1)
            )
        })
        .collect();

    let daemon = Daemon::start(&[]);
    let start = Instant::now();
    let mut per_source: Vec<Vec<String>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let sources = &sources;
                let daemon = &daemon;
                scope.spawn(move || {
                    let (mut reader, mut writer) = daemon.connect();
                    let mut seen: Vec<(usize, String)> = Vec::new();
                    for r in 0..REQUESTS {
                        let which = (t + r) % sources.len();
                        let id = format!("t{t}-r{r}");
                        let line = format!(
                            "{{\"op\":\"analyze\",\"id\":{},\"source\":{}}}\n",
                            json_str(&id),
                            json_str(&sources[which])
                        );
                        writer.write_all(line.as_bytes()).unwrap();
                        let (header, payload) = read_reply(&mut reader);
                        assert_eq!(
                            field(&header, "id"),
                            &JsonNode::Str(id.clone()),
                            "response id mismatch"
                        );
                        assert_eq!(field(&header, "ok"), &JsonNode::Bool(true));
                        seen.push((which, payload));
                    }
                    seen
                })
            })
            .collect();
        per_source = vec![Vec::new(); sources.len()];
        for handle in handles {
            for (which, payload) in handle.join().expect("soak thread") {
                per_source[which].push(payload);
            }
        }
    });
    assert!(start.elapsed() < Duration::from_secs(60), "soak took {:?}", start.elapsed());
    for (which, payloads) in per_source.iter().enumerate() {
        assert_eq!(payloads.len(), THREADS * REQUESTS / sources.len());
        assert!(
            payloads.windows(2).all(|w| w[0] == w[1]),
            "source {which} got divergent envelopes across threads"
        );
    }

    // The cache must have absorbed every repeat: hits ≥ rescans.
    let (mut reader, mut writer) = daemon.connect();
    writer.write_all(b"{\"op\":\"stats\",\"id\":\"post-soak\"}\n").unwrap();
    let (_, stats) = read_reply(&mut reader);
    let JsonNode::Obj(fields) = parse_json(stats.trim()).unwrap() else { panic!() };
    let JsonNode::Obj(analysis) = field(&fields, "analysis").clone() else { panic!() };
    let hits = int_field(&analysis, "fingerprint_hits");
    let rescans = (THREADS * REQUESTS - sources.len()) as i64;
    assert!(hits >= rescans, "expected >= {rescans} warm hits, saw {hits}: {stats}");
}

// ---------------------------------------------------------------------
// Property tests: framing round-trips and never-panic.
// ---------------------------------------------------------------------

proptest! {
    /// Any id and any printable source round-trip through the framing:
    /// the header is one line of valid JSON echoing the id, and the
    /// advertised byte count matches the payload exactly.
    #[test]
    fn framing_round_trips_arbitrary_ids_and_sources(
        id in "[a-zA-Z0-9_./-]{0,24}",
        body in "\\PC{0,200}",
        lines in proptest::collection::vec("\\PC{0,40}", 0..6),
    ) {
        let source = format!("{body}\n{}", lines.join("\n"));
        let server = Server::new(ServerConfig::default()).expect("server builds");
        let line = format!(
            "{{\"op\":\"analyze\",\"id\":{},\"source\":{}}}",
            json_str(&id),
            json_str(&source)
        );
        let reply = server.handle_line(&line);
        prop_assert!(!reply.header.contains('\n'), "header must be one line");
        let JsonNode::Obj(fields) = parse_json(&reply.header).expect("header parses") else {
            panic!("header not an object");
        };
        prop_assert_eq!(field(&fields, "ok"), &JsonNode::Bool(true));
        prop_assert_eq!(field(&fields, "id"), &JsonNode::Str(id));
        prop_assert_eq!(int_field(&fields, "bytes"), reply.payload.len() as i64);
        // The payload is itself valid JSON (the pncheck envelope).
        prop_assert!(parse_json(reply.payload.trim()).is_ok());
    }

    /// Arbitrary byte soup — truncated, binary, newline-riddled — fed
    /// straight into a live server never panics and never kills the
    /// session: every emitted reply is a well-formed header line.
    #[test]
    fn byte_soup_never_panics_and_always_yields_structured_replies(
        chunks in proptest::collection::vec(
            proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64),
            1..8,
        ),
        limit in 32usize..512,
    ) {
        let mut input = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            input.extend_from_slice(chunk);
            if i % 2 == 0 {
                input.push(b'\n');
            }
        }
        let server = Server::new(ServerConfig {
            max_request_bytes: limit,
            ..ServerConfig::default()
        })
        .expect("server builds");
        let mut out = Vec::new();
        server.serve_connection(&input[..], &mut out).expect("session survives");
        let text = String::from_utf8(out).expect("replies are UTF-8");
        let mut rest = text.as_str();
        while !rest.is_empty() {
            let (header_line, tail) = rest.split_once('\n').expect("framed header line");
            let JsonNode::Obj(fields) = parse_json(header_line).expect("header parses") else {
                panic!("header not an object: {header_line}");
            };
            prop_assert_eq!(
                field(&fields, "schema"),
                &JsonNode::Str("pncheckd/1".into())
            );
            let advertised = int_field(&fields, "bytes") as usize;
            prop_assert!(tail.len() >= advertised, "truncated payload");
            rest = &tail[advertised..];
        }
    }

    /// The JSON parser itself never panics on printable garbage.
    #[test]
    fn json_parser_never_panics(text in "\\PC{0,300}") {
        let _ = parse_json(&text);
    }
}
