//! `pncheckd` — the placement-new checker as a persistent service.
//!
//! ```text
//! usage: pncheckd [OPTIONS]
//!
//!   Serves the pncheckd/1 protocol (newline-delimited JSON requests,
//!   framed responses) on stdin/stdout, or on a TCP socket with
//!   --listen. The daemon keeps one warm analysis engine per requested
//!   configuration, so repeated analyses of unchanged sources are
//!   served from memory without parsing or re-analysis.
//!
//!   --listen ADDR:PORT       serve TCP instead of stdio (port 0 picks
//!                            a free port; the bound address is printed
//!                            to stderr as "pncheckd: listening on …")
//!   --jobs N                 default worker threads per scan
//!                            (requests may override per-request)
//!   --min-severity LEVEL     default reporting threshold
//!   --disable KIND           disable one finding kind (repeatable)
//!   --no-summaries           analyze without function summaries
//!   --cache-dir DIR          persistent cache shared across restarts;
//!                            an unusable DIR fails startup (exit 2)
//!   --max-request-bytes N    request line limit (default 4194304)
//!   --max-connections N      concurrent TCP connection limit
//!                            (default 32)
//!   --idle-timeout-secs N    close idle TCP connections after N
//!                            seconds (0 = never; default 300)
//! ```
//!
//! See `docs/pnx-syntax.md` for the full protocol reference. Exit
//! status: 0 after a clean shutdown (EOF or a `shutdown` request), 2 on
//! usage errors or an unusable `--cache-dir`.

use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use pnew_detector::cliopts::CommonOpts;
use pnew_detector::server::{Server, ServerConfig};

const USAGE: &str = "usage: pncheckd [--listen ADDR:PORT] [--jobs N] [--min-severity LEVEL] [--disable KIND]... [--no-summaries] [--cache-dir DIR] [--max-request-bytes N] [--max-connections N] [--idle-timeout-secs N]";

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut opts = CommonOpts::default();
    let mut cache_dir: Option<PathBuf> = None;
    let mut server_config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(result) = opts.accept(&arg, &mut args) {
            if let Err(e) = result {
                eprintln!("pncheckd: {e}");
                return ExitCode::from(2);
            }
            continue;
        }
        macro_rules! numeric_value {
            ($flag:literal) => {
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("pncheckd: {} needs a non-negative integer", $flag);
                        return ExitCode::from(2);
                    }
                }
            };
        }
        match arg.as_str() {
            "--listen" => {
                let Some(addr) = args.next() else {
                    eprintln!("pncheckd: --listen needs ADDR:PORT");
                    return ExitCode::from(2);
                };
                listen = Some(addr);
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("pncheckd: --cache-dir needs a directory");
                    return ExitCode::from(2);
                };
                cache_dir = Some(PathBuf::from(dir));
            }
            "--max-request-bytes" => {
                let n: usize = numeric_value!("--max-request-bytes");
                if n == 0 {
                    eprintln!("pncheckd: --max-request-bytes needs a positive integer");
                    return ExitCode::from(2);
                }
                server_config.max_request_bytes = n;
            }
            "--max-connections" => {
                let n: usize = numeric_value!("--max-connections");
                if n == 0 {
                    eprintln!("pncheckd: --max-connections needs a positive integer");
                    return ExitCode::from(2);
                }
                server_config.max_connections = n;
            }
            "--idle-timeout-secs" => {
                let n: u64 = numeric_value!("--idle-timeout-secs");
                server_config.idle_timeout = (n > 0).then(|| Duration::from_secs(n));
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pncheckd: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // The daemon's text/json/sarif default belongs to each request, not
    // the process; reject the flag rather than ignore it silently.
    if opts.format != pnew_detector::emit::OutputFormat::default() {
        eprintln!("pncheckd: --format is per-request; pass \"format\" in the analyze request");
        return ExitCode::from(2);
    }
    server_config.base = opts.config;
    server_config.jobs = opts.jobs;
    server_config.cache_dir = cache_dir;

    // Like pncheck, an unusable --cache-dir fails startup loudly
    // instead of degrading to an uncached daemon.
    let server = match Server::new(server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pncheckd: error: cannot open cache dir: {e}");
            return ExitCode::from(2);
        }
    };

    let served = match listen {
        None => {
            let stdin = io::stdin().lock();
            let stdout = io::stdout().lock();
            server.serve_connection(stdin, stdout)
        }
        Some(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(local) => eprintln!("pncheckd: listening on {local}"),
                    Err(_) => eprintln!("pncheckd: listening on {addr}"),
                }
                server.serve_listener(listener)
            }
            Err(e) => {
                eprintln!("pncheckd: cannot listen on {addr}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pncheckd: {e}");
            ExitCode::FAILURE
        }
    }
}
