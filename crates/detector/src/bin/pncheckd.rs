//! `pncheckd` — the placement-new checker as a persistent service.
//!
//! ```text
//! usage: pncheckd [OPTIONS]
//!
//!   Serves the pncheckd/1 protocol (newline-delimited JSON requests,
//!   framed responses) on stdin/stdout, or on a TCP socket with
//!   --listen. The daemon keeps one warm analysis engine per requested
//!   configuration, so repeated analyses of unchanged sources are
//!   served from memory without parsing or re-analysis.
//!
//!   --listen ADDR:PORT       serve TCP instead of stdio (port 0 picks
//!                            a free port; the bound address is printed
//!                            to stderr as "pncheckd: listening on …")
//!   --jobs N                 default worker threads per scan
//!                            (requests may override per-request)
//!   --min-severity LEVEL     default reporting threshold
//!   --disable KIND           disable one finding kind (repeatable)
//!   --no-summaries           analyze without function summaries
//!   --cache-dir DIR          persistent cache shared across restarts;
//!                            an unusable DIR fails startup (exit 2)
//!   --cache-backend KIND     persistent-tier layout: "dir" (one file
//!                            per entry, shareable between processes;
//!                            the default) or "indexed" (one
//!                            append-only indexed store, one writer)
//!   --shard K/N              serve replica K of an N-way fleet: only
//!                            fingerprints with key % N == K are kept
//!                            warm or written to the cache (results
//!                            stay complete for every request)
//!   --max-request-bytes N    request line limit (default 4194304)
//!   --max-connections N      fair-queuing design point (default 32);
//!                            connections beyond it queue, and "busy"
//!                            only appears at the hard cap (8x this)
//!   --client-quota N         most requests one connection may have
//!                            queued + in flight before the excess is
//!                            answered "quota-exceeded" (default 16)
//!   --idle-timeout-secs N    close TCP connections with nothing
//!                            queued or in flight after N idle seconds
//!                            (0 = never; default 300)
//!   --watch ROOT             poll ROOT (repeatable) with the delta op
//!                            instead of serving a socket: each cycle
//!                            re-stats the tracked files, re-analyzes
//!                            only the invalidation cone, and prints
//!                            the fresh envelope to stdout whenever
//!                            anything changed (the first cycle always
//!                            prints). Cycle counters go to stderr.
//!   --watch-interval-ms N    delay between watch cycles (default 500)
//!   --watch-cycles N         stop after N cycles (default 0 = forever)
//! ```
//!
//! See `docs/pnx-syntax.md` for the full protocol reference. Exit
//! status: 0 after a clean shutdown (EOF, a `shutdown` request, or the
//! last `--watch-cycles` cycle), 2 on usage errors or an unusable
//! `--cache-dir`.

use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use pnew_detector::cliopts::CommonOpts;
use pnew_detector::server::{parse_json, JsonNode, Server, ServerConfig};

const USAGE: &str = "usage: pncheckd [--listen ADDR:PORT] [--jobs N] [--min-severity LEVEL] [--disable KIND]... [--no-summaries] [--cache-dir DIR] [--cache-backend dir|indexed] [--shard K/N] [--max-request-bytes N] [--max-connections N] [--client-quota N] [--idle-timeout-secs N] [--watch ROOT]... [--watch-interval-ms N] [--watch-cycles N]";

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut watch_roots: Vec<String> = Vec::new();
    let mut watch_interval_ms: u64 = 500;
    let mut watch_cycles: u64 = 0;
    let mut opts = CommonOpts::default();
    let mut cache_dir: Option<PathBuf> = None;
    let mut server_config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(result) = opts.accept(&arg, &mut args) {
            if let Err(e) = result {
                eprintln!("pncheckd: {e}");
                return ExitCode::from(2);
            }
            continue;
        }
        macro_rules! numeric_value {
            ($flag:literal) => {
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("pncheckd: {} needs a non-negative integer", $flag);
                        return ExitCode::from(2);
                    }
                }
            };
        }
        match arg.as_str() {
            "--listen" => {
                let Some(addr) = args.next() else {
                    eprintln!("pncheckd: --listen needs ADDR:PORT");
                    return ExitCode::from(2);
                };
                listen = Some(addr);
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("pncheckd: --cache-dir needs a directory");
                    return ExitCode::from(2);
                };
                cache_dir = Some(PathBuf::from(dir));
            }
            "--cache-backend" => {
                let Some(kind) = args.next() else {
                    eprintln!("pncheckd: --cache-backend needs a value (dir|indexed)");
                    return ExitCode::from(2);
                };
                match pnew_detector::cliopts::parse_cache_backend(&kind) {
                    Ok(kind) => server_config.cache_backend = kind,
                    Err(e) => {
                        eprintln!("pncheckd: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--shard" => {
                let Some(spec) = args.next() else {
                    eprintln!("pncheckd: --shard needs K/N");
                    return ExitCode::from(2);
                };
                match pnew_detector::cliopts::parse_shard(&spec) {
                    Ok(spec) => server_config.shard = Some(spec),
                    Err(e) => {
                        eprintln!("pncheckd: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-request-bytes" => {
                let n: usize = numeric_value!("--max-request-bytes");
                if n == 0 {
                    eprintln!("pncheckd: --max-request-bytes needs a positive integer");
                    return ExitCode::from(2);
                }
                server_config.max_request_bytes = n;
            }
            "--max-connections" => {
                let n: usize = numeric_value!("--max-connections");
                if n == 0 {
                    eprintln!("pncheckd: --max-connections needs a positive integer");
                    return ExitCode::from(2);
                }
                server_config.max_connections = n;
            }
            "--client-quota" => {
                let n: usize = numeric_value!("--client-quota");
                if n == 0 {
                    eprintln!("pncheckd: --client-quota needs a positive integer");
                    return ExitCode::from(2);
                }
                server_config.client_quota = n;
            }
            "--idle-timeout-secs" => {
                let n: u64 = numeric_value!("--idle-timeout-secs");
                server_config.idle_timeout = (n > 0).then(|| Duration::from_secs(n));
            }
            "--watch" => {
                let Some(root) = args.next() else {
                    eprintln!("pncheckd: --watch needs a file or directory");
                    return ExitCode::from(2);
                };
                watch_roots.push(root);
            }
            "--watch-interval-ms" => {
                watch_interval_ms = numeric_value!("--watch-interval-ms");
            }
            "--watch-cycles" => {
                watch_cycles = numeric_value!("--watch-cycles");
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pncheckd: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // The daemon's text/json/sarif default belongs to each request, not
    // the process; reject the flag rather than ignore it silently.
    if opts.format != pnew_detector::emit::OutputFormat::default() {
        eprintln!("pncheckd: --format is per-request; pass \"format\" in the analyze request");
        return ExitCode::from(2);
    }
    if !watch_roots.is_empty() && listen.is_some() {
        eprintln!("pncheckd: --watch and --listen are exclusive");
        return ExitCode::from(2);
    }
    server_config.base = opts.config;
    server_config.jobs = opts.jobs;
    server_config.cache_dir = cache_dir;

    // Like pncheck, an unusable --cache-dir fails startup loudly
    // instead of degrading to an uncached daemon.
    let server = match Server::new(server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pncheckd: error: cannot open cache dir: {e}");
            return ExitCode::from(2);
        }
    };

    if !watch_roots.is_empty() {
        return watch(&server, &watch_roots, watch_interval_ms, watch_cycles);
    }

    let served = match listen {
        None => {
            let stdin = io::stdin().lock();
            let stdout = io::stdout().lock();
            server.serve_connection(stdin, stdout)
        }
        Some(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(local) => eprintln!("pncheckd: listening on {local}"),
                    Err(_) => eprintln!("pncheckd: listening on {addr}"),
                }
                server.serve_listener(listener)
            }
            Err(e) => {
                eprintln!("pncheckd: cannot listen on {addr}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pncheckd: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Polls the registered roots through the `delta` op. Each cycle is the
/// same request a remote client would send; the loop just feeds it to
/// the in-process server and relays the reply. The envelope lands on
/// stdout whenever anything changed (and on the first cycle, so a
/// consumer always has a baseline); the per-cycle counters go to
/// stderr.
fn watch(server: &Server, roots: &[String], interval_ms: u64, cycles: u64) -> ExitCode {
    let paths: Vec<String> = roots.iter().map(|r| json_string(r)).collect();
    let request = format!("{{\"op\":\"delta\",\"paths\":[{}]}}", paths.join(","));
    let mut cycle: u64 = 0;
    loop {
        cycle += 1;
        let reply = server.handle_line(&request);
        let header = match parse_json(&reply.header) {
            Ok(JsonNode::Obj(fields)) => fields,
            _ => {
                eprintln!("pncheckd: watch: malformed reply header: {}", reply.header);
                return ExitCode::from(2);
            }
        };
        let get = |name: &str| header.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        if get("ok") != Some(&JsonNode::Bool(true)) {
            let detail = match get("error") {
                Some(JsonNode::Obj(err)) => err
                    .iter()
                    .find(|(k, _)| k == "message")
                    .map(|(_, v)| match v {
                        JsonNode::Str(text) => text.clone(),
                        other => format!("{other:?}"),
                    })
                    .unwrap_or_default(),
                _ => String::new(),
            };
            eprintln!("pncheckd: watch: request failed: {detail}");
            return ExitCode::from(2);
        }
        let counter = |name: &str| match get("delta") {
            Some(JsonNode::Obj(delta)) => delta
                .iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| match v {
                    JsonNode::Int(n) if *n >= 0 => Some(*n as u64),
                    _ => None,
                })
                .unwrap_or(0),
            _ => 0,
        };
        if let Some(JsonNode::Arr(errs)) = get("file_errors") {
            for err in errs {
                match err {
                    JsonNode::Str(text) => eprintln!("pncheckd: watch: {text}"),
                    other => eprintln!("pncheckd: watch: {other:?}"),
                }
            }
        }
        let (tracked, changed, added, removed) =
            (counter("tracked"), counter("changed"), counter("added"), counter("removed"));
        let dirty = changed + added + removed > 0;
        eprintln!(
            "pncheckd: watch cycle {cycle}: {tracked} tracked, {changed} changed, \
             {added} added, {removed} removed, cone {}/{} functions",
            counter("cone_functions"),
            counter("tracked_functions"),
        );
        if cycle == 1 || dirty {
            print!("{}", reply.payload);
            if !reply.payload.ends_with('\n') {
                println!();
            }
            let _ = io::Write::flush(&mut io::stdout());
        }
        if cycles > 0 && cycle >= cycles {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// Quotes one path as a JSON string literal for the request line.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
