//! `pncheck` — the placement-new vulnerability checker as a CLI.
//!
//! ```text
//! usage: pncheck [OPTIONS] PATH...
//!        pncheck [OPTIONS] -              (read one program from stdin)
//!
//!   PATH may be a .pnx file or a directory, which is scanned
//!   recursively for *.pnx files (in sorted path order). Inputs are
//!   canonicalized and deduplicated, so a file named both directly and
//!   via an enclosing directory is scanned once.
//!
//!   --baseline              run the traditional-tools baseline instead
//!   --fix                   print the automatically remediated program
//!                           (text format only)
//!   --oracle                differential mode: execute each program on
//!                           the runtime machine under scripted attacker
//!                           inputs and cross-check the analyzer,
//!                           printing a TP/FP/FN verdict matrix (text or
//!                           json format; exit 1 on any false negative)
//!   --format FORMAT         output format: text (default), json
//!                           (the pncheck-report/1 envelope), or sarif
//!                           (SARIF 2.1.0)
//!   --min-severity LEVEL    report only findings at LEVEL or above
//!                           (info|warning|error; default info)
//!   --disable KIND          switch one finding kind off (repeatable)
//!   --jobs N                scan with N worker threads
//!                           (default: available parallelism)
//!   --cache-dir DIR         persist analysis results in DIR across
//!                           runs, keyed on file content: a warm rescan
//!                           of unchanged files skips parsing and
//!                           analysis entirely. Corrupt or stale entries
//!                           are re-analyzed (with a warning), never
//!                           trusted. Ignored under --baseline and
//!                           --oracle.
//!   --cache-backend KIND    on-disk layout for --cache-dir: "dir"
//!                           (one file per entry, shareable between
//!                           processes; the default) or "indexed" (one
//!                           append-only indexed store — faster to
//!                           open, single writer). Both serve
//!                           byte-identical results.
//!   --delta                 incremental rescan against --cache-dir:
//!                           classify each input by stat against the
//!                           cache's delta manifest, re-analyze only
//!                           changed files, and serve the rest from
//!                           cache with zero reads and zero parses.
//!                           Output is byte-identical to a full scan of
//!                           the same tree. The manifest self-primes:
//!                           the first --delta run records the tree and
//!                           later runs go incremental. Requires
//!                           --cache-dir; incompatible with --baseline,
//!                           --oracle, --fix, and stdin input.
//!   --no-summaries          analyze calls by inline re-walk instead of
//!                           memoized function summaries (slower;
//!                           results are identical — this flag exists
//!                           for differential testing)
//!   --stats                 print scan throughput, cache counters
//!                           (both the in-memory and the on-disk tier),
//!                           and per-pass trace lines — including
//!                           summary computation/application counts —
//!                           to stderr; with --format json, also embed
//!                           them in the envelope
//! ```
//!
//! Exit status: 0 when no warning-level findings, 1 when any program has
//! them, 2 on usage errors or when any file failed to read or parse.
//! Under `--oracle`, exit 1 means a false negative was found instead.
//! A bad file does not abort the run: the parser recovers and reports
//! *all* leading syntax errors with line and column, the remaining files
//! are still scanned, and the exit code is 2.

use std::io::Read as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use pnew_detector::cliopts::{self, CommonOpts};
use pnew_detector::emit::{self, FileRecord, OracleRecord, OutputFormat};
use pnew_detector::oracle::{Matrix, Oracle, Verdict};
use pnew_detector::trace::TraceCollector;
use pnew_detector::{
    parse_program_recovering, Analyzer, BaselineChecker, BatchEngine, Fixer, ParseError,
    PersistentCache, Program, Severity,
};

const USAGE: &str = "usage: pncheck [--baseline] [--fix] [--oracle] [--format text|json|sarif] [--min-severity LEVEL] [--disable KIND]... [--jobs N] [--cache-dir DIR] [--cache-backend dir|indexed] [--delta] [--no-summaries] [--stats] PATH... | -";

/// One input after reading: raw text, not yet parsed. The default scan
/// path hands sources to the batch engine unparsed, so a warm
/// `--cache-dir` hit never runs the parser at all.
struct SourceFile {
    path: String,
    source: String,
}

/// One input after reading and parsing: the program when it parsed, the
/// recovered parse errors when it did not. Used by the modes that need
/// the IR up front (`--baseline`, `--oracle`).
struct ScannedFile {
    path: String,
    program: Option<Program>,
    errors: Vec<ParseError>,
}

/// Parses every source, printing each recovered syntax error with its
/// path. Returns the scanned files and whether any failed.
fn parse_all(files: &[SourceFile]) -> (Vec<ScannedFile>, bool) {
    let mut had_errors = false;
    let scanned = files
        .iter()
        .map(|f| match parse_program_recovering(&f.source) {
            Ok(p) => ScannedFile { path: f.path.clone(), program: Some(p), errors: Vec::new() },
            Err(errors) => {
                for e in &errors {
                    eprintln!("pncheck: {}: {e}", f.path);
                }
                had_errors = true;
                ScannedFile { path: f.path.clone(), program: None, errors }
            }
        })
        .collect();
    (scanned, had_errors)
}

fn main() -> ExitCode {
    let mut baseline = false;
    let mut fix = false;
    let mut oracle = false;
    let mut stats = false;
    let mut delta = false;
    let mut opts = CommonOpts::default();
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_backend = pnew_detector::BackendKind::Dir;
    let mut inputs = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(result) = opts.accept(&arg, &mut args) {
            if let Err(e) = result {
                eprintln!("pncheck: {e}");
                return ExitCode::from(2);
            }
            continue;
        }
        match arg.as_str() {
            "--baseline" => baseline = true,
            "--fix" => fix = true,
            "--oracle" => oracle = true,
            "--stats" => stats = true,
            "--delta" => delta = true,
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("pncheck: --cache-dir needs a directory");
                    return ExitCode::from(2);
                };
                cache_dir = Some(PathBuf::from(dir));
            }
            "--cache-backend" => {
                let Some(kind) = args.next() else {
                    eprintln!("pncheck: --cache-backend needs a value (dir|indexed)");
                    return ExitCode::from(2);
                };
                match cliopts::parse_cache_backend(&kind) {
                    Ok(kind) => cache_backend = kind,
                    Err(e) => {
                        eprintln!("pncheck: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => inputs.push(arg),
        }
    }
    let CommonOpts { jobs, format, config } = opts;
    if inputs.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if fix && format != OutputFormat::Text {
        eprintln!("pncheck: --fix is only supported with --format text");
        return ExitCode::from(2);
    }
    if oracle && (baseline || fix) {
        eprintln!("pncheck: --oracle is incompatible with --baseline and --fix");
        return ExitCode::from(2);
    }
    if oracle && format == OutputFormat::Sarif {
        eprintln!("pncheck: --oracle supports --format text or json");
        return ExitCode::from(2);
    }
    if delta {
        if cache_dir.is_none() {
            eprintln!("pncheck: --delta requires --cache-dir");
            return ExitCode::from(2);
        }
        if baseline || oracle || fix {
            eprintln!("pncheck: --delta is incompatible with --baseline, --oracle, and --fix");
            return ExitCode::from(2);
        }
        if inputs.iter().any(|i| i == "-") {
            eprintln!("pncheck: --delta scans paths, not stdin");
            return ExitCode::from(2);
        }
    }

    // An unusable --cache-dir is a configuration error, not a
    // degradation: failing fast (before any file is read) keeps CI
    // pipelines from silently running uncached forever. With --format
    // json the failure still produces a parseable envelope on stdout.
    let persistent = match (&cache_dir, baseline || oracle) {
        (Some(dir), false) => match PersistentCache::open_with(dir, &config, cache_backend) {
            Ok(pc) => Some(pc),
            Err(e) => {
                let message = format!("cannot open cache dir {}: {e}", dir.display());
                eprintln!("pncheck: error: {message}");
                if format == OutputFormat::Json {
                    print!("{}", emit::render_error_json("cache-dir-unusable", &message));
                }
                return ExitCode::from(2);
            }
        },
        _ => None,
    };

    let mut had_errors = false;
    let (paths, expand_errors) = cliopts::expand_inputs(&inputs);
    for e in expand_errors {
        eprintln!("pncheck: {e}");
        had_errors = true;
    }

    if delta {
        let pc = persistent.expect("--delta validated --cache-dir above");
        let trace = stats.then(|| Arc::new(TraceCollector::new()));
        let mut engine = BatchEngine::new(Analyzer::with_config(config)).with_persistent_cache(pc);
        if let Some(n) = jobs {
            engine = engine.with_jobs(n);
        }
        if let Some(t) = &trace {
            engine = engine.with_trace(Arc::clone(t));
        }
        return run_delta(&paths, &engine, format, stats, trace.as_deref(), had_errors);
    }

    // Read every input. Bad files are reported with their path; the rest
    // still get scanned. `unreadable` counts inputs that never became a
    // SourceFile at all, so the stats line can report every errored file
    // exactly once.
    let mut unreadable = 0usize;
    let mut files: Vec<SourceFile> = Vec::with_capacity(paths.len());
    for path in paths {
        let source = if path == "-" {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("pncheck: cannot read stdin");
                had_errors = true;
                unreadable += 1;
                continue;
            }
            s
        } else {
            match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pncheck: {path}: {e}");
                    had_errors = true;
                    unreadable += 1;
                    continue;
                }
            }
        };
        files.push(SourceFile { path, source });
    }

    let trace = stats.then(|| Arc::new(TraceCollector::new()));

    if oracle {
        let (scanned, parse_errors) = parse_all(&files);
        let errored_files = unreadable + scanned.iter().filter(|f| f.program.is_none()).count();
        return run_oracle(
            &scanned,
            errored_files,
            had_errors || parse_errors,
            format,
            stats,
            trace.as_deref(),
        );
    }

    // The baseline checker needs the IR up front; the real analyzer
    // scans raw sources through the engine, so warm disk-cache hits
    // skip parsing entirely.
    let (records, scan_stats) = if baseline {
        let (scanned, parse_errors) = parse_all(&files);
        had_errors |= parse_errors;
        let checker = BaselineChecker::new();
        let records = scanned
            .into_iter()
            .map(|f| FileRecord {
                path: f.path,
                report: f.program.as_ref().map(|p| checker.analyze(p)),
                errors: f.errors,
            })
            .collect();
        (records, None)
    } else {
        let mut engine = BatchEngine::new(Analyzer::with_config(config));
        if let Some(n) = jobs {
            engine = engine.with_jobs(n);
        }
        if let Some(t) = &trace {
            engine = engine.with_trace(Arc::clone(t));
        }
        if let Some(pc) = persistent {
            engine = engine.with_persistent_cache(pc);
        }
        let sources: Vec<&str> = files.iter().map(|f| f.source.as_str()).collect();
        let (outcomes, s) = engine.scan_sources_with_stats(&sources);
        let records = files
            .iter()
            .zip(outcomes)
            .map(|(f, o)| {
                for e in &o.errors {
                    eprintln!("pncheck: {}: {e}", f.path);
                    had_errors = true;
                }
                if o.cache_corrupt {
                    eprintln!("pncheck: warning: corrupt cache entry for {}; re-analyzed", f.path);
                }
                FileRecord { path: f.path.clone(), report: o.report, errors: o.errors }
            })
            .collect();
        (records, Some(s))
    };
    let records: Vec<FileRecord> = records;

    // A dying cache must not look like a working one: warn once per
    // scan when any entry failed to persist.
    if let Some(s) = &scan_stats {
        warn_write_errors(s.persistent_write_errors);
    }

    // Errored files = unreadable inputs + files that read but failed to
    // parse. Neither kind ever produces a report, so the count is exact
    // regardless of --jobs.
    let errored_files = unreadable + records.iter().filter(|r| r.report.is_none()).count();
    let any_findings =
        records.iter().filter_map(|r| r.report.as_ref()).any(|r| r.detected_at(Severity::Warning));

    match format {
        OutputFormat::Text => {
            for (file, record) in files.iter().zip(&records) {
                let Some(report) = &record.report else { continue };
                print!("{report}");
                for finding in &report.findings {
                    println!("    hint: {}", finding.kind.suggestion());
                }
                if fix {
                    // The report may have come from the disk cache, so
                    // the IR is re-derived here; --fix is a rare,
                    // interactive path where one extra parse is cheap.
                    let program = parse_program_recovering(&file.source)
                        .expect("a file with a report parses");
                    let (fixed, fixes) = Fixer::new().fix(&program);
                    for f in &fixes {
                        eprintln!("fix: {f}");
                    }
                    print!("{}", pnew_detector::pretty_program(&fixed));
                }
            }
        }
        OutputFormat::Json => {
            // Stats and trace carry wall-clock timings, so they embed only
            // on request — the default envelope is deterministic.
            let snapshot = trace.as_ref().map(|t| t.snapshot());
            let embedded = if stats { scan_stats.as_ref() } else { None };
            print!("{}", emit::render_json(&records, embedded, snapshot.as_ref()));
        }
        OutputFormat::Sarif => {
            print!("{}", emit::render_sarif(&records));
        }
    }

    if stats {
        if let Some(s) = &scan_stats {
            // The disk tier reports separately from the in-memory
            // fingerprint cache: "cache" is per-process memoization,
            // "disk" is the cross-run --cache-dir store.
            let disk = if cache_dir.is_some() {
                format!(
                    ", disk {}/{} hit/miss ({} corrupt, {} write errors)",
                    s.persistent_hits,
                    s.persistent_misses,
                    s.persistent_corrupt,
                    s.persistent_write_errors
                )
            } else {
                String::new()
            };
            eprintln!(
                "stats: {} programs, {} findings, {} errored files, {:.0} programs/sec, {} jobs, cache {}/{} hit/miss ({:.1}% hit rate){disk}, {:.3}s elapsed",
                s.programs,
                s.findings,
                errored_files,
                s.programs_per_sec(),
                s.jobs,
                s.cache_hits,
                s.cache_misses,
                s.cache_hit_rate() * 100.0,
                s.elapsed.as_secs_f64(),
            );
        } else {
            eprintln!("stats: baseline mode scans serially; no batch stats");
        }
        if let Some(t) = &trace {
            for line in t.snapshot().lines() {
                eprintln!("{line}");
            }
        }
    }

    if had_errors {
        ExitCode::from(2)
    } else if any_findings {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Warns (once per scan) when persistent-cache writes failed: each
/// failure degrades one file to uncached, and a silently dying cache
/// looks exactly like a working one.
fn warn_write_errors(write_errors: u64) {
    if write_errors > 0 {
        eprintln!(
            "pncheck: warning: {write_errors} cache write error(s); those results were not persisted"
        );
    }
}

/// The `--delta` mode: incremental rescan against the cache directory's
/// delta manifest. Only changed files are read and re-analyzed; output
/// and exit status are byte-identical to a full scan of the same tree.
fn run_delta(
    paths: &[String],
    engine: &BatchEngine,
    format: OutputFormat,
    stats: bool,
    trace: Option<&TraceCollector>,
    mut had_errors: bool,
) -> ExitCode {
    let seeded = engine.seed_tracked_from_manifest();
    let (outcomes, scan_stats, delta) = engine.rescan_delta(paths, None);
    if !engine.save_tracked_manifest() {
        eprintln!("pncheck: warning: could not write the delta manifest; next run rescans cold");
    }

    // Replicate the full-scan error reporting exactly: unreadable files
    // are named on stderr and never become a record; parse errors are
    // printed per file (served-from-cache failures included).
    let mut unreadable = 0usize;
    let mut records: Vec<FileRecord> = Vec::with_capacity(outcomes.len());
    for o in &outcomes {
        if let Some(e) = &o.read_error {
            eprintln!("pncheck: {}: {e}", o.path);
            had_errors = true;
            unreadable += 1;
            continue;
        }
        for e in &o.errors {
            eprintln!("pncheck: {}: {e}", o.path);
            had_errors = true;
        }
        if o.cache_corrupt {
            eprintln!("pncheck: warning: corrupt cache entry for {}; re-analyzed", o.path);
        }
        records.push(FileRecord {
            path: o.path.clone(),
            report: o.analysis.as_ref().map(|a| a.report.clone()),
            errors: o.errors.clone(),
        });
    }
    warn_write_errors(scan_stats.persistent_write_errors);

    let errored_files = unreadable + records.iter().filter(|r| r.report.is_none()).count();
    let any_findings =
        records.iter().filter_map(|r| r.report.as_ref()).any(|r| r.detected_at(Severity::Warning));

    match format {
        OutputFormat::Text => {
            for record in &records {
                let Some(report) = &record.report else { continue };
                print!("{report}");
                for finding in &report.findings {
                    println!("    hint: {}", finding.kind.suggestion());
                }
            }
        }
        OutputFormat::Json => {
            let snapshot = trace.map(|t| t.snapshot());
            let embedded = stats.then_some(&scan_stats);
            print!("{}", emit::render_json(&records, embedded, snapshot.as_ref()));
        }
        OutputFormat::Sarif => {
            print!("{}", emit::render_sarif(&records));
        }
    }

    if stats {
        let s = &scan_stats;
        eprintln!(
            "stats: {} programs, {} findings, {} errored files, {:.0} programs/sec, {} jobs, cache {}/{} hit/miss ({:.1}% hit rate), disk {}/{} hit/miss ({} corrupt, {} write errors), {:.3}s elapsed",
            s.programs,
            s.findings,
            errored_files,
            s.programs_per_sec(),
            s.jobs,
            s.cache_hits,
            s.cache_misses,
            s.cache_hit_rate() * 100.0,
            s.persistent_hits,
            s.persistent_misses,
            s.persistent_corrupt,
            s.persistent_write_errors,
            s.elapsed.as_secs_f64(),
        );
        eprintln!(
            "delta: {} tracked, {} unchanged, {} changed, {} added, {} removed, {} seeded, cone {}/{} functions ({} changed)",
            delta.tracked_files,
            delta.unchanged_files,
            delta.changed_files,
            delta.added_files,
            delta.removed_files,
            seeded,
            delta.cone_functions,
            delta.tracked_functions,
            delta.changed_functions,
        );
        if let Some(t) = trace {
            for line in t.snapshot().lines() {
                eprintln!("{line}");
            }
        }
    }

    if had_errors {
        ExitCode::from(2)
    } else if any_findings {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `--oracle` mode: run the analyzer/executor differential over
/// every parsed program and report the TP/FP/FN verdict matrix. Exit 2
/// on read/parse errors, 1 on any false negative, 0 on agreement.
fn run_oracle(
    files: &[ScannedFile],
    errored_files: usize,
    had_errors: bool,
    format: OutputFormat,
    stats: bool,
    trace: Option<&TraceCollector>,
) -> ExitCode {
    let oracle = Oracle::new();
    let mut matrix = Matrix::new();
    let mut records: Vec<OracleRecord> = Vec::new();
    for file in files {
        let Some(program) = &file.program else { continue };
        let report = oracle.differential(program);
        matrix.absorb(&report);
        records.push(OracleRecord { path: file.path.clone(), report });
    }
    if let Some(t) = trace {
        let (tp, fp, fnn) = matrix.totals();
        t.count("oracle.programs", records.len() as u64);
        t.count("oracle.true-positives", tp);
        t.count("oracle.false-positives", fp);
        t.count("oracle.false-negatives", fnn);
    }

    match format {
        OutputFormat::Text => {
            for record in &records {
                for v in &record.report.verdicts {
                    println!(
                        "{}: {} [{}] {}#{}{}",
                        record.path,
                        v.verdict,
                        v.kind.name(),
                        v.site.function,
                        v.site.line,
                        if v.events.is_empty() {
                            String::new()
                        } else {
                            format!(" (events: {})", v.events.join(", "))
                        },
                    );
                }
            }
            println!("{matrix}");
        }
        OutputFormat::Json => {
            print!("{}", emit::render_oracle_json(&records, &matrix));
        }
        // Rejected during argument validation.
        OutputFormat::Sarif => unreachable!("--oracle forbids sarif"),
    }

    if stats {
        eprintln!(
            "stats: {} programs, {} errored files, {} verdicts",
            records.len(),
            errored_files,
            records.iter().map(|r| r.report.verdicts.len()).sum::<usize>(),
        );
        if let Some(t) = trace {
            for line in t.snapshot().lines() {
                eprintln!("{line}");
            }
        }
    }

    let false_negatives = records
        .iter()
        .flat_map(|r| &r.report.verdicts)
        .filter(|v| v.verdict == Verdict::FalseNegative)
        .count();
    if had_errors {
        ExitCode::from(2)
    } else if false_negatives > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
