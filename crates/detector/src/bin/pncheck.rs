//! `pncheck` — the placement-new vulnerability checker as a CLI.
//!
//! ```text
//! usage: pncheck [OPTIONS] PATH...
//!        pncheck [OPTIONS] -              (read one program from stdin)
//!
//!   PATH may be a .pnx file or a directory, which is scanned
//!   recursively for *.pnx files (in sorted path order).
//!
//!   --baseline              run the traditional-tools baseline instead
//!   --fix                   print the automatically remediated program
//!   --min-severity LEVEL    report only findings at LEVEL or above
//!                           (info|warning|error; default info)
//!   --disable KIND          switch one finding kind off (repeatable)
//!   --jobs N                scan with N worker threads
//!                           (default: available parallelism)
//!   --stats                 print scan throughput and cache counters
//!                           to stderr
//! ```
//!
//! Exit status: 0 when no warning-level findings, 1 when any program has
//! them, 2 on usage errors or when any file failed to read or parse.
//! A bad file does not abort the run: the error is reported with its
//! path, the remaining files are still scanned, and the exit code is 2.

use std::io::Read as _;
use std::path::Path;
use std::process::ExitCode;

use pnew_detector::{
    parse_program, Analyzer, AnalyzerConfig, BaselineChecker, BatchEngine, FindingKind, Fixer,
    Program, Severity,
};

const USAGE: &str = "usage: pncheck [--baseline] [--fix] [--min-severity LEVEL] [--disable KIND]... [--jobs N] [--stats] PATH... | -";

/// Recursively collects `*.pnx` files under `dir`, sorted by path so the
/// scan order (and therefore the output order) is deterministic.
fn collect_pnx(dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<std::fs::DirEntry> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_pnx(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "pnx") {
            out.push(path.to_string_lossy().into_owned());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut baseline = false;
    let mut fix = false;
    let mut stats = false;
    let mut jobs: Option<usize> = None;
    let mut config = AnalyzerConfig::default();
    let mut inputs = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = true,
            "--fix" => fix = true,
            "--stats" => stats = true,
            "--jobs" => {
                let parsed = args.next().and_then(|n| n.parse::<usize>().ok());
                match parsed {
                    Some(n) if n > 0 => jobs = Some(n),
                    _ => {
                        eprintln!("pncheck: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--min-severity" => {
                let Some(level) = args.next() else {
                    eprintln!("pncheck: --min-severity needs a value");
                    return ExitCode::from(2);
                };
                match level.parse::<Severity>() {
                    Ok(s) => config.min_severity = s,
                    Err(e) => {
                        eprintln!("pncheck: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--disable" => {
                let Some(kind) = args.next() else {
                    eprintln!("pncheck: --disable needs a finding kind");
                    return ExitCode::from(2);
                };
                match FindingKind::from_name(&kind) {
                    Some(k) => config.disabled.push(k),
                    None => {
                        eprintln!("pncheck: unknown finding kind {kind:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => inputs.push(arg),
        }
    }
    if inputs.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    // Expand directories, then read and parse every input. Bad files are
    // reported with their path and skipped; the rest still get scanned.
    let mut had_errors = false;
    let mut paths = Vec::new();
    for input in inputs {
        if input != "-" && Path::new(&input).is_dir() {
            if let Err(e) = collect_pnx(Path::new(&input), &mut paths) {
                eprintln!("pncheck: {input}: {e}");
                had_errors = true;
            }
        } else {
            paths.push(input);
        }
    }
    let mut programs: Vec<(String, Program)> = Vec::with_capacity(paths.len());
    for path in paths {
        let source = if path == "-" {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("pncheck: cannot read stdin");
                had_errors = true;
                continue;
            }
            s
        } else {
            match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pncheck: {path}: {e}");
                    had_errors = true;
                    continue;
                }
            }
        };
        match parse_program(&source) {
            Ok(p) => programs.push((path, p)),
            Err(e) => {
                eprintln!("pncheck: {path}: {e}");
                had_errors = true;
            }
        }
    }

    let batch: Vec<Program> = programs.iter().map(|(_, p)| p.clone()).collect();
    let (reports, scan_stats) = if baseline {
        let checker = BaselineChecker::new();
        (batch.iter().map(|p| checker.analyze(p)).collect(), None)
    } else {
        let mut engine = BatchEngine::new(Analyzer::with_config(config));
        if let Some(n) = jobs {
            engine = engine.with_jobs(n);
        }
        let (reports, s) = engine.scan_with_stats(&batch);
        (reports, Some(s))
    };

    let mut any_findings = false;
    for ((_, program), report) in programs.iter().zip(&reports) {
        print!("{report}");
        for finding in &report.findings {
            println!("    hint: {}", finding.kind.suggestion());
        }
        if report.detected_at(Severity::Warning) {
            any_findings = true;
        }
        if fix {
            let (fixed, fixes) = Fixer::new().fix(program);
            for f in &fixes {
                eprintln!("fix: {f}");
            }
            print!("{}", pnew_detector::pretty_program(&fixed));
        }
    }

    if stats {
        if let Some(s) = scan_stats {
            eprintln!(
                "stats: {} programs, {} findings, {:.0} programs/sec, {} jobs, cache {}/{} hit/miss ({:.1}% hit rate), {:.3}s elapsed",
                s.programs,
                s.findings,
                s.programs_per_sec(),
                s.jobs,
                s.cache_hits,
                s.cache_misses,
                s.cache_hit_rate() * 100.0,
                s.elapsed.as_secs_f64(),
            );
        } else {
            eprintln!("stats: baseline mode scans serially; no batch stats");
        }
    }

    if had_errors {
        ExitCode::from(2)
    } else if any_findings {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
