//! `pncheck` — the placement-new vulnerability checker as a CLI.
//!
//! ```text
//! usage: pncheck [OPTIONS] PATH...
//!        pncheck [OPTIONS] -              (read one program from stdin)
//!
//!   PATH may be a .pnx file or a directory, which is scanned
//!   recursively for *.pnx files (in sorted path order). Inputs are
//!   canonicalized and deduplicated, so a file named both directly and
//!   via an enclosing directory is scanned once.
//!
//!   --baseline              run the traditional-tools baseline instead
//!   --fix                   print the automatically remediated program
//!                           (text format only)
//!   --oracle                differential mode: execute each program on
//!                           the runtime machine under scripted attacker
//!                           inputs and cross-check the analyzer,
//!                           printing a TP/FP/FN verdict matrix (text or
//!                           json format; exit 1 on any false negative)
//!   --format FORMAT         output format: text (default), json
//!                           (the pncheck-report/1 envelope), or sarif
//!                           (SARIF 2.1.0)
//!   --min-severity LEVEL    report only findings at LEVEL or above
//!                           (info|warning|error; default info)
//!   --disable KIND          switch one finding kind off (repeatable)
//!   --jobs N                scan with N worker threads
//!                           (default: available parallelism)
//!   --stats                 print scan throughput, cache counters, and
//!                           per-pass trace lines to stderr; with
//!                           --format json, also embed them in the
//!                           envelope
//! ```
//!
//! Exit status: 0 when no warning-level findings, 1 when any program has
//! them, 2 on usage errors or when any file failed to read or parse.
//! Under `--oracle`, exit 1 means a false negative was found instead.
//! A bad file does not abort the run: the parser recovers and reports
//! *all* leading syntax errors with line and column, the remaining files
//! are still scanned, and the exit code is 2.

use std::collections::HashSet;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use pnew_detector::emit::{self, FileRecord, OracleRecord, OutputFormat};
use pnew_detector::oracle::{Matrix, Oracle, Verdict};
use pnew_detector::trace::TraceCollector;
use pnew_detector::{
    parse_program_recovering, Analyzer, AnalyzerConfig, BaselineChecker, BatchEngine, FindingKind,
    Fixer, ParseError, Program, Severity,
};

const USAGE: &str = "usage: pncheck [--baseline] [--fix] [--oracle] [--format text|json|sarif] [--min-severity LEVEL] [--disable KIND]... [--jobs N] [--stats] PATH... | -";

/// Recursively collects `*.pnx` files under `dir`, sorted by path so the
/// scan order (and therefore the output order) is deterministic.
fn collect_pnx(dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<std::fs::DirEntry> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_pnx(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "pnx") {
            out.push(path.to_string_lossy().into_owned());
        }
    }
    Ok(())
}

/// One input after reading and parsing: the program when it parsed, the
/// recovered parse errors when it did not.
struct ScannedFile {
    path: String,
    program: Option<Program>,
    errors: Vec<ParseError>,
}

fn main() -> ExitCode {
    let mut baseline = false;
    let mut fix = false;
    let mut oracle = false;
    let mut stats = false;
    let mut format = OutputFormat::Text;
    let mut jobs: Option<usize> = None;
    let mut config = AnalyzerConfig::default();
    let mut inputs = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = true,
            "--fix" => fix = true,
            "--oracle" => oracle = true,
            "--stats" => stats = true,
            "--format" => {
                let Some(value) = args.next() else {
                    eprintln!("pncheck: --format needs a value (text|json|sarif)");
                    return ExitCode::from(2);
                };
                match value.parse::<OutputFormat>() {
                    Ok(f) => format = f,
                    Err(e) => {
                        eprintln!("pncheck: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => {
                let parsed = args.next().and_then(|n| n.parse::<usize>().ok());
                match parsed {
                    Some(n) if n > 0 => jobs = Some(n),
                    _ => {
                        eprintln!("pncheck: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--min-severity" => {
                let Some(level) = args.next() else {
                    eprintln!("pncheck: --min-severity needs a value");
                    return ExitCode::from(2);
                };
                match level.parse::<Severity>() {
                    Ok(s) => config.min_severity = s,
                    Err(e) => {
                        eprintln!("pncheck: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--disable" => {
                let Some(kind) = args.next() else {
                    eprintln!("pncheck: --disable needs a finding kind");
                    return ExitCode::from(2);
                };
                match FindingKind::from_name(&kind) {
                    Some(k) => config.disabled.push(k),
                    None => {
                        eprintln!("pncheck: unknown finding kind {kind:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => inputs.push(arg),
        }
    }
    if inputs.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if fix && format != OutputFormat::Text {
        eprintln!("pncheck: --fix is only supported with --format text");
        return ExitCode::from(2);
    }
    if oracle && (baseline || fix) {
        eprintln!("pncheck: --oracle is incompatible with --baseline and --fix");
        return ExitCode::from(2);
    }
    if oracle && format == OutputFormat::Sarif {
        eprintln!("pncheck: --oracle supports --format text or json");
        return ExitCode::from(2);
    }

    // Expand directories, then canonicalize and deduplicate so a file
    // named both directly and via an enclosing directory scans once.
    let mut had_errors = false;
    let mut paths = Vec::new();
    for input in inputs {
        if input != "-" && Path::new(&input).is_dir() {
            if let Err(e) = collect_pnx(Path::new(&input), &mut paths) {
                eprintln!("pncheck: {input}: {e}");
                had_errors = true;
            }
        } else {
            paths.push(input);
        }
    }
    let mut seen: HashSet<PathBuf> = HashSet::new();
    paths.retain(|path| {
        let key = if path == "-" {
            PathBuf::from("-")
        } else {
            std::fs::canonicalize(path).unwrap_or_else(|_| PathBuf::from(path))
        };
        seen.insert(key)
    });

    // Read and parse every input. Bad files are reported with their path
    // and every recovered syntax error; the rest still get scanned.
    // `unreadable` counts inputs that never became a ScannedFile at all,
    // so the stats line can report every errored file exactly once.
    let mut unreadable = 0usize;
    let mut files: Vec<ScannedFile> = Vec::with_capacity(paths.len());
    for path in paths {
        let source = if path == "-" {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("pncheck: cannot read stdin");
                had_errors = true;
                unreadable += 1;
                continue;
            }
            s
        } else {
            match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pncheck: {path}: {e}");
                    had_errors = true;
                    unreadable += 1;
                    continue;
                }
            }
        };
        match parse_program_recovering(&source) {
            Ok(p) => files.push(ScannedFile { path, program: Some(p), errors: Vec::new() }),
            Err(errors) => {
                for e in &errors {
                    eprintln!("pncheck: {path}: {e}");
                }
                had_errors = true;
                files.push(ScannedFile { path, program: None, errors });
            }
        }
    }

    let trace = stats.then(|| Arc::new(TraceCollector::new()));
    // Errored files = unreadable inputs + files that read but failed to
    // parse. Neither kind ever enters the batch, so the count is exact
    // regardless of --jobs.
    let errored_files = unreadable + files.iter().filter(|f| f.program.is_none()).count();

    if oracle {
        return run_oracle(&files, errored_files, had_errors, format, stats, trace.as_deref());
    }

    let batch: Vec<Program> = files.iter().filter_map(|f| f.program.clone()).collect();
    let (reports, scan_stats) = if baseline {
        let checker = BaselineChecker::new();
        (batch.iter().map(|p| checker.analyze(p)).collect(), None)
    } else {
        let mut engine = BatchEngine::new(Analyzer::with_config(config));
        if let Some(n) = jobs {
            engine = engine.with_jobs(n);
        }
        if let Some(t) = &trace {
            engine = engine.with_trace(Arc::clone(t));
        }
        let (reports, s) = engine.scan_with_stats(&batch);
        (reports, Some(s))
    };

    // Stitch reports back onto their files (one per parsed program, in
    // scan order) to build the records every output format renders from.
    let mut report_iter = reports.into_iter();
    let records: Vec<FileRecord> = files
        .iter()
        .map(|f| FileRecord {
            path: f.path.clone(),
            report: f
                .program
                .as_ref()
                .map(|_| report_iter.next().expect("one report per parsed program")),
            errors: f.errors.clone(),
        })
        .collect();
    let any_findings =
        records.iter().filter_map(|r| r.report.as_ref()).any(|r| r.detected_at(Severity::Warning));

    match format {
        OutputFormat::Text => {
            for (file, record) in files.iter().zip(&records) {
                let Some(report) = &record.report else { continue };
                print!("{report}");
                for finding in &report.findings {
                    println!("    hint: {}", finding.kind.suggestion());
                }
                if fix {
                    let program = file.program.as_ref().expect("parsed program for report");
                    let (fixed, fixes) = Fixer::new().fix(program);
                    for f in &fixes {
                        eprintln!("fix: {f}");
                    }
                    print!("{}", pnew_detector::pretty_program(&fixed));
                }
            }
        }
        OutputFormat::Json => {
            // Stats and trace carry wall-clock timings, so they embed only
            // on request — the default envelope is deterministic.
            let snapshot = trace.as_ref().map(|t| t.snapshot());
            let embedded = if stats { scan_stats.as_ref() } else { None };
            print!("{}", emit::render_json(&records, embedded, snapshot.as_ref()));
        }
        OutputFormat::Sarif => {
            print!("{}", emit::render_sarif(&records));
        }
    }

    if stats {
        if let Some(s) = &scan_stats {
            eprintln!(
                "stats: {} programs, {} findings, {} errored files, {:.0} programs/sec, {} jobs, cache {}/{} hit/miss ({:.1}% hit rate), {:.3}s elapsed",
                s.programs,
                s.findings,
                errored_files,
                s.programs_per_sec(),
                s.jobs,
                s.cache_hits,
                s.cache_misses,
                s.cache_hit_rate() * 100.0,
                s.elapsed.as_secs_f64(),
            );
        } else {
            eprintln!("stats: baseline mode scans serially; no batch stats");
        }
        if let Some(t) = &trace {
            for line in t.snapshot().lines() {
                eprintln!("{line}");
            }
        }
    }

    if had_errors {
        ExitCode::from(2)
    } else if any_findings {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `--oracle` mode: run the analyzer/executor differential over
/// every parsed program and report the TP/FP/FN verdict matrix. Exit 2
/// on read/parse errors, 1 on any false negative, 0 on agreement.
fn run_oracle(
    files: &[ScannedFile],
    errored_files: usize,
    had_errors: bool,
    format: OutputFormat,
    stats: bool,
    trace: Option<&TraceCollector>,
) -> ExitCode {
    let oracle = Oracle::new();
    let mut matrix = Matrix::new();
    let mut records: Vec<OracleRecord> = Vec::new();
    for file in files {
        let Some(program) = &file.program else { continue };
        let report = oracle.differential(program);
        matrix.absorb(&report);
        records.push(OracleRecord { path: file.path.clone(), report });
    }
    if let Some(t) = trace {
        let (tp, fp, fnn) = matrix.totals();
        t.count("oracle.programs", records.len() as u64);
        t.count("oracle.true-positives", tp);
        t.count("oracle.false-positives", fp);
        t.count("oracle.false-negatives", fnn);
    }

    match format {
        OutputFormat::Text => {
            for record in &records {
                for v in &record.report.verdicts {
                    println!(
                        "{}: {} [{}] {}#{}{}",
                        record.path,
                        v.verdict,
                        v.kind.name(),
                        v.site.function,
                        v.site.line,
                        if v.events.is_empty() {
                            String::new()
                        } else {
                            format!(" (events: {})", v.events.join(", "))
                        },
                    );
                }
            }
            println!("{matrix}");
        }
        OutputFormat::Json => {
            print!("{}", emit::render_oracle_json(&records, &matrix));
        }
        // Rejected during argument validation.
        OutputFormat::Sarif => unreachable!("--oracle forbids sarif"),
    }

    if stats {
        eprintln!(
            "stats: {} programs, {} errored files, {} verdicts",
            records.len(),
            errored_files,
            records.iter().map(|r| r.report.verdicts.len()).sum::<usize>(),
        );
        if let Some(t) = trace {
            for line in t.snapshot().lines() {
                eprintln!("{line}");
            }
        }
    }

    let false_negatives = records
        .iter()
        .flat_map(|r| &r.report.verdicts)
        .filter(|v| v.verdict == Verdict::FalseNegative)
        .count();
    if had_errors {
        ExitCode::from(2)
    } else if false_negatives > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
