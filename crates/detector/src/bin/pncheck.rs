//! `pncheck` — the placement-new vulnerability checker as a CLI.
//!
//! ```text
//! usage: pncheck [OPTIONS] FILE.pnx...
//!        pncheck [OPTIONS] -              (read one program from stdin)
//!
//!   --baseline              run the traditional-tools baseline instead
//!   --fix                   print the automatically remediated program
//!   --min-severity LEVEL    report only findings at LEVEL or above
//!                           (info|warning|error; default info)
//!   --disable KIND          switch one finding kind off (repeatable)
//! ```
//!
//! Exit status: 0 when no warning-level findings, 1 when any program has
//! them, 2 on usage/parse errors.

use std::io::Read as _;
use std::process::ExitCode;

use pnew_detector::{
    parse_program, Analyzer, AnalyzerConfig, BaselineChecker, FindingKind, Fixer, Severity,
};

const USAGE: &str =
    "usage: pncheck [--baseline] [--fix] [--min-severity LEVEL] [--disable KIND]... FILE.pnx... | -";

fn main() -> ExitCode {
    let mut baseline = false;
    let mut fix = false;
    let mut config = AnalyzerConfig::default();
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = true,
            "--fix" => fix = true,
            "--min-severity" => {
                let Some(level) = args.next() else {
                    eprintln!("pncheck: --min-severity needs a value");
                    return ExitCode::from(2);
                };
                match level.parse::<Severity>() {
                    Ok(s) => config.min_severity = s,
                    Err(e) => {
                        eprintln!("pncheck: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--disable" => {
                let Some(kind) = args.next() else {
                    eprintln!("pncheck: --disable needs a finding kind");
                    return ExitCode::from(2);
                };
                match FindingKind::from_name(&kind) {
                    Some(k) => config.disabled.push(k),
                    None => {
                        eprintln!("pncheck: unknown finding kind {kind:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut any_findings = false;
    for path in &paths {
        let source = if path == "-" {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("pncheck: cannot read stdin");
                return ExitCode::from(2);
            }
            s
        } else {
            match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pncheck: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        let program = match parse_program(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("pncheck: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = if baseline {
            BaselineChecker::new().analyze(&program)
        } else {
            Analyzer::with_config(config.clone()).analyze(&program)
        };
        print!("{report}");
        for finding in &report.findings {
            println!("    hint: {}", finding.kind.suggestion());
        }
        if report.detected_at(Severity::Warning) {
            any_findings = true;
        }
        if fix {
            let (fixed, fixes) = Fixer::new().fix(&program);
            for f in &fixes {
                eprintln!("fix: {f}");
            }
            print!("{}", pnew_detector::pretty_program(&fixed));
        }
    }
    if any_findings {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
