//! Lightweight tracing/metrics for the analysis pipeline.
//!
//! A [`TraceCollector`] gathers named counters (programs scanned, cache
//! hits, findings per kind) and per-pass wall-clock timings from the
//! [`Analyzer`](crate::Analyzer) and the
//! [`BatchEngine`](crate::BatchEngine). It is cheap, thread-safe (the
//! batch workers all feed one collector), and entirely opt-in: analysis
//! paths that were not handed a collector pay nothing beyond an
//! `Option` check.
//!
//! A [`snapshot`](TraceCollector::snapshot) yields an immutable
//! [`TraceReport`] with deterministic (sorted) ordering, which `pncheck
//! --stats` prints and the JSON envelope embeds.
//!
//! ```
//! use pnew_detector::{trace::TraceCollector, Analyzer, Expr, ProgramBuilder, Ty};
//!
//! let mut p = ProgramBuilder::new("demo");
//! p.class("Student", 16, None, false);
//! p.class("GradStudent", 32, Some("Student"), false);
//! let mut f = p.function("main");
//! let stud = f.local("stud", Ty::Class("Student".into()));
//! let st = f.local("st", Ty::Ptr);
//! f.placement_new(st, Expr::addr_of(stud), "GradStudent");
//! f.finish();
//! let program = p.build();
//!
//! let trace = TraceCollector::new();
//! let report = Analyzer::new().analyze_traced(&program, &trace);
//! assert!(report.detected());
//! let snap = trace.snapshot();
//! assert_eq!(snap.counters["analysis.programs"], 1);
//! assert_eq!(snap.counters["findings.oversized-placement"], 1);
//! ```

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Aggregated timing for one named pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct PassAgg {
    total: Duration,
    calls: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    passes: BTreeMap<String, PassAgg>,
}

/// A thread-safe sink for counter and timing events.
///
/// See the [module docs](self) for the event vocabulary and an example.
#[derive(Debug, Default)]
pub struct TraceCollector {
    inner: Mutex<Inner>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Adds `n` to the counter `name` (created at zero on first use).
    pub fn count(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock().expect("trace collector poisoned");
        let c = inner.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Records one timed invocation of the pass `name`.
    pub fn record_pass(&self, name: &str, elapsed: Duration) {
        let mut inner = self.inner.lock().expect("trace collector poisoned");
        let agg = inner.passes.entry(name.to_owned()).or_default();
        agg.total = agg.total.saturating_add(elapsed);
        agg.calls += 1;
    }

    /// Times `f` as one invocation of the pass `name`.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let result = f();
        self.record_pass(name, start.elapsed());
        result
    }

    /// An immutable, deterministically ordered view of everything
    /// collected so far.
    pub fn snapshot(&self) -> TraceReport {
        let inner = self.inner.lock().expect("trace collector poisoned");
        TraceReport {
            counters: inner.counters.clone(),
            passes: inner
                .passes
                .iter()
                .map(|(name, agg)| PassTiming {
                    name: name.clone(),
                    calls: agg.calls,
                    total: agg.total,
                })
                .collect(),
        }
    }
}

/// One pass's aggregate timing in a [`TraceReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTiming {
    /// Pass name (e.g. `analysis.walk`).
    pub name: String,
    /// Times the pass ran.
    pub calls: u64,
    /// Total wall-clock time across all calls.
    pub total: Duration,
}

/// A point-in-time snapshot of a [`TraceCollector`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Named event counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Per-pass timings, sorted by pass name.
    pub passes: Vec<PassTiming>,
}

impl TraceReport {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.passes.is_empty()
    }

    /// Human-oriented lines for `--stats` output, one per entry.
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.passes.len() + self.counters.len());
        for p in &self.passes {
            out.push(format!(
                "trace: pass {} = {:.3}ms over {} call(s)",
                p.name,
                p.total.as_secs_f64() * 1e3,
                p.calls
            ));
        }
        for (name, value) in &self.counters {
            out.push(format!("trace: counter {name} = {value}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = TraceCollector::new();
        t.count("a", 2);
        t.count("a", 3);
        t.count("b", 1);
        let snap = t.snapshot();
        assert_eq!(snap.counters["a"], 5);
        assert_eq!(snap.counters["b"], 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn passes_aggregate_calls_and_time() {
        let t = TraceCollector::new();
        let v = t.time("pass", || 41 + 1);
        assert_eq!(v, 42);
        t.record_pass("pass", Duration::from_millis(2));
        let snap = t.snapshot();
        assert_eq!(snap.passes.len(), 1);
        assert_eq!(snap.passes[0].calls, 2);
        assert!(snap.passes[0].total >= Duration::from_millis(2));
    }

    #[test]
    fn snapshot_ordering_is_deterministic() {
        let t = TraceCollector::new();
        t.count("zeta", 1);
        t.count("alpha", 1);
        t.record_pass("walk", Duration::ZERO);
        t.record_pass("index", Duration::ZERO);
        let snap = t.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        let passes: Vec<&str> = snap.passes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(passes, ["index", "walk"]);
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let t = TraceCollector::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        t.count("hits", 1);
                    }
                });
            }
        });
        assert_eq!(t.snapshot().counters["hits"], 400);
    }

    #[test]
    fn empty_report_renders_no_lines() {
        let snap = TraceCollector::new().snapshot();
        assert!(snap.is_empty());
        assert!(snap.lines().is_empty());
    }
}
