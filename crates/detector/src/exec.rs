//! IR → machine lowering and concrete execution for the differential
//! oracle.
//!
//! [`Executor::run`] takes the same [`Program`] IR the static analyzer
//! sees, lowers every declared variable onto a fresh
//! [`pnew_runtime::Machine`] address space — globals into the data
//! segment, locals into real stack frames with canaries — and interprets
//! the statements concretely against a scripted attacker input. Ground
//! truth comes back as [`ExecEvent`]s: logical writes whose extent
//! exceeds the owning region (the §3/§4 placement overflows), canaries
//! found smashed on return, secret residue shipped by `output` (§4.3),
//! bytes stranded by size-mismatched or orphaning releases (§4.5), and
//! allocation failures.
//!
//! The interpreter is deliberately total: overflowing writes really land
//! (clamped to the containing segment, so the two-step attack of §4
//! concretely rewrites its own bounds variable), loops are capped,
//! exhausted inputs read as 0, and the few statements the lowering cannot
//! model faithfully (virtual dispatch, calls through pointers, field
//! stores — their layouts live in the object model, not the IR) are
//! recorded as skipped instead of faulting. `docs/pnx-syntax.md` lists
//! the executable subset.
//!
//! Scalars live in machine memory and are re-read at every use, which is
//! the property the oracle exists to exercise: a placement that
//! overflows a checked count variable changes what the next statement
//! computes, exactly as in the paper's Listing 19.

use pnew_memory::{SegmentKind, VirtAddr};
use pnew_object::ClassRegistry;
use pnew_runtime::{ControlOutcome, Machine, MachineBuilder, VarDecl};

use crate::ir::{Cond, Expr, Op, Program, Scope, Site, Stmt, Ty, VarId};

/// Byte pattern standing in for attacker-controlled content.
pub const ATTACK_BYTE: u8 = 0x41;

/// Byte pattern written by `read_secret`; `output` scans for survivors.
pub const SECRET_BYTE: u8 = 0x53;

/// Longest single concrete write, in bytes. Logical write lengths are
/// unbounded (an attacker-supplied count), but the machine only commits
/// this much past the region so execution stays fast and in-segment.
const MAX_CONCRETE_WRITE: u64 = 4096;

/// Storage for variables whose declared size is unknown
/// (`char buf[]`-style arenas).
const UNSIZED_ARRAY_BYTES: u64 = 64;

/// What one ground-truth event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEventKind {
    /// A logical write extended past the end of its owning region.
    OverflowWrite {
        /// Bytes in the region from its start.
        region_size: u64,
        /// Bytes the statement logically wrote.
        write_len: u64,
        /// Bytes past the region end.
        excess: u64,
    },
    /// The StackGuard canary was found rewritten when a frame returned.
    CanarySmash,
    /// `output` shipped bytes still carrying the secret pattern.
    SecretLeak {
        /// Secret bytes in the shipped window.
        bytes: u64,
    },
    /// Heap bytes stranded by a size-mismatched release or by nulling
    /// the last pointer to a live block.
    StrandedBytes {
        /// Bytes no longer reachable or reusable.
        bytes: u64,
    },
    /// The allocator could not satisfy a request.
    OutOfMemory {
        /// Requested payload size.
        requested: u64,
    },
}

impl ExecEventKind {
    /// Short stable name (used in reports and JSON).
    pub fn label(&self) -> &'static str {
        match self {
            ExecEventKind::OverflowWrite { .. } => "overflow-write",
            ExecEventKind::CanarySmash => "canary-smash",
            ExecEventKind::SecretLeak { .. } => "secret-leak",
            ExecEventKind::StrandedBytes { .. } => "stranded-bytes",
            ExecEventKind::OutOfMemory { .. } => "out-of-memory",
        }
    }

    /// Whether the event is ground truth for a vulnerability (as opposed
    /// to a resource condition like OOM, which the analyzer does not
    /// claim to flag).
    pub fn is_vulnerability(&self) -> bool {
        !matches!(self, ExecEventKind::OutOfMemory { .. })
    }
}

/// One ground-truth event, attributed to the statement that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecEvent {
    /// The statement site (canary smashes are attributed to the last
    /// overflowing write of the smashed frame).
    pub site: Site,
    /// What happened.
    pub kind: ExecEventKind,
}

/// Everything one [`Executor::run`] observed.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Program name.
    pub program: String,
    /// Ground-truth events, deduplicated per `(site, kind-label)`.
    pub events: Vec<ExecEvent>,
    /// Statements the lowering cannot model, with a short reason.
    pub skipped: Vec<(Site, &'static str)>,
    /// Statements interpreted (loop iterations counted individually).
    pub executed: u64,
    /// Whether any loop hit the iteration cap.
    pub loop_capped: bool,
}

/// The concrete interpreter. Each [`run`](Executor::run) lowers the
/// program onto fresh machines (one per entry function, so entries
/// cannot contaminate each other) and returns the union of observations.
#[derive(Debug, Clone)]
pub struct Executor {
    /// Loop iteration cap — overflows that rewrite a loop counter would
    /// otherwise spin forever.
    max_loop_iters: u32,
    /// Call depth cap, mirroring the analyzer's inline depth.
    max_call_depth: u32,
    /// Concrete value bound to tainted integer parameters: large enough
    /// to overflow any corpus arena, small enough to execute instantly.
    hostile_int: i64,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// An executor with the default caps (64 loop iterations, call depth
    /// 8, hostile parameter value 1536).
    pub fn new() -> Self {
        Executor { max_loop_iters: 64, max_call_depth: 8, hostile_int: 1536 }
    }

    /// Overrides the tainted-parameter value.
    #[must_use]
    pub fn with_hostile_int(mut self, value: i64) -> Self {
        self.hostile_int = value;
        self
    }

    /// Executes every function of `program` as an entry point against
    /// the attacker input script `inputs`, and returns the union of
    /// ground-truth observations.
    pub fn run(&self, program: &Program, inputs: &[i64]) -> ExecOutcome {
        let mut out = ExecOutcome { program: program.name.clone(), ..ExecOutcome::default() };
        for fi in 0..program.functions.len() {
            let mut interp = Interp::new(self, program, inputs);
            interp.run_entry(fi);
            out.executed += interp.executed;
            out.loop_capped |= interp.loop_capped;
            for ev in interp.events {
                if !out
                    .events
                    .iter()
                    .any(|e| same_site(&e.site, &ev.site) && e.kind.label() == ev.kind.label())
                {
                    out.events.push(ev);
                }
            }
            for (site, why) in interp.skipped {
                if !out.skipped.iter().any(|(s, w)| same_site(s, &site) && *w == why) {
                    out.skipped.push((site, why));
                }
            }
        }
        out
    }
}

/// Site identity as the analyzer uses it: `(function, ordinal)`.
fn same_site(a: &Site, b: &Site) -> bool {
    a.line == b.line && a.function == b.function
}

/// Per-entry interpreter state: one machine, plus the address/extent
/// table the oracle checks logical writes against.
struct Interp<'p> {
    exec: &'p Executor,
    program: &'p Program,
    machine: Machine,
    /// Current storage address per `VarId` (locals appear while their
    /// frame is live).
    var_addr: Vec<Option<VirtAddr>>,
    /// Declared extent per `VarId` — the bound the paper's programmer
    /// believes in, which is what an overflow is measured against.
    var_declared: Vec<u64>,
    /// Storage actually reserved per `VarId` (scalars get a full word).
    var_lowered: Vec<u64>,
    /// Region bases that have hosted at least one placement — `output`
    /// only counts residue from arenas used as arenas (§4.3).
    tenanted: Vec<VirtAddr>,
    events: Vec<ExecEvent>,
    skipped: Vec<(Site, &'static str)>,
    executed: u64,
    loop_capped: bool,
    last_overflow: Option<Site>,
}

impl<'p> Interp<'p> {
    fn new(exec: &'p Executor, program: &'p Program, inputs: &[i64]) -> Self {
        let mut machine = MachineBuilder::new().seed(0x0c1e_a112).build(ClassRegistry::new());
        machine.input_mut().extend(inputs.iter().copied());

        let nvars = program.vars.len();
        let mut var_addr = vec![None; nvars];
        let mut var_declared = vec![0u64; nvars];
        let mut var_lowered = vec![0u64; nvars];
        for info in &program.vars {
            let vi = info.id.index() as usize;
            let (declared, lowered, align) = size_of_ty(&info.ty, program);
            var_declared[vi] = declared;
            var_lowered[vi] = lowered;
            if matches!(info.scope, Scope::Global) {
                let decl = VarDecl::Buffer { size: lowered as u32, align };
                // A full data segment degrades to an unlowered variable,
                // not a failure: reads see 0, writes go nowhere.
                var_addr[vi] =
                    machine.define_global(&var_name(info.id), decl, SegmentKind::Data).ok();
            }
        }
        // Attacker-controlled buffer that tainted pointer parameters aim
        // at: unterminated attack bytes.
        if let Ok(addr) = machine.define_global(
            "__attack",
            VarDecl::Buffer { size: 1024, align: 4 },
            SegmentKind::Data,
        ) {
            let _ = machine.space_mut().fill(addr, ATTACK_BYTE, 1024);
        }

        Interp {
            exec,
            program,
            machine,
            var_addr,
            var_declared,
            var_lowered,
            tenanted: Vec::new(),
            events: Vec::new(),
            skipped: Vec::new(),
            executed: 0,
            loop_capped: false,
            last_overflow: None,
        }
    }

    /// Runs function `fi` as an entry point: tainted parameters carry
    /// attacker values, untainted ones carry benign zeros (they belong
    /// to a trusted caller — giving them hostile values would "observe"
    /// overflows the analyzer rightly never flags).
    fn run_entry(&mut self, fi: usize) {
        let function = &self.program.functions[fi];
        let args: Vec<i64> = function
            .vars
            .iter()
            .filter_map(|&v| match self.program.var(v).scope {
                Scope::Param { tainted } => Some(if tainted {
                    match self.program.var(v).ty {
                        Ty::Ptr => i64::from(
                            self.machine.global("__attack").unwrap_or(VirtAddr::NULL).value(),
                        ),
                        _ => self.exec.hostile_int,
                    }
                } else {
                    0
                }),
                _ => None,
            })
            .collect();
        self.run_function(fi, &args, 0);
    }

    /// Pushes a frame for function `fi`, binds `args` to its parameters,
    /// interprets the body, and returns through the canary check.
    fn run_function(&mut self, fi: usize, args: &[i64], depth: u32) {
        let function = &self.program.functions[fi];
        let fname = function.name.clone();

        let names: Vec<String> = function.vars.iter().map(|&v| var_name(v)).collect();
        let decls: Vec<(&str, VarDecl)> = function
            .vars
            .iter()
            .zip(&names)
            .map(|(&v, name)| {
                let vi = v.index() as usize;
                (name.as_str(), VarDecl::Buffer { size: self.var_lowered[vi] as u32, align: 4 })
            })
            .collect();
        if self.machine.push_frame(&fname, &decls).is_err() {
            // Stack exhausted (deep recursion): treat like the depth cap.
            return;
        }

        // Map this frame's variables, saving whatever they mapped to
        // before (recursion), and zero their storage: pnx locals are
        // "uninitialized", which the oracle models as all-zeroes so runs
        // are deterministic.
        let saved: Vec<(usize, Option<VirtAddr>)> = function
            .vars
            .iter()
            .zip(&names)
            .map(|(&v, name)| {
                let vi = v.index() as usize;
                let old = self.var_addr[vi];
                let addr = self.machine.local_addr(name).ok();
                if let Some(a) = addr {
                    let _ = self.machine.space_mut().fill(a, 0, self.var_lowered[vi] as u32);
                }
                self.var_addr[vi] = addr;
                (vi, old)
            })
            .collect();

        let mut params = function
            .vars
            .iter()
            .filter(|&&v| matches!(self.program.var(v).scope, Scope::Param { .. }))
            .copied()
            .collect::<Vec<_>>()
            .into_iter();
        for &arg in args {
            match params.next() {
                Some(v) => self.write_scalar(v, arg),
                None => break,
            }
        }

        self.walk(&function.body, depth);

        if let Ok(event) = self.machine.ret() {
            let smashed = event.canary_intact == Some(false)
                || matches!(event.outcome, ControlOutcome::CanaryDetected { .. });
            if smashed {
                if let Some(site) = self.last_overflow.clone() {
                    self.push_event(site, ExecEventKind::CanarySmash);
                }
            }
        }
        for (vi, old) in saved {
            self.var_addr[vi] = old;
        }
    }

    /// Interprets a statement list; `false` means a `return` unwound it.
    fn walk(&mut self, body: &[Stmt], depth: u32) -> bool {
        for stmt in body {
            if !self.step(stmt, depth) {
                return false;
            }
        }
        true
    }

    fn step(&mut self, stmt: &Stmt, depth: u32) -> bool {
        self.executed += 1;
        match stmt {
            Stmt::Assign { dst, src, .. } => {
                let value = self.eval(src);
                self.write_scalar(*dst, value);
            }
            Stmt::ReadInput { dst, .. } => {
                let value = self.machine.cin_int().unwrap_or(0);
                self.write_scalar(*dst, value);
            }
            Stmt::RecvObject { site, dst, class } => {
                let size = self.program.sizeof(class).unwrap_or(16);
                match self.machine.heap_alloc(size as u32) {
                    Ok(addr) => {
                        let _ = self.machine.space_mut().fill(addr, ATTACK_BYTE, size as u32);
                        self.write_scalar(*dst, i64::from(addr.value()));
                    }
                    Err(_) => {
                        self.push_event(
                            site.clone(),
                            ExecEventKind::OutOfMemory { requested: size },
                        );
                        self.write_scalar(*dst, 0);
                    }
                }
            }
            Stmt::HeapNew { site, dst, class, count } => {
                let size = match (class, count) {
                    (Some(c), _) => self.program.sizeof(c).unwrap_or(16),
                    (None, Some(n)) => self.eval(n).clamp(0, 1 << 20) as u64,
                    (None, None) => 16,
                };
                match self.machine.heap_alloc(size.max(1) as u32) {
                    Ok(addr) => self.write_scalar(*dst, i64::from(addr.value())),
                    Err(_) => {
                        self.push_event(
                            site.clone(),
                            ExecEventKind::OutOfMemory { requested: size },
                        );
                        self.write_scalar(*dst, 0);
                    }
                }
            }
            Stmt::PlacementNew { site, dst, arena, class, .. } => {
                let addr = self.eval_addr(arena);
                let placed = self.program.sizeof(class).unwrap_or(8);
                // Object placement runs a constructor: the placed bytes
                // are written (with attacker-ish content), which is what
                // clobbers neighbours and canaries concretely.
                let concrete = self.record_write(site, addr, placed);
                if concrete > 0 {
                    let _ = self.machine.space_mut().fill(addr, ATTACK_BYTE, concrete);
                }
                self.mark_tenanted(addr);
                self.write_scalar(*dst, i64::from(addr.value()));
            }
            Stmt::PlacementNewArray { site, dst, arena, elem_size, count } => {
                let addr = self.eval_addr(arena);
                let n = self.eval(count).max(0) as u64;
                let total = n.saturating_mul(u64::from(*elem_size));
                // Array placement allocates without initializing (§4.3):
                // the extent is claimed — and checked — but no bytes are
                // written, so prior residue survives for `output`.
                self.record_write(site, addr, total);
                self.mark_tenanted(addr);
                self.write_scalar(*dst, i64::from(addr.value()));
            }
            Stmt::Strncpy { site, dst, len, .. } => {
                let addr = self.var_target(*dst);
                let logical = self.eval(len).max(0) as u64;
                let concrete = self.record_write(site, addr, logical);
                if concrete > 0 {
                    // Attacker-shaped source: unterminated, so strncpy
                    // copies the full n bytes (its zero-fill never kicks
                    // in), the §4 worst case.
                    let src = vec![ATTACK_BYTE; concrete as usize];
                    let _ = self.machine.strncpy(addr, &src, concrete);
                }
            }
            Stmt::Memset { site, dst, len } => {
                let addr = self.var_target(*dst);
                let logical = self.eval(len).max(0) as u64;
                let concrete = self.record_write(site, addr, logical);
                if concrete > 0 {
                    let _ = self.machine.memset(addr, 0, concrete);
                }
            }
            Stmt::ReadSecret { dst, .. } => {
                let addr = self.var_target(*dst);
                if let Some((base, size)) = self.region_of(addr) {
                    let _ = self.machine.space_mut().fill(base, SECRET_BYTE, size as u32);
                }
            }
            Stmt::Output { site, src } => {
                let addr = self.var_target(*src);
                if let Some((base, size)) = self.region_of(addr) {
                    if self.tenanted.contains(&base) {
                        let from = u64::from(addr.value()) - u64::from(base.value());
                        let window = size.saturating_sub(from) as u32;
                        if let Ok(bytes) = self.machine.space().read_vec(addr, window) {
                            let leaked = bytes.iter().filter(|&&b| b == SECRET_BYTE).count() as u64;
                            if leaked > 0 {
                                self.push_event(
                                    site.clone(),
                                    ExecEventKind::SecretLeak { bytes: leaked },
                                );
                            }
                        }
                    }
                }
                self.machine.print(format!("output @{addr}"));
            }
            Stmt::Delete { site, ptr, as_class } => {
                let p = VirtAddr::new(self.read_scalar(*ptr) as u32);
                if let Some((start, _)) = self.machine.known_heap_block(p) {
                    let before = self.machine.heap_stats().leaked_bytes;
                    let released = as_class.as_ref().and_then(|c| self.program.sizeof(c));
                    let result = match released {
                        Some(size) => self.machine.heap_free_sized(start, size as u32),
                        None => self.machine.heap_free(start),
                    };
                    let stranded = self.machine.heap_stats().leaked_bytes - before;
                    if result.is_ok() && stranded > 0 {
                        self.push_event(
                            site.clone(),
                            ExecEventKind::StrandedBytes { bytes: stranded },
                        );
                    }
                }
            }
            Stmt::NullAssign { site, ptr } => {
                let p = VirtAddr::new(self.read_scalar(*ptr) as u32);
                if let Some((start, len)) = self.machine.known_heap_block(p) {
                    if !self.other_pointer_into(*ptr, start, len) {
                        self.push_event(
                            site.clone(),
                            ExecEventKind::StrandedBytes { bytes: u64::from(len) },
                        );
                    }
                }
                self.write_scalar(*ptr, 0);
            }
            Stmt::FieldStore { site, .. } => {
                // Field offsets live in the object model, not the IR —
                // lowering them would be a guess, so the store is skipped.
                self.skipped.push((site.clone(), "field-store"));
            }
            Stmt::VirtualCall { site, .. } => {
                self.skipped.push((site.clone(), "virtual-call"));
            }
            Stmt::CallPtr { site, .. } => {
                self.skipped.push((site.clone(), "call-ptr"));
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                let taken = if self.eval_cond(cond) { then_body } else { else_body };
                return self.walk(taken, depth);
            }
            Stmt::While { cond, body, .. } => {
                let mut iters = 0;
                while self.eval_cond(cond) {
                    if iters >= self.exec.max_loop_iters {
                        // An overflow may have rewritten the loop counter
                        // (that is rather the point); cap and move on.
                        self.loop_capped = true;
                        break;
                    }
                    iters += 1;
                    if !self.walk(body, depth) {
                        return false;
                    }
                }
            }
            Stmt::Return { .. } => return false,
            Stmt::Call { site, func, args } => {
                if depth >= self.exec.max_call_depth {
                    self.skipped.push((site.clone(), "call-depth"));
                } else if let Some(fi) = self.program.functions.iter().position(|f| &f.name == func)
                {
                    let values: Vec<i64> = args.iter().map(|a| self.eval(a)).collect();
                    self.run_function(fi, &values, depth + 1);
                } else {
                    self.skipped.push((site.clone(), "unknown-callee"));
                }
            }
        }
        true
    }

    // ----- value plumbing ---------------------------------------------------

    fn push_event(&mut self, site: Site, kind: ExecEventKind) {
        self.events.push(ExecEvent { site, kind });
    }

    /// Registers the region containing `addr` as having hosted a
    /// placement (a prerequisite for residue leaks).
    fn mark_tenanted(&mut self, addr: VirtAddr) {
        if let Some((base, _)) = self.region_of(addr) {
            if !self.tenanted.contains(&base) {
                self.tenanted.push(base);
            }
        }
    }

    /// Bounds-checks a logical write of `len` bytes at `dst` against the
    /// owning region (recording an [`ExecEventKind::OverflowWrite`] on
    /// excess) and returns how many bytes to write concretely: clamped
    /// to the containing segment and [`MAX_CONCRETE_WRITE`].
    fn record_write(&mut self, site: &Site, dst: VirtAddr, len: u64) -> u32 {
        if dst.is_null() || len == 0 {
            return 0;
        }
        if let Some((base, size)) = self.region_of(dst) {
            let remaining = (u64::from(base.value()) + size).saturating_sub(u64::from(dst.value()));
            if len > remaining {
                self.push_event(
                    site.clone(),
                    ExecEventKind::OverflowWrite {
                        region_size: size,
                        write_len: len,
                        excess: len - remaining,
                    },
                );
                self.last_overflow = Some(site.clone());
            }
        }
        let Some(segment) = self.machine.space().segment_containing(dst) else {
            return 0;
        };
        let slack = u64::from(segment.end().value()).saturating_sub(u64::from(dst.value()));
        len.min(slack).min(MAX_CONCRETE_WRITE) as u32
    }

    /// The region `(base, declared_size)` containing `addr`: a declared
    /// variable's extent, a live heap block, or a defined global (in
    /// that order — declared extents are the bounds the program text
    /// promises, which is what overflows are measured against).
    fn region_of(&self, addr: VirtAddr) -> Option<(VirtAddr, u64)> {
        if addr.is_null() {
            return None;
        }
        let a = u64::from(addr.value());
        for info in &self.program.vars {
            let vi = info.id.index() as usize;
            if let Some(base) = self.var_addr[vi] {
                let b = u64::from(base.value());
                if a >= b && a < b + self.var_declared[vi].max(1) {
                    return Some((base, self.var_declared[vi].max(1)));
                }
            }
        }
        if let Some((start, len)) = self.machine.known_heap_block(addr) {
            return Some((start, u64::from(len)));
        }
        if let Some((start, len)) = self.machine.known_global_region(addr) {
            return Some((start, u64::from(len)));
        }
        None
    }

    /// Whether any *other* live pointer variable still aims into
    /// `[start, start+len)` — if not, nulling `except` orphans the block.
    fn other_pointer_into(&self, except: VarId, start: VirtAddr, len: u32) -> bool {
        let lo = u64::from(start.value());
        let hi = lo + u64::from(len);
        self.program.vars.iter().any(|info| {
            info.id != except
                && matches!(info.ty, Ty::Ptr)
                && self.var_addr[info.id.index() as usize].is_some()
                && {
                    let v = self.read_scalar(info.id) as u32;
                    u64::from(v) >= lo && u64::from(v) < hi
                }
        })
    }

    /// Where a variable *points as a write target*: pointers dereference,
    /// arrays/classes/scalars decay to their own storage.
    fn var_target(&self, v: VarId) -> VirtAddr {
        if matches!(self.program.var(v).ty, Ty::Ptr) {
            VirtAddr::new(self.read_scalar(v) as u32)
        } else {
            self.var_addr[v.index() as usize].unwrap_or(VirtAddr::NULL)
        }
    }

    fn read_scalar(&self, v: VarId) -> i64 {
        let Some(addr) = self.var_addr[v.index() as usize] else {
            return 0;
        };
        match self.program.var(v).ty {
            Ty::Ptr => self.machine.space().read_u32(addr).map(i64::from).unwrap_or(0),
            _ => self.machine.space().read_i32(addr).map(i64::from).unwrap_or(0),
        }
    }

    fn write_scalar(&mut self, v: VarId, value: i64) {
        let Some(addr) = self.var_addr[v.index() as usize] else {
            return;
        };
        let _ = match self.program.var(v).ty {
            Ty::Ptr => self.machine.space_mut().write_u32(addr, value as u32),
            _ => self.machine.space_mut().write_i32(addr, value as i32),
        };
    }

    fn eval(&self, expr: &Expr) -> i64 {
        match expr {
            Expr::Const(c) => *c,
            Expr::Var(v) => match self.program.var(*v).ty {
                Ty::Int | Ty::Char | Ty::Double | Ty::Ptr => self.read_scalar(*v),
                // Arrays and class objects decay to their address.
                _ => i64::from(self.var_addr[v.index() as usize].unwrap_or(VirtAddr::NULL).value()),
            },
            Expr::SizeOf(class) => self.program.sizeof(class).unwrap_or(0) as i64,
            Expr::BinOp(op, a, b) => {
                let (a, b) = (self.eval(a), self.eval(b));
                match op {
                    Op::Add => a.wrapping_add(b),
                    Op::Sub => a.wrapping_sub(b),
                    Op::Mul => a.wrapping_mul(b),
                }
            }
            Expr::AddrOf(v) => {
                i64::from(self.var_addr[v.index() as usize].unwrap_or(VirtAddr::NULL).value())
            }
            Expr::Field(v, _) => {
                // The IR has no field layouts; read the object's first
                // word, which is enough for the corpus shapes.
                let addr = self.var_target(*v);
                self.machine.space().read_i32(addr).map(i64::from).unwrap_or(0)
            }
        }
    }

    /// Evaluates an expression as an address (the arena operand of a
    /// placement).
    fn eval_addr(&self, expr: &Expr) -> VirtAddr {
        match expr {
            Expr::AddrOf(v) => self.var_addr[v.index() as usize].unwrap_or(VirtAddr::NULL),
            Expr::Var(v) => self.var_target(*v),
            other => VirtAddr::new(self.eval(other) as u32),
        }
    }

    fn eval_cond(&self, cond: &Cond) -> bool {
        let (l, r) = (self.eval(&cond.lhs), self.eval(&cond.rhs));
        match cond.op {
            crate::ir::CmpOp::Lt => l < r,
            crate::ir::CmpOp::Le => l <= r,
            crate::ir::CmpOp::Gt => l > r,
            crate::ir::CmpOp::Ge => l >= r,
            crate::ir::CmpOp::Eq => l == r,
            crate::ir::CmpOp::Ne => l != r,
        }
    }
}

fn var_name(v: VarId) -> String {
    format!("v{}", v.index())
}

/// `(declared, lowered, align)` sizes for a variable of type `ty`:
/// `declared` is the extent the oracle bounds-checks against, `lowered`
/// the storage actually reserved (scalars get a full word so they can be
/// read and written as machine integers).
fn size_of_ty(ty: &Ty, program: &Program) -> (u64, u64, u32) {
    let declared = ty.declared_size(&program.classes);
    match ty {
        Ty::Int | Ty::Ptr => (4, 4, 4),
        Ty::Char => (1, 4, 4),
        Ty::Double => (8, 8, 4),
        Ty::CharArray(Some(n)) => (u64::from(*n), u64::from(*n).max(1), 4),
        Ty::CharArray(None) => (UNSIZED_ARRAY_BYTES, UNSIZED_ARRAY_BYTES, 4),
        Ty::Class(_) => {
            let size = declared.unwrap_or(16).max(1);
            (size, size, 4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::CmpOp;

    fn students(p: &mut ProgramBuilder) {
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
    }

    fn overflow_sites(out: &ExecOutcome) -> Vec<u32> {
        out.events
            .iter()
            .filter(|e| matches!(e.kind, ExecEventKind::OverflowWrite { .. }))
            .map(|e| e.site.line)
            .collect()
    }

    #[test]
    fn oversized_placement_overflows_concretely() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        assert_eq!(overflow_sites(&out), vec![1]);
        let ev = &out.events[0];
        assert_eq!(
            ev.kind,
            ExecEventKind::OverflowWrite { region_size: 16, write_len: 32, excess: 16 }
        );
    }

    #[test]
    fn fitting_placement_is_quiet() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "Student");
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        assert!(out.events.is_empty(), "{:?}", out.events);
    }

    #[test]
    fn guarded_count_is_quiet_under_hostile_input() {
        // The benign-guarded-count shape: hostile input takes the early
        // return, benign input fits.
        let mut p = ProgramBuilder::new("t");
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut f = p.function("f");
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(8));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.finish();
        let program = p.build();
        for hostile in [1000, 8, 0, -3] {
            let out = Executor::new().run(&program, &[hostile]);
            assert!(out.events.is_empty(), "input {hostile}: {:?}", out.events);
        }
    }

    #[test]
    fn unguarded_count_overflows_under_hostile_input() {
        let mut p = ProgramBuilder::new("t");
        let pool = p.global("pool", Ty::CharArray(Some(64)));
        let mut f = p.function("main");
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
        f.finish();
        let program = p.build();
        assert!(Executor::new().run(&program, &[3]).events.is_empty());
        assert_eq!(overflow_sites(&Executor::new().run(&program, &[512])), vec![2]);
    }

    #[test]
    fn oversized_stack_placement_smashes_the_canary() {
        // 512 attack bytes over an 8-byte local arena reach the frame's
        // canary; ret() notices.
        let mut p = ProgramBuilder::new("t");
        p.class("Big", 512, None, false);
        let mut f = p.function("main");
        let pool = f.local("pool", Ty::CharArray(Some(8)));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(pool), "Big");
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        assert!(
            out.events.iter().any(|e| e.kind == ExecEventKind::CanarySmash),
            "{:?}",
            out.events
        );
    }

    #[test]
    fn uninitialized_array_placement_leaks_secret_residue() {
        // Listing 21: the array tenant never initializes its bytes, so
        // the secret previously read into the arena ships with it.
        let mut p = ProgramBuilder::new("t");
        let pool = p.global("pool", Ty::CharArray(Some(192)));
        let mut f = p.function("main");
        let user = f.local("user", Ty::Ptr);
        f.read_secret(pool);
        f.placement_new_array(user, Expr::addr_of(pool), 1, Expr::Const(192));
        f.output(user);
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        assert!(
            out.events.iter().any(|e| matches!(e.kind, ExecEventKind::SecretLeak { bytes: 192 })),
            "{:?}",
            out.events
        );
    }

    #[test]
    fn sanitized_reuse_does_not_leak() {
        let mut p = ProgramBuilder::new("t");
        let pool = p.global("pool", Ty::CharArray(Some(128)));
        let mut f = p.function("main");
        let user = f.local("user", Ty::Ptr);
        f.read_secret(pool);
        f.memset(pool, Expr::Const(128));
        f.placement_new_array(user, Expr::addr_of(pool), 1, Expr::Const(1));
        f.output(user);
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        assert!(out.events.is_empty(), "{:?}", out.events);
    }

    #[test]
    fn sized_release_through_smaller_type_strands_bytes() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Ptr);
        let st = f.local("st", Ty::Ptr);
        f.heap_new(stud, "GradStudent");
        f.placement_new(st, Expr::Var(stud), "Student");
        f.delete(st, Some("Student"));
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        assert!(
            out.events
                .iter()
                .any(|e| matches!(e.kind, ExecEventKind::StrandedBytes { bytes } if bytes > 0)),
            "{:?}",
            out.events
        );
    }

    #[test]
    fn nulling_the_last_pointer_orphans_the_block() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Ptr);
        f.heap_new(stud, "GradStudent");
        f.null_assign(stud);
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        assert!(
            out.events.iter().any(|e| matches!(e.kind, ExecEventKind::StrandedBytes { .. })),
            "{:?}",
            out.events
        );
    }

    #[test]
    fn two_step_attack_is_concretely_observable() {
        // Listing 19: the oversized object placement rewrites the
        // adjacent, already-checked variables; re-reading them afterwards
        // yields attacker values. Here the clobbered victim is the
        // pointer the next placement goes through.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        // The overflow event is the ground truth; the clobber is visible
        // in that `st` (declared right after `stud`) was itself filled
        // with attack bytes before the placement result overwrote it.
        assert_eq!(overflow_sites(&out), vec![1]);
    }

    #[test]
    fn runaway_loops_are_capped() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main");
        let i = f.local("i", Ty::Int);
        f.assign(i, Expr::Const(0));
        f.while_start(Expr::Var(i), CmpOp::Ge, Expr::Const(0));
        f.assign(i, Expr::Const(1));
        f.end_while();
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        assert!(out.loop_capped);
    }

    #[test]
    fn skipped_statements_are_reported_not_faulted() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "Student");
        f.field_store(st, "gpa", Expr::Const(4));
        f.virtual_call(st, "print");
        f.finish();
        let out = Executor::new().run(&p.build(), &[]);
        let reasons: Vec<&str> = out.skipped.iter().map(|(_, r)| *r).collect();
        assert_eq!(reasons, vec!["field-store", "virtual-call"]);
    }

    #[test]
    fn execution_is_deterministic() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let program = p.build();
        let a = Executor::new().run(&program, &[7, 8]);
        let b = Executor::new().run(&program, &[7, 8]);
        assert_eq!(a.events, b.events);
        assert_eq!(a.executed, b.executed);
    }
}
