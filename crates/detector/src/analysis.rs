//! The placement-new vulnerability analyzer.
//!
//! A forward abstract interpretation over the IR, combining:
//!
//! * **value-range analysis** — every integer variable carries an
//!   interval from the lattice `⊥ ⊑ Const(c) ⊑ Interval[lo, hi] ⊑ ⊤`,
//!   so buffer sizes like `n_students * (UNAME_SIZE+1)` evaluate
//!   exactly, guards like `if (n > 8) return;` (in either operand
//!   order and either polarity) narrow the surviving path, and
//!   `Add`/`Sub`/`Mul` transfer through full interval arithmetic. The
//!   interval both *suppresses* guarded sites whose worst case provably
//!   fits the arena and *grades* real findings with a concrete
//!   worst-case overflow width;
//! * **region inference** — every pointer is tracked to the storage it
//!   aliases (a declared variable or a heap allocation), giving the arena
//!   size at each placement site where one is statically knowable. Where
//!   it is not (bare address arithmetic, lost aliases), the analyzer says
//!   so honestly — §5.1's observation that "static analysis of programs
//!   may not always succeed in precisely determining the size of the
//!   buffer" is part of the design, reported as
//!   [`FindingKind::UnknownBoundsPlacement`];
//! * **taint tracking** — sources are `cin`, received/serialized objects
//!   and tainted parameters; placement counts, copy lengths and
//!   constructor arguments are checked for influence (§3.2, §4);
//! * **arena lifecycle state** — secrets read into regions, tenant sizes,
//!   sanitization, and release discipline, powering the information-leak
//!   (§4.3) and memory-leak (§4.5) checks.
//!
//! Branches are analyzed on cloned states and merged conservatively
//! (value intervals join, taint unions, region knowledge degrades to
//! unknown on disagreement); loop bodies are re-analyzed to a bounded
//! fixpoint with the loop test refining each pass's entry state — so a
//! guard-bounded trip count keeps its bound instead of widening to ⊤ —
//! and facts established late in one iteration (a pointer re-aimed at a
//! smaller arena, taint picked up on the way out) are seen by the
//! placements and copies of the next iteration. Interval endpoints
//! still moving after [`WIDEN_AFTER`] passes are widened to ∓∞ so the
//! fixpoint always terminates.

use std::collections::HashMap;
use std::rc::Rc;

use crate::findings::{Finding, FindingKind, Report, Severity};
use crate::ir::{Expr, Op, Program, Scope, Site, Stmt, Symbol, SymbolTable, Ty, VarId};
use crate::summary::{
    region_sort_key, CallGraph, CallSummary, FunctionSummaryRecord, Memo, SummaryKey,
};
use crate::trace::TraceCollector;

/// Precomputed per-program lookup tables.
///
/// Built once per [`Analyzer::analyze`] call, this is the constant-factor
/// engine room of the hot path: class names are interned to [`Symbol`]s
/// so region states copy a `u32` instead of cloning a `String`,
/// per-variable facts (pointer-ness, declared storage size, class) become
/// dense vector lookups, and callee resolution becomes a hash lookup
/// instead of a linear scan over `program.functions`.
struct Index<'p> {
    program: &'p Program,
    /// Interned class names: the program's declared classes plus any
    /// class named by a variable type or heap allocation.
    symbols: SymbolTable,
    /// Whether any class in the program is polymorphic.
    any_polymorphic: bool,
    /// `matches!(ty, Ty::Ptr)`, indexed by `VarId`.
    var_is_ptr: Vec<bool>,
    /// `matches!(scope, Scope::Global)`, indexed by `VarId`.
    var_is_global: Vec<bool>,
    /// Declared storage size, indexed by `VarId`.
    var_storage_size: Vec<Option<u64>>,
    /// Class symbol for `Ty::Class` variables, indexed by `VarId`.
    var_class: Vec<Option<Symbol>>,
    /// Function name → index into `program.functions` (first wins, like
    /// the linear scan it replaces).
    fn_by_name: HashMap<&'p str, usize>,
    /// Per-function variable-membership bitmap, indexed by `VarId`.
    fn_member: Vec<Vec<bool>>,
    /// Per-function parameter lists, in declaration order.
    fn_params: Vec<Vec<VarId>>,
}

impl<'p> Index<'p> {
    fn build(program: &'p Program) -> Self {
        let mut symbols = SymbolTable::new();
        // Intern in sorted order: `classes` is a HashMap, and symbol
        // numbering must not depend on its iteration order.
        let mut class_names: Vec<&str> = program.classes.keys().map(String::as_str).collect();
        class_names.sort_unstable();
        for name in class_names {
            symbols.intern(name);
        }
        for f in &program.functions {
            intern_heap_classes(&f.body, &mut symbols);
        }
        let nvars = program.vars.len();
        let mut var_is_ptr = vec![false; nvars];
        let mut var_is_global = vec![false; nvars];
        let mut var_storage_size = vec![None; nvars];
        let mut var_class = vec![None; nvars];
        for var in &program.vars {
            let i = var.id.index() as usize;
            var_is_ptr[i] = matches!(var.ty, Ty::Ptr);
            var_is_global[i] = matches!(var.scope, Scope::Global);
            var_storage_size[i] = var.ty.declared_size(&program.classes);
            if let Ty::Class(name) = &var.ty {
                var_class[i] = Some(symbols.intern(name));
            }
        }
        let mut fn_by_name = HashMap::with_capacity(program.functions.len());
        let mut fn_member = Vec::with_capacity(program.functions.len());
        let mut fn_params = Vec::with_capacity(program.functions.len());
        for (i, f) in program.functions.iter().enumerate() {
            fn_by_name.entry(f.name.as_str()).or_insert(i);
            let mut member = vec![false; nvars];
            for v in &f.vars {
                member[v.index() as usize] = true;
            }
            fn_member.push(member);
            fn_params.push(
                f.vars
                    .iter()
                    .copied()
                    .filter(|&v| matches!(program.var(v).scope, Scope::Param { .. }))
                    .collect(),
            );
        }
        Index {
            any_polymorphic: program.classes.values().any(|c| c.polymorphic),
            program,
            symbols,
            var_is_ptr,
            var_is_global,
            var_storage_size,
            var_class,
            fn_by_name,
            fn_member,
            fn_params,
        }
    }

    fn sizeof(&self, class: &str) -> Option<u64> {
        self.program.sizeof(class)
    }

    fn name(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }
}

/// Interns every class name a `HeapNew` can stamp on a region, so
/// [`RegionState::alloc_class`] can be a [`Symbol`] even for classes the
/// program never declares.
fn intern_heap_classes(body: &[Stmt], symbols: &mut SymbolTable) {
    for stmt in body {
        match stmt {
            Stmt::HeapNew { class: Some(c), .. } => {
                symbols.intern(c);
            }
            Stmt::If { then_body, else_body, .. } => {
                intern_heap_classes(then_body, symbols);
                intern_heap_classes(else_body, symbols);
            }
            Stmt::While { body, .. } => intern_heap_classes(body, symbols),
            _ => {}
        }
    }
}

/// Where a pointer may point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum RegionId {
    /// The storage of a declared variable.
    Var(VarId),
    /// A heap allocation, identified by its allocation-site ordinal.
    Heap(u32),
}

/// Lifecycle state of a region. `Copy`: everything a region knows is a
/// scalar or an interned/borrowed handle, so branch clones are memcpys.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct RegionState<'p> {
    /// Allocation size, if known (heap regions).
    pub(crate) alloc_size: Option<u64>,
    /// Class the heap block was allocated for.
    pub(crate) alloc_class: Option<Symbol>,
    /// Size of the last tenant placed (declared size for var regions).
    pub(crate) last_tenant_size: Option<u64>,
    /// Secret bytes were read into the region.
    pub(crate) has_secret: bool,
    /// A reuse left residue (smaller tenant or unsanitized secret);
    /// the site of the offending placement, borrowed from the program.
    pub(crate) residue_at: Option<&'p Site>,
    /// The heap block was released.
    pub(crate) freed: bool,
    /// The region is a pool buffer whose placement count was tainted.
    pub(crate) tainted_pool: bool,
}

/// A signed value interval `[lo, hi]`, the per-variable fact of the
/// value lattice `⊥ ⊑ Const(c) ⊑ Interval[lo, hi] ⊑ ⊤`.
///
/// `i64::MIN`/`i64::MAX` endpoints read as ∓∞, so [`Interval::TOP`] is
/// the whole number line and a degenerate interval (`lo == hi`) is the
/// constant layer. ⊥ (the unreachable state) is never materialized:
/// the walk only carries states for paths it actually explores, so
/// every interval it holds is non-empty (`lo ≤ hi`) — an infeasible
/// refinement simply keeps the old fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Interval {
    pub(crate) lo: i64,
    pub(crate) hi: i64,
}

impl Interval {
    /// ⊤: no knowledge, the full i64 line.
    pub(crate) const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    /// The constant layer: a degenerate interval.
    pub(crate) fn exact(c: i64) -> Interval {
        Interval { lo: c, hi: c }
    }

    /// `Some(c)` when this interval is the constant `c`.
    pub(crate) fn as_const(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// The finite upper bound, if one exists (`hi == i64::MAX` is +∞).
    pub(crate) fn upper(self) -> Option<i64> {
        (self.hi != i64::MAX).then_some(self.hi)
    }

    /// `[lo, +∞]`.
    fn at_least(lo: i64) -> Interval {
        Interval { lo, hi: i64::MAX }
    }

    /// `[-∞, hi]`.
    fn at_most(hi: i64) -> Interval {
        Interval { lo: i64::MIN, hi }
    }

    /// Join (least upper bound): the enclosing interval.
    fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Meet (intersection); `None` when the two are disjoint (the
    /// refining branch is infeasible).
    fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Interval arithmetic, exact in i128 and clamped back onto the
    /// i64 line — a clamped endpoint reads as ±∞, which is sound,
    /// merely weaker. A result lying entirely outside i64 degrades to
    /// [`Interval::TOP`] (the executor's arithmetic wraps there, so no
    /// interval claim survives).
    fn arith(op: Op, a: Interval, b: Interval) -> Interval {
        let (alo, ahi) = (i128::from(a.lo), i128::from(a.hi));
        let (blo, bhi) = (i128::from(b.lo), i128::from(b.hi));
        let (lo, hi) = match op {
            Op::Add => (alo + blo, ahi + bhi),
            Op::Sub => (alo - bhi, ahi - blo),
            Op::Mul => {
                let p = [alo * blo, alo * bhi, ahi * blo, ahi * bhi];
                (p.into_iter().min().unwrap(), p.into_iter().max().unwrap())
            }
        };
        if lo > i128::from(i64::MAX) || hi < i128::from(i64::MIN) {
            return Interval::TOP;
        }
        let clamp = |x: i128| x.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
        Interval { lo: clamp(lo), hi: clamp(hi) }
    }

    /// Classic widening: any endpoint of `next` that moved past the
    /// corresponding endpoint of `self` jumps straight to ∓∞, so loop
    /// fixpoints terminate instead of climbing one unit per pass.
    fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo.min(next.lo) },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi.max(next.hi) },
        }
    }
}

/// Per-function dataflow state. Variable facts live in dense vectors
/// indexed by `VarId` (cloned per branch, so cloning must be cheap).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct State<'p> {
    /// Per-variable value intervals ([`Interval::TOP`] = no knowledge).
    pub(crate) vals: Vec<Interval>,
    pub(crate) tainted: Vec<bool>,
    pub(crate) points_to: Vec<Option<RegionId>>,
    pub(crate) regions: HashMap<RegionId, RegionState<'p>>,
    /// Site of the first *proven* oversized placement: past it, every
    /// variable in memory may have been rewritten, so constants and
    /// guard-established bounds are no longer trustworthy — this is how
    /// the analyzer keeps seeing the §4 two-step attack through the
    /// victim's own (defeated) bounds check.
    pub(crate) clobbered_at: Option<&'p Site>,
}

impl<'p> State<'p> {
    fn new(nvars: usize) -> Self {
        State {
            vals: vec![Interval::TOP; nvars],
            tainted: vec![false; nvars],
            points_to: vec![None; nvars],
            regions: HashMap::new(),
            clobbered_at: None,
        }
    }

    fn is_tainted(&self, v: VarId) -> bool {
        self.tainted[v.index() as usize]
    }

    fn taint(&mut self, v: VarId, t: bool) {
        if t {
            self.tainted[v.index() as usize] = true;
        }
    }

    fn expr_tainted(&self, e: &Expr) -> bool {
        let mut t = false;
        e.for_each_read(&mut |v| t |= self.is_tainted(v));
        t
    }

    fn val(&self, v: VarId) -> Interval {
        self.vals[v.index() as usize]
    }

    fn pointee(&self, v: VarId) -> Option<RegionId> {
        self.points_to[v.index() as usize]
    }

    fn region_mut(&mut self, id: RegionId) -> &mut RegionState<'p> {
        self.regions.entry(id).or_default()
    }

    /// A proven overflow happened: forget every value-level fact.
    fn clobber(&mut self, site: &'p Site) {
        self.vals.fill(Interval::TOP);
        if self.clobbered_at.is_none() {
            self.clobbered_at = Some(site);
        }
    }

    /// Conservative merge of two branch states.
    fn merge(mut self, other: State<'p>) -> State<'p> {
        // Value intervals join: the merged fact encloses both branches,
        // so disagreeing constants degrade to a range instead of ⊤.
        for (a, b) in self.vals.iter_mut().zip(&other.vals) {
            *a = a.join(*b);
        }
        if self.clobbered_at.is_none() {
            self.clobbered_at = other.clobbered_at;
        }
        for (a, b) in self.tainted.iter_mut().zip(&other.tainted) {
            *a |= *b;
        }
        for (a, b) in self.points_to.iter_mut().zip(&other.points_to) {
            if *a != *b {
                *a = None;
            }
        }
        for (id, o) in other.regions {
            match self.regions.get_mut(&id) {
                Some(s) => {
                    s.has_secret |= o.has_secret;
                    s.tainted_pool |= o.tainted_pool;
                    if s.residue_at.is_none() {
                        s.residue_at = o.residue_at;
                    }
                    s.freed &= o.freed;
                    if s.last_tenant_size != o.last_tenant_size {
                        s.last_tenant_size = None;
                    }
                }
                None => {
                    self.regions.insert(id, o);
                }
            }
        }
        self
    }
}

/// Configuration of the analyzer: a reporting threshold and per-check
/// switches, the knobs a real tool exposes for triage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// Findings below this severity are not reported.
    pub min_severity: Severity,
    /// Finding kinds that are switched off entirely.
    pub disabled: Vec<FindingKind>,
    /// Interprocedural strategy: `true` (the default) memoizes
    /// per-function transfer summaries and applies them at call sites;
    /// `false` re-walks every callee inline at every call site
    /// (`pncheck --no-summaries`). Both produce identical findings — the
    /// escape hatch exists for differential testing and triage.
    pub use_summaries: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig { min_severity: Severity::Info, disabled: Vec::new(), use_summaries: true }
    }
}

/// The analyzer. Stateless between programs; create once and reuse.
///
/// # Examples
///
/// ```
/// use pnew_detector::{Analyzer, Expr, FindingKind, ProgramBuilder, Ty};
///
/// let mut p = ProgramBuilder::new("listing-4");
/// p.class("Student", 16, None, false);
/// p.class("GradStudent", 32, Some("Student"), false);
/// let mut f = p.function("main");
/// let stud = f.local("stud", Ty::Class("Student".into()));
/// let st = f.local("st", Ty::Ptr);
/// f.placement_new(st, Expr::addr_of(stud), "GradStudent");
/// f.finish();
///
/// let report = Analyzer::new().analyze(&p.build());
/// assert_eq!(report.of_kind(FindingKind::OversizedPlacement).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Creates an analyzer with the default configuration (report
    /// everything).
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Creates an analyzer with an explicit configuration.
    pub fn with_config(config: AnalyzerConfig) -> Self {
        Analyzer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Analyzes a whole program.
    ///
    /// Every function is analyzed as an entry point; direct calls
    /// ([`Stmt::Call`]) flow the caller's argument facts into the callee
    /// — the §3.3 inter-procedural data-flow path — via memoized
    /// per-function transfer summaries (or an inline re-walk when
    /// [`AnalyzerConfig::use_summaries`] is off; both modes produce
    /// identical reports). Findings are deduplicated by `(kind, site)`
    /// so a callee flagged both standalone and through a call is
    /// reported once.
    pub fn analyze(&self, program: &Program) -> Report {
        self.analyze_impl(program, None).0
    }

    /// [`analyze`](Self::analyze), also returning the per-function
    /// summary digests (one [`FunctionSummaryRecord`] per function, in
    /// definition order) that the persistent batch cache stores next to
    /// the findings. Empty in inline (`use_summaries = false`) mode.
    pub fn analyze_with_summaries(
        &self,
        program: &Program,
    ) -> (Report, Vec<FunctionSummaryRecord>) {
        self.analyze_impl(program, None)
    }

    /// [`analyze`](Self::analyze), recording per-pass timings
    /// (`analysis.index`, `analysis.walk`) and counters (programs,
    /// functions, summaries computed/applied, findings per kind) into
    /// `trace`.
    pub fn analyze_traced(&self, program: &Program, trace: &TraceCollector) -> Report {
        self.analyze_impl(program, Some(trace)).0
    }

    /// [`analyze_with_summaries`](Self::analyze_with_summaries) with
    /// tracing.
    pub fn analyze_traced_with_summaries(
        &self,
        program: &Program,
        trace: &TraceCollector,
    ) -> (Report, Vec<FunctionSummaryRecord>) {
        self.analyze_impl(program, Some(trace))
    }

    fn analyze_impl(
        &self,
        program: &Program,
        trace: Option<&TraceCollector>,
    ) -> (Report, Vec<FunctionSummaryRecord>) {
        let ix = match trace {
            Some(t) => t.time("analysis.index", || Index::build(program)),
            None => Index::build(program),
        };
        let mut report = Report::new(&program.name);
        let mut records = Vec::new();
        let walk_start = trace.map(|_| std::time::Instant::now());
        let mut env = WalkEnv { memo: Memo::default() };
        if self.config.use_summaries {
            // One bottom-up pass over the SCC condensation seeds the memo
            // table callees-first (recursive cycles rely on the depth
            // guard's bounded widening instead)…
            let graph = CallGraph::build(program, &ix.fn_by_name);
            for &fi in &graph.bottom_up {
                self.entry_summary(&ix, fi, &mut env);
            }
            // Per-function content fingerprints: preamble text (classes
            // and globals, which every body's meaning depends on) plus
            // the function's own canonical text. The dependency lists
            // below carry the callee fingerprints, so two record sets
            // alone determine the invalidation cone of an edit.
            let preamble = crate::pretty::pretty_preamble(program);
            let fn_fps: Vec<u64> = program
                .functions
                .iter()
                .map(|f| {
                    let mut text = preamble.clone();
                    text.push_str(&crate::pretty::pretty_function(program, f));
                    crate::cache::fnv64(text.as_bytes())
                })
                .collect();
            // …then every function's entry findings replay in definition
            // order, keeping reports byte-identical to the inline walk.
            for fi in 0..program.functions.len() {
                let summary = self.entry_summary(&ix, fi, &mut env);
                for f in &summary.findings {
                    emit(&mut report, f.clone());
                }
                records.push(FunctionSummaryRecord {
                    function: program.functions[fi].name.clone(),
                    fingerprint: fn_fps[fi],
                    findings: summary.findings.len() as u32,
                    region_effects: summary.exit_regions.len() as u32,
                    clobbers: summary.exit_clobber.is_some(),
                    deps: graph.callees[fi]
                        .iter()
                        .map(|&j| crate::summary::SummaryDep {
                            callee: program.functions[j].name.clone(),
                            fingerprint: fn_fps[j],
                        })
                        .collect(),
                });
            }
            if let Some(t) = trace {
                t.count("analysis.summaries-computed", env.memo.computed);
                t.count("analysis.summaries-applied", env.memo.applied);
                t.count("analysis.recursive-functions", graph.recursive_functions() as u64);
            }
        } else {
            for fi in 0..program.functions.len() {
                let mut state = init_state(&ix, fi);
                self.walk(&ix, &program.functions[fi].body, &mut state, &mut report, 0, &mut env);
            }
        }
        report.findings.retain(|f| {
            f.severity >= self.config.min_severity && !self.config.disabled.contains(&f.kind)
        });
        if let (Some(t), Some(start)) = (trace, walk_start) {
            t.record_pass("analysis.walk", start.elapsed());
            t.count("analysis.programs", 1);
            t.count("analysis.functions", program.functions.len() as u64);
            for f in &report.findings {
                t.count(&format!("findings.{}", f.kind.name()), 1);
            }
        }
        (report, records)
    }

    /// The memoized entry summary of function `fi`: its body walked at
    /// depth 0 from the entry-point state.
    fn entry_summary<'p>(
        &self,
        ix: &Index<'p>,
        fi: usize,
        env: &mut WalkEnv<'p>,
    ) -> Rc<CallSummary<'p>> {
        let state = init_state(ix, fi);
        let key = SummaryKey::of(fi, 0, &ix.fn_params[fi], &state);
        if let Some(s) = env.memo.get(&key) {
            env.memo.applied += 1;
            return s;
        }
        self.compute_summary(ix, fi, state, 0, key, env)
    }

    /// Walks `fi`'s body once under `entry_state` at `walk_depth`,
    /// capturing its findings and caller-visible region effects as a
    /// memoized [`CallSummary`].
    fn compute_summary<'p>(
        &self,
        ix: &Index<'p>,
        fi: usize,
        mut entry_state: State<'p>,
        walk_depth: u32,
        key: SummaryKey,
        env: &mut WalkEnv<'p>,
    ) -> Rc<CallSummary<'p>> {
        // Findings land in a scratch report: the summary must hold the
        // body's full emission (deduplicated locally), because replay —
        // not computation — decides what the global report already has.
        let mut scratch = Report::new(&ix.program.name);
        self.walk(
            ix,
            &ix.program.functions[fi].body,
            &mut entry_state,
            &mut scratch,
            walk_depth,
            env,
        );
        let mut exit_regions: Vec<(RegionId, RegionState<'p>)> = entry_state
            .regions
            .iter()
            .filter(|&(&id, _)| is_caller_visible(ix, id))
            .map(|(&id, rs)| (id, *rs))
            .collect();
        exit_regions.sort_unstable_by_key(|&(id, _)| region_sort_key(id));
        let summary = Rc::new(CallSummary {
            findings: scratch.findings,
            exit_regions,
            exit_clobber: entry_state.clobbered_at,
        });
        env.memo.insert(key, Rc::clone(&summary));
        env.memo.computed += 1;
        summary
    }

    fn walk<'p>(
        &self,
        ix: &Index<'p>,
        body: &'p [Stmt],
        state: &mut State<'p>,
        report: &mut Report,
        depth: u32,
        env: &mut WalkEnv<'p>,
    ) {
        for stmt in body {
            self.step(ix, stmt, state, report, depth, env);
        }
    }

    /// Exact constant value of an expression, when its interval is
    /// degenerate.
    fn eval(&self, ix: &Index<'_>, e: &Expr, state: &State<'_>) -> Option<i64> {
        self.eval_interval(ix, e, state).as_const()
    }

    /// The value interval of an expression: constants and sizeofs are
    /// exact, variables carry their lattice fact, and `Add`/`Sub`/`Mul`
    /// all transfer through full interval arithmetic — a subtraction
    /// with a bounded subtrahend keeps its bound instead of giving up.
    fn eval_interval(&self, ix: &Index<'_>, e: &Expr, state: &State<'_>) -> Interval {
        match e {
            Expr::Const(c) => Interval::exact(*c),
            Expr::SizeOf(class) => {
                ix.sizeof(class).map_or(Interval::TOP, |s| Interval::exact(s as i64))
            }
            Expr::Var(v) => state.val(*v),
            Expr::BinOp(op, a, b) => Interval::arith(
                *op,
                self.eval_interval(ix, a, state),
                self.eval_interval(ix, b, state),
            ),
            Expr::AddrOf(_) | Expr::Field(_, _) => Interval::TOP,
        }
    }

    /// Applies the refinement a (dis)satisfied comparison gives: both
    /// operand orders (`if (n < 64)` and `if (64 > n)`), both
    /// polarities (then- and else-branch), and interval-valued opposite
    /// sides (`if (n <= m)` with `m ∈ [0, 8]`) all narrow. No-op once
    /// memory is clobbered: a proven overflow may have rewritten the
    /// compared variable, so the guard proves nothing (§4).
    fn refine(&self, ix: &Index<'_>, cond: &crate::ir::Cond, holds: bool, state: &mut State<'_>) {
        if state.clobbered_at.is_some() {
            return;
        }
        self.refine_operand(ix, &cond.lhs, cond.op, &cond.rhs, holds, state);
        self.refine_operand(ix, &cond.rhs, cond.op.flipped(), &cond.lhs, holds, state);
    }

    /// Narrows `lhs` (when it is a variable) from `lhs op other`
    /// holding (or not), using the interval of `other`.
    fn refine_operand(
        &self,
        ix: &Index<'_>,
        lhs: &Expr,
        op: crate::ir::CmpOp,
        other: &Expr,
        holds: bool,
        state: &mut State<'_>,
    ) {
        use crate::ir::CmpOp;
        let Expr::Var(v) = lhs else { return };
        let o = self.eval_interval(ix, other, state);
        // Fold the polarity into the relation, then narrow against the
        // weakest value of `other` the relation can hold for.
        let narrowed = match if holds { op } else { op.negated() } {
            CmpOp::Lt => Interval::at_most(o.hi.saturating_sub(1)),
            CmpOp::Le => Interval::at_most(o.hi),
            CmpOp::Gt => Interval::at_least(o.lo.saturating_add(1)),
            CmpOp::Ge => Interval::at_least(o.lo),
            CmpOp::Eq => o,
            CmpOp::Ne => {
                // A disequality only narrows when the excluded value is
                // an exact constant sitting on an endpoint.
                let cur = state.val(*v);
                match o.as_const() {
                    Some(c) if cur.lo == c && cur.hi > c => Interval { lo: c + 1, hi: cur.hi },
                    Some(c) if cur.hi == c && cur.lo < c => Interval { lo: cur.lo, hi: c - 1 },
                    _ => return,
                }
            }
        };
        let slot = &mut state.vals[v.index() as usize];
        // A disjoint meet means this branch is infeasible; the walk
        // still explores it, keeping the old fact (conservative).
        if let Some(m) = slot.meet(narrowed) {
            *slot = m;
        }
    }

    /// Resolves an arena expression to a region, if trackable.
    fn region_of_expr(&self, ix: &Index<'_>, e: &Expr, state: &State<'_>) -> Option<RegionId> {
        match e {
            Expr::AddrOf(v) => Some(RegionId::Var(*v)),
            // A pointer-valued variable denotes whatever it points to (or
            // nothing trackable); an array/object variable decays to its
            // own storage.
            Expr::Var(v) => {
                if ix.var_is_ptr[v.index() as usize] {
                    state.pointee(*v)
                } else {
                    Some(RegionId::Var(*v))
                }
            }
            _ => None,
        }
    }

    /// Region a *buffer-valued variable* denotes (arrays decay, pointers
    /// follow points-to).
    fn region_of_var(&self, ix: &Index<'_>, v: VarId, state: &State<'_>) -> Option<RegionId> {
        if ix.var_is_ptr[v.index() as usize] {
            state.pointee(v)
        } else {
            Some(RegionId::Var(v))
        }
    }

    fn region_size(&self, ix: &Index<'_>, id: RegionId, state: &State<'_>) -> Option<u64> {
        match id {
            RegionId::Var(v) => ix.var_storage_size[v.index() as usize],
            RegionId::Heap(_) => state.regions.get(&id).and_then(|r| r.alloc_size),
        }
    }

    fn region_class(&self, ix: &Index<'_>, id: RegionId, state: &State<'_>) -> Option<Symbol> {
        match id {
            RegionId::Var(v) => ix.var_class[v.index() as usize],
            RegionId::Heap(_) => state.regions.get(&id).and_then(|r| r.alloc_class),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step<'p>(
        &self,
        ix: &Index<'p>,
        stmt: &'p Stmt,
        state: &mut State<'p>,
        report: &mut Report,
        depth: u32,
        env: &mut WalkEnv<'p>,
    ) {
        match stmt {
            Stmt::Assign { dst, src, .. } => {
                let d = dst.index() as usize;
                // A plain overwrite replaces the value entirely: taint is
                // recomputed, not accumulated (clamping a tainted count to
                // a constant sanitizes it).
                let t = state.expr_tainted(src);
                state.tainted[d] = t;
                let val = self.eval_interval(ix, src, state);
                state.vals[d] = val;
                if ix.var_is_ptr[d] {
                    let r = self.region_of_expr(ix, src, state);
                    state.points_to[d] = r;
                }
            }
            Stmt::FieldStore { obj, src, .. } => {
                state.taint(*obj, state.expr_tainted(src));
            }
            Stmt::ReadInput { dst, .. } => {
                state.taint(*dst, true);
                state.vals[dst.index() as usize] = Interval::TOP;
            }
            Stmt::RecvObject { dst, .. } => {
                let d = dst.index() as usize;
                state.taint(*dst, true);
                state.vals[d] = Interval::TOP;
                state.points_to[d] = None;
            }
            Stmt::HeapNew { site, dst, class, count } => {
                let id = RegionId::Heap(site.line);
                let alloc_size = match (class, count) {
                    (Some(c), _) => ix.sizeof(c),
                    (None, Some(n)) => self.eval(ix, n, state).and_then(|v| u64::try_from(v).ok()),
                    (None, None) => None,
                };
                // Heap classes are interned at Index::build time.
                let alloc_class = class.as_deref().and_then(|c| ix.symbols.lookup(c));
                let region = state.region_mut(id);
                *region = RegionState {
                    alloc_size,
                    alloc_class,
                    last_tenant_size: alloc_size,
                    ..RegionState::default()
                };
                state.points_to[dst.index() as usize] = Some(id);
            }
            Stmt::PlacementNew { site, dst, arena, class, args } => {
                let placed = ix.sizeof(class);
                let region = self.region_of_expr(ix, arena, state);
                let arena_size = region.and_then(|r| self.region_size(ix, r, state));

                match (placed, arena_size) {
                    (Some(placed), Some(arena_sz)) if placed > arena_sz => {
                        let arena_class = region
                            .and_then(|r| self.region_class(ix, r, state))
                            .map_or("buffer", |s| ix.name(s));
                        emit(report, Finding {
                            kind: FindingKind::OversizedPlacement,
                            severity: Severity::Error,
                            site: site.clone(),
                            message: format!(
                                "placing {class} ({placed} bytes) into a {arena_sz}-byte arena of {arena_class} overflows by {} bytes",
                                placed - arena_sz
                            ),
                            width: Some(placed - arena_sz),
                        });
                        let poly_placed =
                            ix.program.classes.get(class).is_some_and(|c| c.polymorphic);
                        let poly_nearby = ix.any_polymorphic;
                        if poly_placed || poly_nearby {
                            emit(report, Finding {
                                kind: FindingKind::VptrClobber,
                                severity: Severity::Error,
                                site: site.clone(),
                                message: format!(
                                    "the {} overflowed bytes can reach a vtable pointer of an adjacent polymorphic object (§3.8.2)",
                                    placed - arena_sz
                                ),
                                width: Some(placed - arena_sz),
                            });
                        }
                        state.clobber(site);
                    }
                    (_, None) => {
                        emit(report, Finding {
                            kind: FindingKind::UnknownBoundsPlacement,
                            severity: Severity::Info,
                            site: site.clone(),
                            message: format!(
                                "cannot infer the arena size for this placement of {class}; manual review required (§5.1)"
                            ),
                            width: None,
                        });
                    }
                    _ => {}
                }

                if args.iter().any(|a| state.expr_tainted(a)) {
                    emit(report, Finding {
                        kind: FindingKind::TaintedPlacementSize,
                        severity: Severity::Warning,
                        site: site.clone(),
                        message: format!(
                            "{class} is constructed from untrusted data; a remote object can drive the overflow (§3.2)"
                        ),
                        width: None,
                    });
                }

                // Lifecycle: a smaller tenant over a larger one, or any
                // reuse over secrets, leaves residue.
                if let (Some(region_id), Some(placed)) = (region, placed) {
                    let rs = state.region_mut(region_id);
                    let shrunk = rs.last_tenant_size.is_some_and(|prev| placed < prev);
                    if (shrunk || rs.has_secret) && rs.residue_at.is_none() {
                        rs.residue_at = Some(site);
                    }
                    rs.last_tenant_size = Some(placed);
                    state.points_to[dst.index() as usize] = Some(region_id);
                } else if let Some(region_id) = region {
                    state.points_to[dst.index() as usize] = Some(region_id);
                }
            }
            Stmt::PlacementNewArray { site, dst, arena, elem_size, count } => {
                let region = self.region_of_expr(ix, arena, state);
                let arena_size = region.and_then(|r| self.region_size(ix, r, state));
                let iv = self.eval_interval(ix, count, state);
                let count_tainted = state.expr_tainted(count);
                // Byte totals over the count interval, in i128 so the
                // products cannot wrap. The simulated `new[]` clamps a
                // negative element count to zero, so a provably
                // non-positive count writes nothing — no laundering a
                // negative bound into "unbounded" via `u64::try_from`.
                let elem = i128::from(*elem_size);
                let min_total = i128::from(iv.lo).max(0) * elem;
                let max_total = iv.upper().map(|hi| i128::from(hi).max(0) * elem);
                // Concrete worst-case overflow width: the most bytes any
                // execution can write past the end of the arena.
                let worst_overflow = match (max_total, arena_size) {
                    (Some(t), Some(a)) if t > i128::from(a) => Some((t - i128::from(a)) as u64),
                    _ => None,
                };

                match arena_size {
                    Some(arena_sz) if min_total > i128::from(arena_sz) => {
                        // Even the smallest reachable total overflows:
                        // proven, constant count or not.
                        let message = if iv.as_const().is_some() {
                            format!(
                                "placing a {min_total}-byte array into a {arena_sz}-byte arena overflows by {} bytes",
                                min_total - i128::from(arena_sz)
                            )
                        } else {
                            format!(
                                "placing an array of at least {min_total} bytes into a {arena_sz}-byte arena overflows by {} bytes or more",
                                min_total - i128::from(arena_sz)
                            )
                        };
                        emit(
                            report,
                            Finding {
                                kind: FindingKind::OversizedPlacement,
                                severity: Severity::Error,
                                site: site.clone(),
                                message,
                                width: worst_overflow,
                            },
                        );
                        state.clobber(site);
                    }
                    None => {
                        emit(
                            report,
                            Finding {
                                kind: FindingKind::UnknownBoundsPlacement,
                                severity: Severity::Info,
                                site: site.clone(),
                                message:
                                    "cannot infer the arena size for this array placement (§5.1)"
                                        .to_owned(),
                                width: None,
                            },
                        );
                    }
                    _ => {}
                }
                // A guard that bounds the worst-case total below the
                // arena size makes the tainted length safe — *unless* an
                // earlier proven overflow may have rewritten the bounded
                // variable (a clobbered state holds ⊤, so no bound
                // survives to here).
                let bound_covers =
                    matches!((max_total, arena_size), (Some(t), Some(a)) if t <= i128::from(a));
                if count_tainted && !bound_covers {
                    let mut message =
                        "array placement length is influenced by untrusted input (§4 step 1)"
                            .to_owned();
                    if let (Some(w), Some(t)) = (worst_overflow, max_total) {
                        message.push_str(&format!(
                            "; the guard admits a {t}-byte worst case, overflowing the arena by {w} bytes"
                        ));
                    }
                    if let Some(clobber) = &state.clobbered_at {
                        message.push_str(&format!(
                            "; the bounds check is void because the oversized placement at {clobber} can rewrite the checked variable"
                        ));
                    }
                    emit(
                        report,
                        Finding {
                            kind: FindingKind::TaintedPlacementSize,
                            // A bounded worst case that still overflows is
                            // an attacker-reachable overflow of known
                            // width: Error. An unbounded count stays a
                            // Warning (§5.1 honesty about uncertainty).
                            severity: if worst_overflow.is_some() {
                                Severity::Error
                            } else {
                                Severity::Warning
                            },
                            site: site.clone(),
                            message,
                            width: worst_overflow,
                        },
                    );
                }
                if let Some(region_id) = region {
                    let rs = state.region_mut(region_id);
                    if rs.has_secret && rs.residue_at.is_none() {
                        rs.residue_at = Some(site);
                    }
                    rs.tainted_pool |= count_tainted;
                    state.points_to[dst.index() as usize] = Some(region_id);
                }
            }
            Stmt::Strncpy { site, dst, src, len } => {
                let len_tainted = state.expr_tainted(len);
                let src_tainted = state.expr_tainted(src);
                let region = self.region_of_var(ix, *dst, state);
                let dst_size = region.and_then(|r| self.region_size(ix, r, state));
                let iv = self.eval_interval(ix, len, state);
                // The simulated strncpy clamps a negative length to zero,
                // so a provably non-positive length copies nothing.
                let min_len = i128::from(iv.lo).max(0);
                let max_len = iv.upper().map(|h| i128::from(h).max(0));
                let worst_overflow = match (max_len, dst_size) {
                    (Some(l), Some(d)) if l > i128::from(d) => Some((l - i128::from(d)) as u64),
                    _ => None,
                };

                if let Some(dst_size) = dst_size {
                    if min_len > i128::from(dst_size) {
                        let message = if iv.as_const().is_some() {
                            format!("strncpy of {min_len} bytes into a {dst_size}-byte buffer")
                        } else {
                            format!(
                                "strncpy of at least {min_len} bytes into a {dst_size}-byte buffer"
                            )
                        };
                        emit(
                            report,
                            Finding {
                                kind: FindingKind::ClassicOverflow,
                                severity: Severity::Error,
                                site: site.clone(),
                                message,
                                width: worst_overflow,
                            },
                        );
                    }
                }
                let pool_tainted =
                    region.and_then(|r| state.regions.get(&r)).is_some_and(|r| r.tainted_pool);
                let bound_covers =
                    matches!((max_len, dst_size), (Some(l), Some(d)) if l <= i128::from(d));
                if (len_tainted || pool_tainted) && src_tainted && !bound_covers {
                    let mut message =
                        "untrusted data copied with an untrusted length through a pool-placed buffer — the §4 two-step overflow"
                            .to_owned();
                    if let Some(w) = worst_overflow {
                        message.push_str(&format!(
                            "; the guard admits a worst case overflowing the buffer by {w} bytes"
                        ));
                    }
                    emit(
                        report,
                        Finding {
                            kind: FindingKind::TaintedCopyThroughPool,
                            severity: if worst_overflow.is_some() {
                                Severity::Error
                            } else {
                                Severity::Warning
                            },
                            site: site.clone(),
                            message,
                            width: worst_overflow,
                        },
                    );
                }
            }
            Stmt::Memset { dst, .. } => {
                if let Some(r) = self.region_of_var(ix, *dst, state) {
                    let rs = state.region_mut(r);
                    rs.has_secret = false;
                    rs.residue_at = None;
                    // A zeroed arena has no previous tenant to leak: a
                    // smaller next tenant leaves only zeros behind.
                    rs.last_tenant_size = Some(0);
                }
            }
            Stmt::ReadSecret { dst, .. } => {
                if let Some(r) = self.region_of_var(ix, *dst, state) {
                    state.region_mut(r).has_secret = true;
                }
            }
            Stmt::Output { site, src, .. } => {
                if let Some(r) = self.region_of_var(ix, *src, state) {
                    let rs = *state.region_mut(r);
                    if let Some(origin) = rs.residue_at {
                        emit(report, Finding {
                            kind: FindingKind::UnsanitizedArenaReuse,
                            severity: Severity::Error,
                            site: site.clone(),
                            message: format!(
                                "buffer shipped out still carries residue from before the placement at {origin} (no memset between tenants, §4.3)"
                            ),
                            width: None,
                        });
                    }
                }
            }
            Stmt::Delete { site, ptr, as_class } => {
                if let Some(r @ RegionId::Heap(_)) = state.pointee(*ptr) {
                    let (alloc_size, alloc_class) = {
                        let rs = state.region_mut(r);
                        rs.freed = true;
                        (rs.alloc_size, rs.alloc_class)
                    };
                    if let (Some(cls), Some(alloc)) = (as_class, alloc_size) {
                        if let Some(released) = ix.sizeof(cls) {
                            if released < alloc {
                                emit(report, Finding {
                                    kind: FindingKind::PlacementLeak,
                                    severity: Severity::Error,
                                    site: site.clone(),
                                    message: format!(
                                        "block allocated for {} ({alloc} bytes) released as {cls} ({released} bytes): {} bytes leak per iteration (§4.5)",
                                        alloc_class.map_or("an array", |s| ix.name(s)),
                                        alloc - released
                                    ),
                                    width: None,
                                });
                            }
                        }
                    }
                }
            }
            Stmt::NullAssign { site, ptr } => {
                if let Some(r @ RegionId::Heap(_)) = state.pointee(*ptr) {
                    let freed = state.regions.get(&r).is_some_and(|rs| rs.freed);
                    if !freed {
                        emit(report, Finding {
                            kind: FindingKind::PlacementLeak,
                            severity: Severity::Warning,
                            site: site.clone(),
                            message:
                                "pointer to a live placement arena nulled without releasing the block (§4.5)"
                                    .to_owned(),
                            width: None,
                        });
                    }
                }
                state.points_to[ptr.index() as usize] = None;
            }
            Stmt::VirtualCall { .. } | Stmt::CallPtr { .. } | Stmt::Return { .. } => {}
            Stmt::If { cond, then_body, else_body, .. } => {
                let mut then_state = state.clone();
                let mut else_state = state.clone();
                self.refine(ix, cond, true, &mut then_state);
                self.refine(ix, cond, false, &mut else_state);
                self.walk(ix, then_body, &mut then_state, report, depth, env);
                self.walk(ix, else_body, &mut else_state, report, depth, env);
                let then_returns = matches!(then_body.last(), Some(Stmt::Return { .. }));
                let else_returns = matches!(else_body.last(), Some(Stmt::Return { .. }));
                // A branch ending in `return` contributes nothing to the
                // fall-through state — this is what lets the guard
                // `if (n > max) return;` establish n ≤ max afterwards.
                *state = match (then_returns, else_returns) {
                    (true, false) => else_state,
                    (false, true) => then_state,
                    _ => then_state.merge(else_state),
                };
            }
            Stmt::While { cond, body, .. } => {
                // Re-analyze the body to a fixpoint of the loop-entry
                // state: iteration 2 must see facts iteration 1 left
                // behind (a pointer re-aimed at a smaller arena, a count
                // variable turned tainted). Analyzing the body once
                // against the entry state misses those. `emit` dedups the
                // findings the repeated walks re-derive.
                //
                // Loop summarization: every pass enters the body through
                // the loop test, so a guard-bounded trip count keeps its
                // bound across iterations instead of widening to ⊤, and
                // the exit state is narrowed by the test failing. Value
                // intervals can climb one unit per pass ([0,0], [0,1],
                // …), so endpoints still moving after `WIDEN_AFTER`
                // passes are widened to ∓∞ — the fixpoint then lands
                // within the pass bound, and the exit narrowing claws the
                // loop-test bound back where there is one.
                let mut entry = state.clone();
                for pass in 0..MAX_LOOP_PASSES {
                    let mut body_state = entry.clone();
                    self.refine(ix, cond, true, &mut body_state);
                    self.walk(ix, body, &mut body_state, report, depth, env);
                    let next = entry.clone().merge(body_state);
                    if next == entry {
                        break;
                    }
                    entry = if pass + 1 >= WIDEN_AFTER {
                        let mut widened = next;
                        for (w, e) in widened.vals.iter_mut().zip(&entry.vals) {
                            *w = e.widen(*w);
                        }
                        widened
                    } else {
                        next
                    };
                }
                *state = entry;
                // Fall-through code runs only when the loop test fails.
                self.refine(ix, cond, false, state);
            }
            Stmt::Call { site, func, args } => {
                self.analyze_call(ix, site, func, args, state, report, depth, env);
            }
        }
    }
}

/// Mutable per-analysis context threaded through the walk: the summary
/// memo table (unused in inline mode).
struct WalkEnv<'p> {
    memo: Memo<'p>,
}

/// Whether a region survives a call boundary: global variables and heap
/// blocks are caller-visible; a callee's locals (and the caller's own
/// locals reached through pointer parameters) are not merged back —
/// matching the inline walk exactly.
fn is_caller_visible(ix: &Index<'_>, id: RegionId) -> bool {
    match id {
        RegionId::Var(v) => ix.var_is_global[v.index() as usize],
        RegionId::Heap(_) => true,
    }
}

/// Merges one caller-visible region's callee-exit state into the
/// caller's view (monotone lifecycle facts; tenant knowledge degrades on
/// disagreement). Shared by the inline merge-back and summary replay.
fn merge_back<'p>(dst: &mut RegionState<'p>, rs: &RegionState<'p>) {
    dst.has_secret |= rs.has_secret;
    dst.tainted_pool |= rs.tainted_pool;
    if dst.residue_at.is_none() {
        dst.residue_at = rs.residue_at;
    }
    dst.freed |= rs.freed;
    if dst.last_tenant_size != rs.last_tenant_size {
        dst.last_tenant_size = None;
    }
}

/// Maximum interprocedural walk depth. Beyond it the analyzer emits a
/// deterministic [`FindingKind::AnalysisDepthExceeded`] diagnostic at the
/// frontier call site — never a silent truncation. Recursive cycles
/// (which no bottom-up summary order can resolve) widen by descending to
/// this bound; acyclic chains deeper than this are flagged the same way.
pub(crate) const MAX_CALL_DEPTH: u32 = 24;

/// Maximum loop-body re-analysis rounds before accepting the current
/// loop-entry state as the fixpoint. With widening kicking in after
/// [`WIDEN_AFTER`] passes this is a safety net, not the normal exit.
const MAX_LOOP_PASSES: u32 = 6;

/// Loop passes after which still-moving interval endpoints widen to ∓∞.
/// Two un-widened passes let short counting patterns (`i = i + 1` under
/// an `i != k` test) settle exactly before the big hammer lands.
const WIDEN_AFTER: u32 = 2;

/// Appends a finding unless an identical `(kind, site)` is already
/// reported (a callee analyzed standalone and inline, a loop body walked
/// twice, …).
fn emit(report: &mut Report, finding: Finding) {
    let dup = report.findings.iter().any(|f| f.kind == finding.kind && f.site == finding.site);
    if !dup {
        report.findings.push(finding);
    }
}

/// Entry-point state for function `fi`: parameter taint and
/// declared-storage region sizes for globals and the function's own
/// variables.
fn init_state<'p>(ix: &Index<'p>, fi: usize) -> State<'p> {
    let mut state = State::new(ix.program.vars.len());
    let member = &ix.fn_member[fi];
    for var in &ix.program.vars {
        let vi = var.id.index() as usize;
        if !ix.var_is_global[vi] && !member[vi] {
            continue;
        }
        if let Scope::Param { tainted } = var.scope {
            state.taint(var.id, tainted);
        }
        if !ix.var_is_ptr[vi] {
            let region = state.region_mut(RegionId::Var(var.id));
            region.last_tenant_size = ix.var_storage_size[vi];
        }
    }
    state
}

impl Analyzer {
    /// Interprocedural analysis of a direct call: bind the caller's
    /// argument facts to the callee's parameters, then either apply the
    /// memoized transfer summary for that `(callee, depth, context)` —
    /// computing it on first encounter — or (inline mode) re-walk the
    /// callee body. Both paths merge the same caller-visible region
    /// effects back and are finding-for-finding identical.
    #[allow(clippy::too_many_arguments)]
    fn analyze_call<'p>(
        &self,
        ix: &Index<'p>,
        site: &'p Site,
        func: &str,
        args: &[Expr],
        state: &mut State<'p>,
        report: &mut Report,
        depth: u32,
        env: &mut WalkEnv<'p>,
    ) {
        let Some(&fi) = ix.fn_by_name.get(func) else {
            return; // external/opaque call: no effect modeled
        };
        if depth >= MAX_CALL_DEPTH {
            // Hard depth guard: recursion or a pathologically deep chain.
            // The frontier is reported, deterministically, instead of the
            // silent truncation this used to be.
            emit(report, Finding {
                kind: FindingKind::AnalysisDepthExceeded,
                severity: Severity::Info,
                site: site.clone(),
                message: format!(
                    "call to {func} not analyzed: interprocedural depth limit ({MAX_CALL_DEPTH}) reached — recursion or a deeper call chain; code behind this call is unverified"
                ),
                width: None,
            });
            return;
        }
        let callee = &ix.program.functions[fi];
        let mut callee_state = init_state(ix, fi);
        // Shared globals carry their caller-visible lifecycle state in.
        for (&id, rs) in &state.regions {
            if is_caller_visible(ix, id) {
                callee_state.regions.insert(id, *rs);
            }
        }
        callee_state.clobbered_at = state.clobbered_at;
        // Bind arguments to parameters, in declaration order.
        for (&param, arg) in ix.fn_params[fi].iter().zip(args) {
            let pi = param.index() as usize;
            callee_state.tainted[pi] = state.expr_tainted(arg);
            // The full caller-visible interval flows in, so a guarded
            // (not just constant) argument keeps its bound in the callee
            // — and summaries key on that interval.
            callee_state.vals[pi] = self.eval_interval(ix, arg, state);
            if ix.var_is_ptr[pi] {
                if let Some(r) = self.region_of_expr(ix, arg, state) {
                    callee_state.points_to[pi] = Some(r);
                }
            }
        }
        if self.config.use_summaries {
            let key = SummaryKey::of(fi, depth + 1, &ix.fn_params[fi], &callee_state);
            let summary = match env.memo.get(&key) {
                Some(s) => {
                    env.memo.applied += 1;
                    s
                }
                None => self.compute_summary(ix, fi, callee_state, depth + 1, key, env),
            };
            for f in &summary.findings {
                emit(report, f.clone());
            }
            for (id, rs) in &summary.exit_regions {
                merge_back(state.region_mut(*id), rs);
            }
            if state.clobbered_at.is_none() {
                state.clobbered_at = summary.exit_clobber;
            }
            return;
        }
        self.walk(ix, &callee.body, &mut callee_state, report, depth + 1, env);
        // Merge global/heap region effects back into the caller.
        for (id, rs) in callee_state.regions {
            if !is_caller_visible(ix, id) {
                continue;
            }
            merge_back(state.region_mut(id), &rs);
        }
        if state.clobbered_at.is_none() {
            state.clobbered_at = callee_state.clobbered_at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::CmpOp;

    fn students(p: &mut ProgramBuilder) {
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
    }

    #[test]
    fn oversized_placement_is_proved() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::OversizedPlacement);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].severity, Severity::Error);
        assert!(found[0].message.contains("overflows by 16 bytes"));
    }

    #[test]
    fn equal_size_placement_is_clean() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "Student");
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(!r.detected());
    }

    #[test]
    fn alias_through_pointer_is_tracked() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let alias = f.local("alias", Ty::Ptr);
        let st = f.local("st", Ty::Ptr);
        f.assign(alias, Expr::addr_of(stud));
        f.placement_new(st, Expr::Var(alias), "GradStudent");
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::OversizedPlacement).len(), 1);
    }

    #[test]
    fn unknown_bounds_yield_an_info_warning() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let ptr = f.param("somewhere", Ty::Ptr, false);
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::Var(ptr), "GradStudent");
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::UnknownBoundsPlacement);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].severity, Severity::Info);
        assert!(!r.detected_at(Severity::Warning));
    }

    #[test]
    fn tainted_array_count_detected() {
        // Listing 5: n comes from a malicious service.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("st", Ty::CharArray(Some(64)));
        let mut f = p.function("main");
        let n = f.local("n", Ty::Int);
        let names = f.local("stnames", Ty::Ptr);
        f.read_input(n);
        f.placement_new_array(names, Expr::addr_of(pool), 4, Expr::Var(n));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::TaintedPlacementSize).len(), 1);
    }

    #[test]
    fn constant_sizes_evaluate_through_arithmetic() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut f = p.function("main");
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.assign(n, Expr::Const(100));
        f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::mul(Expr::Var(n), Expr::Const(9)));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::OversizedPlacement);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("900-byte array"));
    }

    #[test]
    fn two_step_pattern_detected_through_the_defeated_guard() {
        // The full Listing 19 shape: tainted n, a real bounds check, but
        // an oversized object placement in between that can rewrite the
        // checked variable — the analyzer must keep flagging.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("sortAndAddUname");
        let uname = f.param("uname", Ty::Ptr, true);
        let pool = f.local("mem_pool", Ty::CharArray(Some(72)));
        let n = f.local("n_unames", Ty::Int);
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(8));
        f.ret();
        f.end_if();
        f.placement_new(st, Expr::addr_of(stud), "GradStudent"); // step 1
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.strncpy(buf, Expr::Var(uname), Expr::mul(Expr::Var(n), Expr::Const(9)));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let tainted = r.of_kind(FindingKind::TaintedPlacementSize);
        assert_eq!(tainted.len(), 1);
        assert!(tainted[0].message.contains("bounds check is void"), "{}", tainted[0].message);
        assert!(!r.of_kind(FindingKind::TaintedCopyThroughPool).is_empty());
    }

    #[test]
    fn intact_guard_suppresses_the_tainted_count() {
        // Same program without the step-1 overflow: the guard genuinely
        // bounds n (n ≤ 8, 8·9 = 72 ≤ 72), so the tainted length is safe.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("sortAndAddUname");
        let uname = f.param("uname", Ty::Ptr, true);
        let pool = f.local("mem_pool", Ty::CharArray(Some(72)));
        let n = f.local("n_unames", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(8));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.strncpy(buf, Expr::Var(uname), Expr::mul(Expr::Var(n), Expr::Const(9)));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(!r.detected_at(Severity::Warning), "{r}");
    }

    #[test]
    fn insufficient_guard_still_flags() {
        // A guard that bounds n too loosely (n ≤ 100, 100·9 > 72).
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("f");
        let uname = f.param("uname", Ty::Ptr, true);
        let pool = f.local("mem_pool", Ty::CharArray(Some(72)));
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(100));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.strncpy(buf, Expr::Var(uname), Expr::mul(Expr::Var(n), Expr::Const(9)));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(!r.of_kind(FindingKind::TaintedPlacementSize).is_empty());
    }

    #[test]
    fn unsanitized_reuse_detected_and_memset_clears_it() {
        for sanitize in [false, true] {
            let mut p = ProgramBuilder::new("t");
            students(&mut p);
            let pool = p.global("mem_pool", Ty::CharArray(Some(128)));
            let mut f = p.function("main");
            let user = f.local("userdata", Ty::Ptr);
            f.read_secret(pool);
            if sanitize {
                f.memset(pool, Expr::Const(128));
            }
            f.placement_new_array(user, Expr::addr_of(pool), 1, Expr::Const(128));
            f.output(user);
            f.finish();
            let r = Analyzer::new().analyze(&p.build());
            let found = r.of_kind(FindingKind::UnsanitizedArenaReuse);
            assert_eq!(found.len(), usize::from(!sanitize), "sanitize={sanitize}");
        }
    }

    #[test]
    fn smaller_object_reuse_is_residue() {
        // Listing 22: GradStudent then Student placed over it, stored out.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let gst = f.local("gst", Ty::Ptr);
        let st = f.local("st", Ty::Ptr);
        f.heap_new(gst, "GradStudent");
        f.placement_new(st, Expr::Var(gst), "Student");
        f.output(st);
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::UnsanitizedArenaReuse).len(), 1);
    }

    #[test]
    fn placement_leak_detected() {
        // Listing 23: allocated as GradStudent, released as Student.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("addStudent");
        let stud = f.local("stud", Ty::Ptr);
        let st = f.local("st", Ty::Ptr);
        f.heap_new(stud, "GradStudent");
        f.placement_new(st, Expr::Var(stud), "Student");
        f.delete(st, Some("Student"));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::PlacementLeak);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("16 bytes leak"));
    }

    #[test]
    fn null_without_free_warns() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("f");
        let stud = f.local("stud", Ty::Ptr);
        f.heap_new(stud, "GradStudent");
        f.null_assign(stud);
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::PlacementLeak);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].severity, Severity::Warning);
    }

    #[test]
    fn proper_delete_is_clean() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("f");
        let stud = f.local("stud", Ty::Ptr);
        let st = f.local("st", Ty::Ptr);
        f.heap_new(stud, "GradStudent");
        f.placement_new(st, Expr::Var(stud), "Student");
        f.delete(st, Some("GradStudent")); // placement delete: full block
        f.null_assign(stud);
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(r.of_kind(FindingKind::PlacementLeak).is_empty());
        // The smaller-tenant residue is never shipped out: no leak finding.
        assert!(r.of_kind(FindingKind::UnsanitizedArenaReuse).is_empty());
    }

    #[test]
    fn vptr_clobber_reported_for_polymorphic_worlds() {
        let mut p = ProgramBuilder::new("t");
        p.class("Student", 24, None, true);
        p.class("GradStudent", 40, Some("Student"), true);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::VptrClobber).len(), 1);
    }

    #[test]
    fn tainted_constructor_args_detected() {
        // Listing 7: copy constructor from a received object.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let stud = p.global("stud", Ty::Class("Student".into()));
        let mut f = p.function("addStudent");
        let remote = f.param("remoteobj", Ty::Ptr, true);
        let st = f.local("st", Ty::Ptr);
        f.placement_new_with(st, Expr::addr_of(stud), "Student", vec![Expr::Var(remote)]);
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::TaintedPlacementSize).len(), 1);
    }

    #[test]
    fn overwriting_with_a_constant_sanitizes() {
        // read n (tainted), then n = 8: the later placement is clean.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut f = p.function("main");
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.assign(n, Expr::Const(8));
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(!r.detected());
    }

    #[test]
    fn config_filters_severity_and_kinds() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let dest = f.param("dest", Ty::Ptr, false); // unknown bounds → Info
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::Var(dest), "GradStudent");
        f.placement_new(st, Expr::addr_of(stud), "GradStudent"); // Error
        f.finish();
        let program = p.build();

        let all = Analyzer::new().analyze(&program);
        assert_eq!(all.findings.len(), 2);

        let errors_only = Analyzer::with_config(AnalyzerConfig {
            min_severity: Severity::Error,
            ..AnalyzerConfig::default()
        })
        .analyze(&program);
        assert_eq!(errors_only.findings.len(), 1);
        assert!(errors_only.of_kind(FindingKind::UnknownBoundsPlacement).is_empty());

        let oversized_off = Analyzer::with_config(AnalyzerConfig {
            disabled: vec![FindingKind::OversizedPlacement],
            ..AnalyzerConfig::default()
        })
        .analyze(&program);
        assert!(oversized_off.of_kind(FindingKind::OversizedPlacement).is_empty());
        assert_eq!(oversized_off.findings.len(), 1);
    }

    #[test]
    fn interprocedural_taint_flows_through_calls() {
        // The callee is clean standalone (its parameter is untainted);
        // only the caller's tainted argument makes it vulnerable — the
        // §3.3 inter-procedural path.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut helper = p.function("place_names");
        let count = helper.param("count", Ty::Int, false);
        let buf = helper.local("buf", Ty::Ptr);
        helper.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(count));
        helper.finish();
        let mut main = p.function("main");
        let n = main.local("n", Ty::Int);
        main.read_input(n);
        main.call("place_names", vec![Expr::Var(n)]);
        main.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::TaintedPlacementSize);
        assert_eq!(found.len(), 1, "{r}");
        assert_eq!(found[0].site.function, "place_names");
    }

    #[test]
    fn interprocedural_constants_prove_overflows() {
        // A constant argument large enough to overflow, visible only
        // through the call.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut helper = p.function("place_names");
        let count = helper.param("count", Ty::Int, false);
        let buf = helper.local("buf", Ty::Ptr);
        helper.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(count));
        helper.finish();
        let mut main = p.function("main");
        main.call("place_names", vec![Expr::Const(100)]);
        main.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::OversizedPlacement).len(), 1, "{r}");
    }

    #[test]
    fn safe_constant_calls_are_clean() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut helper = p.function("place_names");
        let count = helper.param("count", Ty::Int, false);
        let buf = helper.local("buf", Ty::Ptr);
        helper.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(count));
        helper.finish();
        let mut main = p.function("main");
        main.call("place_names", vec![Expr::Const(8)]);
        main.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(!r.detected_at(Severity::Warning), "{r}");
    }

    #[test]
    fn duplicate_findings_are_merged() {
        // A callee vulnerable on its own, called from main: one finding,
        // not two.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut helper = p.function("helper");
        let stud = helper.local("stud", Ty::Class("Student".into()));
        let st = helper.local("st", Ty::Ptr);
        helper.placement_new(st, Expr::addr_of(stud), "GradStudent");
        helper.finish();
        let mut main = p.function("main");
        main.call("helper", vec![]);
        main.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::OversizedPlacement).len(), 1, "{r}");
    }

    #[test]
    fn recursion_terminates_with_a_depth_diagnostic() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("spin");
        let x = f.local("x", Ty::Int);
        f.assign(x, Expr::Const(1));
        f.call("spin", vec![]);
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        // The cut-off is no longer silent: the frontier call site carries
        // a deterministic Info diagnostic, and nothing stronger.
        let found = r.of_kind(FindingKind::AnalysisDepthExceeded);
        assert_eq!(found.len(), 1, "{r}");
        assert_eq!(found[0].severity, Severity::Info);
        assert!(found[0].message.contains("depth limit"), "{}", found[0].message);
        assert!(!r.detected_at(Severity::Warning));
    }

    /// Summary application must be finding-for-finding identical to the
    /// inline re-walk, context included.
    fn assert_modes_agree(program: &Program) {
        let summaries = Analyzer::new().analyze(program);
        let inline = Analyzer::with_config(AnalyzerConfig {
            use_summaries: false,
            ..AnalyzerConfig::default()
        })
        .analyze(program);
        assert_eq!(summaries, inline, "summary/inline divergence");
    }

    #[test]
    fn summary_mode_matches_inline_on_interprocedural_shapes() {
        // Re-run every interprocedural scenario of this module through
        // both strategies.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut helper = p.function("place_names");
        let count = helper.param("count", Ty::Int, false);
        let buf = helper.local("buf", Ty::Ptr);
        helper.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(count));
        helper.finish();
        let mut main = p.function("main");
        let n = main.local("n", Ty::Int);
        main.read_input(n);
        main.call("place_names", vec![Expr::Var(n)]);
        main.call("place_names", vec![Expr::Const(100)]);
        main.call("place_names", vec![Expr::Const(8)]);
        main.finish();
        assert_modes_agree(&p.build());
    }

    #[test]
    fn repeated_identical_calls_are_memoized() {
        // Ten identical safe calls: one summary computation for the call
        // context (plus entry summaries), nine applications.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut helper = p.function("place_names");
        let count = helper.param("count", Ty::Int, false);
        let buf = helper.local("buf", Ty::Ptr);
        helper.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(count));
        helper.finish();
        let mut main = p.function("main");
        for _ in 0..10 {
            main.call("place_names", vec![Expr::Const(8)]);
        }
        main.finish();
        let program = p.build();
        assert_modes_agree(&program);
        let trace = TraceCollector::new();
        Analyzer::new().analyze_traced(&program, &trace);
        let snap = trace.snapshot();
        // 2 entry summaries + 1 distinct call context.
        assert_eq!(snap.counters["analysis.summaries-computed"], 3);
        assert!(snap.counters["analysis.summaries-applied"] >= 9);
    }

    #[test]
    fn secret_state_crosses_calls() {
        // read_secret happens in one function, the leaky reuse in another.
        let mut p = ProgramBuilder::new("t");
        let pool = p.global("mem_pool", Ty::CharArray(Some(128)));
        let mut load = p.function("load_passwords");
        load.read_secret(pool);
        load.finish();
        let mut serve = p.function("serve");
        let user = serve.local("userdata", Ty::Ptr);
        serve.placement_new_array(user, Expr::addr_of(pool), 1, Expr::Const(128));
        serve.output(user);
        serve.finish();
        let mut main = p.function("main");
        main.call("load_passwords", vec![]);
        main.call("serve", vec![]);
        main.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::UnsanitizedArenaReuse).len(), 1, "{r}");
    }

    #[test]
    fn branch_merge_keeps_agreeing_constants() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut f = p.function("main");
        let n = f.local("n", Ty::Int);
        let flag = f.local("flag", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(flag);
        f.if_start(Expr::Var(flag), CmpOp::Gt, Expr::Const(0));
        f.assign(n, Expr::Const(200));
        f.else_branch();
        f.assign(n, Expr::Const(200));
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        // 200 > 72 in both branches: the proof survives the merge.
        assert_eq!(r.of_kind(FindingKind::OversizedPlacement).len(), 1);
    }

    #[test]
    fn disagreeing_branches_degrade_gracefully() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut f = p.function("main");
        let n = f.local("n", Ty::Int);
        let flag = f.local("flag", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(flag);
        f.if_start(Expr::Var(flag), CmpOp::Gt, Expr::Const(0));
        f.assign(n, Expr::Const(8));
        f.else_branch();
        f.assign(n, Expr::Const(200));
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        // No proof either way — and n is not tainted, so nothing at
        // Warning+. (A bounds check in only one branch is exactly the kind
        // of case §5.1 says static analysis struggles with.)
        assert!(!r.detected_at(Severity::Warning));
    }

    #[test]
    fn loop_taint_established_late_reaches_next_iteration() {
        // Regression for the loop-body under-approximation: `m` only
        // becomes tainted *after* the placement in iteration 1, so a
        // single body pass against the entry state sees an untainted
        // count and clears the site — while iteration 2 concretely
        // places an attacker-chosen number of elements.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let pool = f.local("pool", Ty::CharArray(Some(64)));
        let n = f.local("n", Ty::Int);
        let m = f.local("m", Ty::Int);
        let i = f.local("i", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.assign(i, Expr::Const(0));
        f.while_start(Expr::Var(i), CmpOp::Ne, Expr::Const(2));
        f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(m));
        f.assign(m, Expr::Var(n));
        f.assign(i, Expr::add(Expr::Var(i), Expr::Const(1)));
        f.end_while();
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::TaintedPlacementSize);
        assert_eq!(found.len(), 1, "late loop taint missed: {r}");
        assert_eq!(found[0].severity, Severity::Warning);
    }

    #[test]
    fn loop_pointer_reaim_degrades_arena_knowledge() {
        // Iteration 1 re-aims `p` from the big arena to a small one, so
        // from iteration 2 on the placement target is ambiguous. The
        // fixpoint must at least degrade to unknown-bounds rather than
        // keep the clean first-iteration proof.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let big = f.local("big", Ty::CharArray(Some(256)));
        let small = f.local("small", Ty::CharArray(Some(8)));
        let ptr = f.local("p", Ty::Ptr);
        let st = f.local("st", Ty::Ptr);
        let i = f.local("i", Ty::Int);
        f.assign(ptr, Expr::addr_of(big));
        f.assign(i, Expr::Const(0));
        f.while_start(Expr::Var(i), CmpOp::Ne, Expr::Const(2));
        f.placement_new(st, Expr::Var(ptr), "GradStudent");
        f.assign(ptr, Expr::addr_of(small));
        f.assign(i, Expr::add(Expr::Var(i), Expr::Const(1)));
        f.end_while();
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(
            !r.of_kind(FindingKind::UnknownBoundsPlacement).is_empty(),
            "re-aimed loop arena still treated as proven-safe: {r}"
        );
    }

    /// Builds `read n; <guard>; placement_new_array(pool[72], elem 9, n)`
    /// where the guard is chosen by `shape` and bounds n ≤ 8 (8·9 = 72
    /// fits exactly), then asserts the tainted count is suppressed.
    /// `in_branch` closes the guard's then-branch after the placement
    /// for guards that protect rather than reject.
    fn assert_guard_suppresses(
        shape: &str,
        in_branch: bool,
        guard: impl FnOnce(&mut crate::builder::FunctionBuilder, VarId),
    ) {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main");
        let pool = f.local("pool", Ty::CharArray(Some(72)));
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        guard(&mut f, n);
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        if in_branch {
            f.end_if();
        }
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(!r.detected_at(Severity::Warning), "{shape}: {r}");
    }

    #[test]
    fn guards_refine_in_both_polarities_and_operand_orders() {
        // Regression for the one-sided refine: only `Var-on-the-left`,
        // `holds`-polarity guards used to narrow the bound. All four
        // combinations must now suppress the tainted count.
        assert_guard_suppresses("var <= c, then-branch", true, |f, n| {
            f.if_start(Expr::Var(n), CmpOp::Le, Expr::Const(8));
        });
        assert_guard_suppresses("c > var, then-branch (reversed operands)", true, |f, n| {
            f.if_start(Expr::Const(9), CmpOp::Gt, Expr::Var(n));
        });
        assert_guard_suppresses("var >= c, fall-through (negated)", false, |f, n| {
            f.if_start(Expr::Var(n), CmpOp::Ge, Expr::Const(9));
            f.ret();
            f.end_if();
        });
        assert_guard_suppresses("c < var, fall-through (reversed + negated)", false, |f, n| {
            f.if_start(Expr::Const(8), CmpOp::Lt, Expr::Var(n));
            f.ret();
            f.end_if();
        });
    }

    #[test]
    fn eq_guard_pins_and_ne_rejection_shaves_the_endpoint() {
        // `n == c` pins the interval to [c, c] in the true branch…
        assert_guard_suppresses("var == c, then-branch", true, |f, n| {
            f.if_start(Expr::Var(n), CmpOp::Eq, Expr::Const(4));
        });
        // …`n != c` falling through pins it too (¬Ne = Eq)…
        assert_guard_suppresses("var != c, fall-through", false, |f, n| {
            f.if_start(Expr::Var(n), CmpOp::Ne, Expr::Const(4));
            f.ret();
            f.end_if();
        });
        // …and a failed equality at an interval *endpoint* shaves it:
        // n ≤ 8 then n ≠ 8 leaves n ≤ 7, and 7·9 = 63 exactly fills the
        // 63-byte pool.
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main");
        let pool = f.local("pool", Ty::CharArray(Some(63)));
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(8));
        f.ret();
        f.end_if();
        f.if_start(Expr::Var(n), CmpOp::Eq, Expr::Const(8));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(!r.detected_at(Severity::Warning), "endpoint shave missed: {r}");
    }

    #[test]
    fn negative_bound_count_is_suppressed_not_laundered() {
        // Regression for the `u64::try_from` laundering: a guard proving
        // the count *negative* used to make the bound vanish (try_from
        // fails → "unbounded") and flag a placement that provably writes
        // nothing — the simulated `new[]` clamps negative counts to zero.
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main");
        let pool = f.local("pool", Ty::CharArray(Some(16)));
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Ge, Expr::Const(0));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(r.of_kind(FindingKind::OversizedPlacement).is_empty(), "{r}");
        assert!(!r.detected_at(Severity::Warning), "negative count laundered: {r}");
    }

    #[test]
    fn loop_exit_test_bounds_the_clamped_count() {
        // The only bound on `n` at the placement is that the clamp
        // loop's test has *failed* — exit-state refinement must apply it.
        assert_guard_suppresses("clamp loop", false, |f, n| {
            f.while_start(Expr::Var(n), CmpOp::Gt, Expr::Const(8));
            f.assign(n, Expr::sub(Expr::Var(n), Expr::Const(1)));
            f.end_while();
        });
    }

    #[test]
    fn subtraction_derived_length_stays_bounded() {
        // `len = n - 3` under 3 ≤ n ≤ 11 is in [0, 8]: interval Sub must
        // carry the two-sided guard through the arithmetic.
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main");
        let pool = f.local("pool", Ty::CharArray(Some(72)));
        let n = f.local("n", Ty::Int);
        let len = f.local("len", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(11));
        f.ret();
        f.end_if();
        f.if_start(Expr::Var(n), CmpOp::Lt, Expr::Const(3));
        f.ret();
        f.end_if();
        f.assign(len, Expr::sub(Expr::Var(n), Expr::Const(3)));
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(len));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        assert!(!r.detected_at(Severity::Warning), "interval Sub lost the bound: {r}");
    }

    #[test]
    fn loose_guard_reports_the_concrete_worst_case_width() {
        // n ≤ 16 admits 16·9 = 144 bytes into a 72-byte pool: the finding
        // must be an Error carrying the exact 72-byte worst-case width.
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main");
        let pool = f.local("pool", Ty::CharArray(Some(72)));
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(16));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::TaintedPlacementSize);
        assert_eq!(found.len(), 1, "{r}");
        assert_eq!(found[0].severity, Severity::Error);
        assert_eq!(found[0].width, Some(72));
        assert!(found[0].message.contains("144-byte worst case"), "{}", found[0].message);
        assert!(
            found[0].message.contains("overflowing the arena by 72 bytes"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn lower_bound_alone_proves_the_overflow() {
        // n ≥ 20 means *every* execution places at least 180 bytes into
        // 72: proven Error even though the upper bound is infinite (so
        // no finite worst-case width exists).
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main");
        let pool = f.local("pool", Ty::CharArray(Some(72)));
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Lt, Expr::Const(20));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.finish();
        let r = Analyzer::new().analyze(&p.build());
        let found = r.of_kind(FindingKind::OversizedPlacement);
        assert_eq!(found.len(), 1, "{r}");
        assert_eq!(found[0].severity, Severity::Error);
        assert_eq!(found[0].width, None);
        assert!(found[0].message.contains("at least 180"), "{}", found[0].message);
        assert!(found[0].message.contains("or more"), "{}", found[0].message);
    }
}
