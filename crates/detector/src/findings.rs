//! Findings and reports.

use std::collections::BTreeMap;
use std::fmt;

use crate::ir::Site;

/// The vulnerability classes the detector reports, mirroring the paper's
/// §3/§4 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// A placement whose placed size provably exceeds the arena
    /// (object overflow via construction, §3.1).
    OversizedPlacement,
    /// A placement whose arena size cannot be inferred (bare scalar /
    /// lost alias) — the §5.1 hard case, reported as a warning.
    UnknownBoundsPlacement,
    /// A placement whose size/count is influenced by untrusted input
    /// (remote/serialized objects, §3.2; the first step of §4).
    TaintedPlacementSize,
    /// A copy through a pool-placed buffer with a tainted length — the
    /// two-step array overflow (§4.1/§4.2).
    TaintedCopyThroughPool,
    /// Arena reuse without sanitization after it held secret bytes
    /// (information leakage, §4.3).
    UnsanitizedArenaReuse,
    /// Placement over a heap block later released through a smaller type
    /// or merely nulled (memory leak, §4.5).
    PlacementLeak,
    /// An oversized placement that can reach a vtable pointer
    /// (vptr subterfuge exposure, §3.8.2).
    VptrClobber,
    /// Classic out-of-bounds copy into a lexically declared array — the
    /// only thing the *baseline* (traditional) checker can see.
    ClassicOverflow,
    /// The interprocedural walk hit its hard depth limit (deep call
    /// chain or recursion): everything past the reported call site is
    /// unanalyzed, and the analyzer says so instead of silently
    /// truncating.
    AnalysisDepthExceeded,
}

impl FindingKind {
    /// Parses a kind from its stable short name.
    pub fn from_name(name: &str) -> Option<FindingKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// All kinds.
    pub const ALL: [FindingKind; 9] = [
        FindingKind::OversizedPlacement,
        FindingKind::UnknownBoundsPlacement,
        FindingKind::TaintedPlacementSize,
        FindingKind::TaintedCopyThroughPool,
        FindingKind::UnsanitizedArenaReuse,
        FindingKind::PlacementLeak,
        FindingKind::VptrClobber,
        FindingKind::ClassicOverflow,
        FindingKind::AnalysisDepthExceeded,
    ];

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::OversizedPlacement => "oversized-placement",
            FindingKind::UnknownBoundsPlacement => "unknown-bounds-placement",
            FindingKind::TaintedPlacementSize => "tainted-placement-size",
            FindingKind::TaintedCopyThroughPool => "tainted-copy-through-pool",
            FindingKind::UnsanitizedArenaReuse => "unsanitized-arena-reuse",
            FindingKind::PlacementLeak => "placement-leak",
            FindingKind::VptrClobber => "vptr-clobber",
            FindingKind::ClassicOverflow => "classic-overflow",
            FindingKind::AnalysisDepthExceeded => "analysis-depth-exceeded",
        }
    }

    /// `true` for kinds only a placement-new-aware tool can produce.
    pub fn is_placement_specific(self) -> bool {
        !matches!(self, FindingKind::ClassicOverflow | FindingKind::AnalysisDepthExceeded)
    }

    /// Stable rule identifier for machine-readable output (the JSON
    /// envelope and SARIF `ruleId`), derived from [`name`](Self::name)
    /// under the `pnx/` prefix.
    pub fn rule_id(self) -> &'static str {
        match self {
            FindingKind::OversizedPlacement => "pnx/oversized-placement",
            FindingKind::UnknownBoundsPlacement => "pnx/unknown-bounds-placement",
            FindingKind::TaintedPlacementSize => "pnx/tainted-placement-size",
            FindingKind::TaintedCopyThroughPool => "pnx/tainted-copy-through-pool",
            FindingKind::UnsanitizedArenaReuse => "pnx/unsanitized-arena-reuse",
            FindingKind::PlacementLeak => "pnx/placement-leak",
            FindingKind::VptrClobber => "pnx/vptr-clobber",
            FindingKind::ClassicOverflow => "pnx/classic-overflow",
            FindingKind::AnalysisDepthExceeded => "pnx/analysis-depth-exceeded",
        }
    }

    /// The paper's taxonomy description of this vulnerability class,
    /// used as SARIF rule help text.
    pub fn help(self) -> &'static str {
        match self {
            FindingKind::OversizedPlacement => {
                "A placement new whose placed object provably exceeds the arena it is \
                 constructed into — the object overflow via construction of §3.1. The \
                 bytes past the arena overwrite whatever the process image puts there."
            }
            FindingKind::UnknownBoundsPlacement => {
                "A placement new whose arena size cannot be inferred statically (a bare \
                 scalar address or a lost alias) — the §5.1 hard case. The placement may \
                 be safe, but nothing in the program proves it."
            }
            FindingKind::TaintedPlacementSize => {
                "A placement whose size or element count is influenced by untrusted \
                 input, e.g. a remote or deserialized object (§3.2) — the first step of \
                 the two-step attacks of §4."
            }
            FindingKind::TaintedCopyThroughPool => {
                "A copy through a pool-placed buffer with an attacker-influenced length \
                 — the two-step array overflow of §4.1/§4.2, where the placement itself \
                 is in bounds but rewrites the bound a later copy trusts."
            }
            FindingKind::UnsanitizedArenaReuse => {
                "An arena reused for a new tenant without sanitization after it held \
                 secret bytes — the information-leakage channel of §4.3."
            }
            FindingKind::PlacementLeak => {
                "A placement over a heap block that is later released through a smaller \
                 type or merely nulled, stranding the tail of the block — the memory \
                 leak of §4.5."
            }
            FindingKind::VptrClobber => {
                "An oversized placement that can reach a vtable pointer of a live \
                 polymorphic object — the vptr subterfuge exposure of §3.8.2; the next \
                 virtual call dispatches through attacker-chosen memory."
            }
            FindingKind::ClassicOverflow => {
                "A classic out-of-bounds copy into a lexically declared array — the \
                 only class traditional overflow checkers (the baseline) can see."
            }
            FindingKind::AnalysisDepthExceeded => {
                "The interprocedural analysis reached its hard call-depth limit at \
                 this call site (unbounded recursion or a very deep call chain). \
                 Everything behind the call is unanalyzed; the verdict for the \
                 unreached code is unknown, not clean."
            }
        }
    }

    /// The §5-prescribed remediation for this finding class (what the
    /// [`Fixer`](crate::Fixer) applies automatically).
    pub fn suggestion(self) -> &'static str {
        match self {
            FindingKind::OversizedPlacement => {
                "check sizeof() against the arena and fall back to non-placement new (§5.1)"
            }
            FindingKind::UnknownBoundsPlacement => {
                "the arena size is not statically knowable; review the call site manually (§5.1)"
            }
            FindingKind::TaintedPlacementSize => {
                "bound the attacker-influenced count against the pool capacity before placing (§5.1)"
            }
            FindingKind::TaintedCopyThroughPool => {
                "re-validate the copy length after any placement that could rewrite it (§4)"
            }
            FindingKind::UnsanitizedArenaReuse => {
                "memset() the arena before handing it to the next tenant (§5.1)"
            }
            FindingKind::PlacementLeak => {
                "define and use a placement delete that releases the whole block (§5.1)"
            }
            FindingKind::VptrClobber => {
                "eliminate the oversized placement; vtable pointers are the first word of every polymorphic object (§3.8.2)"
            }
            FindingKind::ClassicOverflow => "bound the copy length by the destination size",
            FindingKind::AnalysisDepthExceeded => {
                "break the recursion or deep call chain, or review the unreached callees manually"
            }
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How certain the analyzer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational warning (e.g. bounds unknown).
    Info,
    /// Likely vulnerable (tainted sizes).
    Warning,
    /// Proven overflow/leak under the declared layout.
    Error,
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity {other:?} (info|warning|error)")),
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One reported vulnerability.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The vulnerability class.
    pub kind: FindingKind,
    /// Certainty.
    pub severity: Severity,
    /// Where.
    pub site: Site,
    /// Human-readable explanation with the inferred numbers.
    pub message: String,
    /// Concrete worst-case overflow width in bytes, when the
    /// value-range analysis can bound it: the largest
    /// `total − capacity` any execution can reach at this site.
    /// `None` when the worst case is unbounded or the finding is not
    /// an overflow measurement.
    pub width: Option<u64>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Parsed programs carry precise spans: report function:line:col
        // in the source. Builder programs fall back to the statement
        // ordinal.
        match self.site.span {
            Some(span) => write!(f, "{}:{span}", self.site.function)?,
            None => write!(f, "{}", self.site)?,
        }
        write!(f, ": {} [{}]: {}", self.severity, self.kind, self.message)
    }
}

/// The analysis result for one program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Program name.
    pub program: String,
    /// All findings, in site order of discovery.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Starts an empty report.
    pub fn new(program: &str) -> Self {
        Report { program: program.to_owned(), findings: Vec::new() }
    }

    /// `true` if anything at all was found.
    pub fn detected(&self) -> bool {
        !self.findings.is_empty()
    }

    /// `true` if any finding has at least `min` severity.
    pub fn detected_at(&self, min: Severity) -> bool {
        self.findings.iter().any(|f| f.severity >= min)
    }

    /// Findings of one kind.
    pub fn of_kind(&self, kind: FindingKind) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }

    /// Per-kind counts.
    pub fn counts(&self) -> BTreeMap<FindingKind, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.kind).or_insert(0) += 1;
        }
        map
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {} finding(s)", self.program, self.findings.len())?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: FindingKind, severity: Severity) -> Finding {
        Finding { kind, severity, site: Site::new("f", 1), message: "m".into(), width: None }
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_queries() {
        let mut r = Report::new("p");
        assert!(!r.detected());
        r.findings.push(finding(FindingKind::OversizedPlacement, Severity::Error));
        r.findings.push(finding(FindingKind::OversizedPlacement, Severity::Error));
        r.findings.push(finding(FindingKind::UnknownBoundsPlacement, Severity::Info));
        assert!(r.detected());
        assert!(r.detected_at(Severity::Error));
        assert_eq!(r.of_kind(FindingKind::OversizedPlacement).len(), 2);
        assert_eq!(r.counts()[&FindingKind::UnknownBoundsPlacement], 1);

        let only_info = Report {
            program: "p".into(),
            findings: vec![finding(FindingKind::UnknownBoundsPlacement, Severity::Info)],
        };
        assert!(!only_info.detected_at(Severity::Warning));
    }

    #[test]
    fn names_and_placement_specificity() {
        for k in FindingKind::ALL {
            assert!(!k.name().is_empty());
            assert_eq!(FindingKind::from_name(k.name()), Some(k));
            assert_eq!(k.rule_id(), format!("pnx/{}", k.name()));
            assert!(!k.help().is_empty());
        }
        assert_eq!(FindingKind::from_name("bogus"), None);
        for k in FindingKind::ALL {
            assert!(!k.suggestion().is_empty());
        }
        assert_eq!("warning".parse::<Severity>(), Ok(Severity::Warning));
        assert!("loud".parse::<Severity>().is_err());
        assert!(FindingKind::OversizedPlacement.is_placement_specific());
        assert!(!FindingKind::ClassicOverflow.is_placement_specific());
    }

    #[test]
    fn display_forms() {
        let f = finding(FindingKind::PlacementLeak, Severity::Warning);
        assert_eq!(f.to_string(), "f:1: warning [placement-leak]: m");
        let r = Report { program: "p".into(), findings: vec![f] };
        assert!(r.to_string().contains("1 finding"));
    }

    #[test]
    fn spanned_findings_display_the_source_position() {
        let mut f = finding(FindingKind::PlacementLeak, Severity::Warning);
        f.site.span = Some(crate::ir::Span::new(7, 5, 104, 31));
        assert_eq!(f.to_string(), "f:7:5: warning [placement-leak]: m");
    }
}
