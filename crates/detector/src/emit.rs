//! Machine-readable report serialization: the `pncheck` JSON envelope
//! and SARIF 2.1.0.
//!
//! Everything here is hand-rolled on `std` (the workspace builds
//! offline, so no serde): a tiny ordered [`JsonValue`] tree plus a
//! deterministic two-space pretty-printer. Field order is fixed by
//! construction order, so byte-identical output for identical input is a
//! guarantee — the golden-file tests depend on it.
//!
//! The JSON envelope (`schema: "pncheck-report/1"`) carries one entry
//! per scanned file — program name, findings with rule IDs and precise
//! [`Span`]s, parse errors — plus optional batch stats and a
//! [`TraceReport`]. SARIF output targets CI annotation: one run, the
//! eight detector rules (plus `pnx/parse-error`) with the paper's
//! §-taxonomy text as rule help, and one result per finding with a
//! `physicalLocation` region carrying line, column, and byte extent.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::str::FromStr;

use crate::batch::BatchStats;
use crate::findings::{FindingKind, Report, Severity};
use crate::ir::Span;
use crate::oracle::{DifferentialReport, Matrix, SiteVerdict};
use crate::parse::ParseError;
use crate::trace::TraceReport;

/// The output format selected by `pncheck --format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-oriented text (the default).
    #[default]
    Text,
    /// The `pncheck-report/1` JSON envelope.
    Json,
    /// SARIF 2.1.0 for CI annotation.
    Sarif,
}

impl FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            "sarif" => Ok(OutputFormat::Sarif),
            other => Err(format!("unknown format {other:?} (text|json|sarif)")),
        }
    }
}

/// One scanned input file, as the serializers see it: a report when the
/// file parsed, the collected parse errors when it did not.
#[derive(Debug, Clone)]
pub struct FileRecord {
    /// The path as given on the command line (or `-` for stdin).
    pub path: String,
    /// The analysis report, when the file parsed.
    pub report: Option<Report>,
    /// Parse errors, when it did not (possibly several — the parser
    /// recovers and reports them all).
    pub errors: Vec<ParseError>,
}

// ---------------------------------------------------------------------
// A minimal ordered JSON tree + deterministic pretty-printer.
// ---------------------------------------------------------------------

/// An ordered JSON value; object fields serialize in insertion order.
/// Crate-visible so the daemon ([`crate::server`]) builds its response
/// headers and stats payloads on the same serializer the envelopes use.
#[derive(Debug, Clone)]
pub(crate) enum JsonValue {
    Null,
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

pub(crate) fn s(v: impl Into<String>) -> JsonValue {
    JsonValue::Str(v.into())
}

pub(crate) fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_value(v: &JsonValue, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::F64(x) => {
            // Fixed precision keeps the rendering locale- and
            // magnitude-stable.
            let _ = write!(out, "{x:.1}");
        }
        JsonValue::Str(text) => {
            out.push('"');
            escape_into(text, out);
            out.push('"');
        }
        JsonValue::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&STEP.repeat(indent + 1));
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, value)) in fields.iter().enumerate() {
                out.push_str(&STEP.repeat(indent + 1));
                out.push('"');
                escape_into(key, out);
                out.push_str("\": ");
                write_value(value, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
    }
}

fn render(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(v, 0, &mut out);
    out.push('\n');
    out
}

/// Renders `v` on one line with no insignificant whitespace — the
/// framing the daemon's newline-delimited response headers need (a
/// header must never contain a raw newline). Deterministic like
/// [`render`]: field order is construction order.
pub(crate) fn render_compact(v: &JsonValue) -> String {
    fn write_compact(v: &JsonValue, out: &mut String) {
        match v {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::F64(x) => {
                let _ = write!(out, "{x:.1}");
            }
            JsonValue::Str(text) => {
                out.push('"');
                escape_into(text, out);
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(item, out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(key, out);
                    out.push_str("\":");
                    write_compact(value, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(v, &mut out);
    out
}

// ---------------------------------------------------------------------
// The pncheck JSON envelope.
// ---------------------------------------------------------------------

/// The version reported in both serializations.
fn tool_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

fn span_value(span: Option<Span>) -> JsonValue {
    match span {
        Some(sp) => obj(vec![
            ("line", JsonValue::U64(sp.line.into())),
            ("col", JsonValue::U64(sp.col.into())),
            ("byte_offset", JsonValue::U64(sp.byte_offset.into())),
            ("len", JsonValue::U64(sp.len.into())),
        ]),
        None => JsonValue::Null,
    }
}

fn trace_value(trace: &TraceReport) -> JsonValue {
    let counters: Vec<(String, JsonValue)> =
        trace.counters.iter().map(|(name, value)| (name.clone(), JsonValue::U64(*value))).collect();
    let passes: Vec<JsonValue> = trace
        .passes
        .iter()
        .map(|p| {
            obj(vec![
                ("name", s(&p.name)),
                ("calls", JsonValue::U64(p.calls)),
                ("total_us", JsonValue::U64(p.total.as_micros().min(u128::from(u64::MAX)) as u64)),
            ])
        })
        .collect();
    obj(vec![("counters", JsonValue::Obj(counters)), ("passes", JsonValue::Arr(passes))])
}

fn stats_value(stats: &BatchStats) -> JsonValue {
    obj(vec![
        ("programs", JsonValue::U64(stats.programs as u64)),
        ("findings", JsonValue::U64(stats.findings as u64)),
        ("jobs", JsonValue::U64(stats.jobs as u64)),
        ("cache_hits", JsonValue::U64(stats.cache_hits)),
        ("cache_misses", JsonValue::U64(stats.cache_misses)),
        ("parses", JsonValue::U64(stats.parses)),
        ("persistent_cache_hits", JsonValue::U64(stats.persistent_hits)),
        ("persistent_cache_misses", JsonValue::U64(stats.persistent_misses)),
        ("persistent_cache_corrupt", JsonValue::U64(stats.persistent_corrupt)),
        ("persistent_cache_write_errors", JsonValue::U64(stats.persistent_write_errors)),
        ("elapsed_us", JsonValue::U64(stats.elapsed.as_micros().min(u128::from(u64::MAX)) as u64)),
        ("programs_per_sec", JsonValue::F64(stats.programs_per_sec())),
    ])
}

fn file_value(record: &FileRecord) -> JsonValue {
    let findings: Vec<JsonValue> = record
        .report
        .iter()
        .flat_map(|r| &r.findings)
        .map(|f| {
            obj(vec![
                ("rule", s(f.kind.rule_id())),
                ("kind", s(f.kind.name())),
                ("severity", s(f.severity.to_string())),
                // Concrete worst-case overflow width in bytes; null when
                // the worst case is unbounded or not an overflow at all.
                ("width", f.width.map_or(JsonValue::Null, JsonValue::U64)),
                ("function", s(&f.site.function)),
                ("statement", JsonValue::U64(f.site.line.into())),
                ("span", span_value(f.site.span)),
                ("message", s(&f.message)),
                ("suggestion", s(f.kind.suggestion())),
            ])
        })
        .collect();
    let errors: Vec<JsonValue> = record
        .errors
        .iter()
        .map(|e| obj(vec![("message", s(&e.message)), ("span", span_value(Some(e.span)))]))
        .collect();
    obj(vec![
        ("path", s(&record.path)),
        ("program", record.report.as_ref().map_or(JsonValue::Null, |r| s(&r.program))),
        ("findings", JsonValue::Arr(findings)),
        ("errors", JsonValue::Arr(errors)),
    ])
}

/// Renders the `pncheck-report/1` JSON envelope.
///
/// Deterministic for identical input: field order is fixed and map-based
/// content (trace counters) is sorted. `stats` and `trace` are optional
/// (`--stats`); they carry timings and are therefore *not* deterministic
/// — golden tests should pass `None`.
pub fn render_json(
    files: &[FileRecord],
    stats: Option<&BatchStats>,
    trace: Option<&TraceReport>,
) -> String {
    let findings: usize =
        files.iter().filter_map(|f| f.report.as_ref()).map(|r| r.findings.len()).sum();
    let parse_errors: usize = files.iter().map(|f| f.errors.len()).sum();
    let envelope = obj(vec![
        ("schema", s("pncheck-report/1")),
        ("tool", obj(vec![("name", s("pncheck")), ("version", s(tool_version()))])),
        (
            "summary",
            obj(vec![
                ("files", JsonValue::U64(files.len() as u64)),
                ("findings", JsonValue::U64(findings as u64)),
                ("parse_errors", JsonValue::U64(parse_errors as u64)),
            ]),
        ),
        ("files", JsonValue::Arr(files.iter().map(file_value).collect())),
        ("stats", stats.map_or(JsonValue::Null, stats_value)),
        ("trace", trace.map_or(JsonValue::Null, trace_value)),
    ]);
    render(&envelope)
}

/// Renders a `pncheck-report/1` envelope describing a run that could
/// not start: no files, plus a structured `error` object with a stable
/// machine-readable code. Used when a usage-level failure (an unusable
/// `--cache-dir`, for instance) must still produce valid JSON on
/// stdout for pipelines that parse it.
pub fn render_error_json(code: &str, message: &str) -> String {
    let envelope = obj(vec![
        ("schema", s("pncheck-report/1")),
        ("tool", obj(vec![("name", s("pncheck")), ("version", s(tool_version()))])),
        (
            "summary",
            obj(vec![
                ("files", JsonValue::U64(0)),
                ("findings", JsonValue::U64(0)),
                ("parse_errors", JsonValue::U64(0)),
            ]),
        ),
        ("files", JsonValue::Arr(Vec::new())),
        ("error", obj(vec![("code", s(code)), ("message", s(message))])),
    ]);
    render(&envelope)
}

// ---------------------------------------------------------------------
// The pncheck --oracle envelope.
// ---------------------------------------------------------------------

/// One input to the oracle serializer: where the program came from and
/// what the differential concluded about it.
#[derive(Debug, Clone)]
pub struct OracleRecord {
    /// The path as given on the command line (or a corpus tag like
    /// `corpus:seed=1:7`).
    pub path: String,
    /// The differential result.
    pub report: DifferentialReport,
}

fn verdict_value(v: &SiteVerdict) -> JsonValue {
    obj(vec![
        ("verdict", s(v.verdict.label())),
        ("kind", s(v.kind.name())),
        ("severity", v.severity.map_or(JsonValue::Null, |sev| s(sev.to_string()))),
        ("function", s(&v.site.function)),
        ("statement", JsonValue::U64(v.site.line.into())),
        ("events", JsonValue::Arr(v.events.iter().map(|e| s(*e)).collect())),
    ])
}

/// Renders the `pncheck-oracle/1` JSON envelope: per-file site verdicts
/// plus the aggregated per-kind TP/FP/FN matrix. Deterministic for
/// identical input, like [`render_json`].
pub fn render_oracle_json(records: &[OracleRecord], matrix: &Matrix) -> String {
    let files: Vec<JsonValue> = records
        .iter()
        .map(|r| {
            obj(vec![
                ("path", s(&r.path)),
                ("program", s(&r.report.program)),
                ("verdicts", JsonValue::Arr(r.report.verdicts.iter().map(verdict_value).collect())),
                ("events", JsonValue::U64(r.report.events.len() as u64)),
                ("skipped", JsonValue::U64(r.report.skipped.len() as u64)),
                ("agreement", s(if r.report.agrees() { "sound" } else { "false-negatives" })),
            ])
        })
        .collect();
    let matrix_rows: Vec<JsonValue> = matrix
        .kinds()
        .into_iter()
        .map(|kind| {
            let (tp, fp, fnn) = matrix.row(kind);
            obj(vec![
                ("kind", s(kind.name())),
                ("tp", JsonValue::U64(tp)),
                ("fp", JsonValue::U64(fp)),
                ("fn", JsonValue::U64(fnn)),
            ])
        })
        .collect();
    let (tp, fp, fnn) = matrix.totals();
    let envelope = obj(vec![
        ("schema", s("pncheck-oracle/1")),
        ("tool", obj(vec![("name", s("pncheck")), ("version", s(tool_version()))])),
        (
            "summary",
            obj(vec![
                ("files", JsonValue::U64(records.len() as u64)),
                ("true_positives", JsonValue::U64(tp)),
                ("false_positives", JsonValue::U64(fp)),
                ("false_negatives", JsonValue::U64(fnn)),
                ("agreement", s(if fnn == 0 { "sound" } else { "false-negatives" })),
            ]),
        ),
        ("matrix", JsonValue::Arr(matrix_rows)),
        ("files", JsonValue::Arr(files)),
    ]);
    render(&envelope)
}

// ---------------------------------------------------------------------
// SARIF 2.1.0.
// ---------------------------------------------------------------------

/// The synthetic rule ID under which parse errors are reported.
const PARSE_ERROR_RULE: &str = "pnx/parse-error";

fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Info => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn sarif_rules() -> (Vec<JsonValue>, BTreeMap<&'static str, usize>) {
    let mut rules = Vec::new();
    let mut index = BTreeMap::new();
    for kind in FindingKind::ALL {
        index.insert(kind.rule_id(), rules.len());
        rules.push(obj(vec![
            ("id", s(kind.rule_id())),
            ("shortDescription", obj(vec![("text", s(kind.name()))])),
            ("fullDescription", obj(vec![("text", s(kind.help()))])),
            ("help", obj(vec![("text", s(kind.suggestion()))])),
        ]));
    }
    index.insert(PARSE_ERROR_RULE, rules.len());
    rules.push(obj(vec![
        ("id", s(PARSE_ERROR_RULE)),
        ("shortDescription", obj(vec![("text", s("parse-error"))])),
        (
            "fullDescription",
            obj(vec![("text", s("The file is not valid .pnx source and was not analyzed."))]),
        ),
        ("help", obj(vec![("text", s("fix the syntax error; see docs/pnx-syntax.md"))])),
    ]));
    (rules, index)
}

fn sarif_region(span: Option<Span>, fallback_line: u32) -> JsonValue {
    match span {
        Some(sp) => obj(vec![
            ("startLine", JsonValue::U64(sp.line.into())),
            ("startColumn", JsonValue::U64(sp.col.into())),
            ("byteOffset", JsonValue::U64(sp.byte_offset.into())),
            ("byteLength", JsonValue::U64(sp.len.into())),
        ]),
        None => obj(vec![
            ("startLine", JsonValue::U64(fallback_line.max(1).into())),
            ("startColumn", JsonValue::U64(1)),
        ]),
    }
}

fn sarif_location(uri: &str, region: JsonValue, function: Option<&str>) -> JsonValue {
    let mut fields = vec![(
        "physicalLocation",
        obj(vec![("artifactLocation", obj(vec![("uri", s(uri))])), ("region", region)]),
    )];
    if let Some(name) = function {
        fields.push((
            "logicalLocations",
            JsonValue::Arr(vec![obj(vec![("name", s(name)), ("kind", s("function"))])]),
        ));
    }
    obj(fields)
}

/// Renders a SARIF 2.1.0 log: one run, one result per finding, and one
/// `pnx/parse-error` result per parse error. Deterministic for identical
/// input.
pub fn render_sarif(files: &[FileRecord]) -> String {
    let (rules, rule_index) = sarif_rules();
    let mut results = Vec::new();
    for record in files {
        for finding in record.report.iter().flat_map(|r| &r.findings) {
            let rule_id = finding.kind.rule_id();
            let message = format!("{} (hint: {})", finding.message, finding.kind.suggestion());
            let mut fields = vec![
                ("ruleId", s(rule_id)),
                ("ruleIndex", JsonValue::U64(rule_index[rule_id] as u64)),
                ("level", s(sarif_level(finding.severity))),
                ("message", obj(vec![("text", s(message))])),
                (
                    "locations",
                    JsonValue::Arr(vec![sarif_location(
                        &record.path,
                        sarif_region(finding.site.span, finding.site.line),
                        Some(&finding.site.function),
                    )]),
                ),
            ];
            if let Some(width) = finding.width {
                fields
                    .push(("properties", obj(vec![("overflowWidthBytes", JsonValue::U64(width))])));
            }
            results.push(obj(fields));
        }
        for error in &record.errors {
            results.push(obj(vec![
                ("ruleId", s(PARSE_ERROR_RULE)),
                ("ruleIndex", JsonValue::U64(rule_index[PARSE_ERROR_RULE] as u64)),
                ("level", s("error")),
                ("message", obj(vec![("text", s(&error.message))])),
                (
                    "locations",
                    JsonValue::Arr(vec![sarif_location(
                        &record.path,
                        sarif_region(Some(error.span), error.span.line),
                        None,
                    )]),
                ),
            ]));
        }
    }
    let log = obj(vec![
        ("$schema", s("https://json.schemastore.org/sarif-2.1.0.json")),
        ("version", s("2.1.0")),
        (
            "runs",
            JsonValue::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("pncheck")),
                            ("version", s(tool_version())),
                            ("informationUri", s("https://example.invalid/placement-new-attacks")),
                            ("rules", JsonValue::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", JsonValue::Arr(results)),
            ])]),
        ),
    ]);
    render(&log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_program, parse_program_recovering};
    use crate::Analyzer;

    const VULNERABLE: &str = "program demo;\n\
                              class Student size 16;\n\
                              class GradStudent size 32 : Student;\n\
                              fn main() {\n\
                              \x20   local stud: Student;\n\
                              \x20   local st: ptr;\n\
                              \x20   st = new (&stud) GradStudent();\n\
                              }\n";

    fn scanned(path: &str, src: &str) -> FileRecord {
        match parse_program_recovering(src) {
            Ok(p) => FileRecord {
                path: path.to_owned(),
                report: Some(Analyzer::new().analyze(&p)),
                errors: Vec::new(),
            },
            Err(errors) => FileRecord { path: path.to_owned(), report: None, errors },
        }
    }

    #[test]
    fn format_parses_from_flag_values() {
        assert_eq!("text".parse::<OutputFormat>(), Ok(OutputFormat::Text));
        assert_eq!("json".parse::<OutputFormat>(), Ok(OutputFormat::Json));
        assert_eq!("sarif".parse::<OutputFormat>(), Ok(OutputFormat::Sarif));
        assert!("yaml".parse::<OutputFormat>().is_err());
    }

    #[test]
    fn json_escaping_covers_control_and_quote_characters() {
        let v = s("a\"b\\c\nd\te\u{1}");
        assert_eq!(render(&v), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn compact_rendering_is_single_line_and_escaped() {
        let v = obj(vec![
            ("ok", JsonValue::Bool(true)),
            ("n", JsonValue::U64(3)),
            ("text", s("two\nlines")),
            ("arr", JsonValue::Arr(vec![JsonValue::Null, JsonValue::U64(1)])),
            ("empty", obj(vec![])),
        ]);
        let line = render_compact(&v);
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(
            line,
            "{\"ok\":true,\"n\":3,\"text\":\"two\\nlines\",\"arr\":[null,1],\"empty\":{}}"
        );
    }

    #[test]
    fn error_envelope_is_schema_valid_and_carries_the_code() {
        let json = render_error_json("cache-dir-unusable", "cannot open /nope: denied");
        assert!(json.contains("\"schema\": \"pncheck-report/1\""), "{json}");
        assert!(json.contains("\"code\": \"cache-dir-unusable\""), "{json}");
        assert!(json.contains("\"message\": \"cannot open /nope: denied\""), "{json}");
        assert!(json.contains("\"files\": []"), "{json}");
    }

    #[test]
    fn json_envelope_carries_spans_and_rules() {
        let json = render_json(&[scanned("demo.pnx", VULNERABLE)], None, None);
        assert!(json.contains("\"schema\": \"pncheck-report/1\""), "{json}");
        assert!(json.contains("\"rule\": \"pnx/oversized-placement\""), "{json}");
        assert!(json.contains("\"line\": 7"), "{json}");
        assert!(json.contains("\"col\": 5"), "{json}");
        assert!(json.contains("\"function\": \"main\""), "{json}");
    }

    #[test]
    fn overflow_width_reaches_both_serializations() {
        // The 32-byte GradStudent in a 16-byte arena overflows by exactly
        // 16 bytes; the measurement must survive into the JSON envelope
        // and the SARIF properties bag.
        let record = scanned("demo.pnx", VULNERABLE);
        let json = render_json(std::slice::from_ref(&record), None, None);
        assert!(json.contains("\"width\": 16"), "{json}");
        let sarif = render_sarif(&[record]);
        assert!(sarif.contains("\"overflowWidthBytes\": 16"), "{sarif}");
    }

    #[test]
    fn json_output_is_deterministic() {
        let records = [scanned("demo.pnx", VULNERABLE)];
        assert_eq!(render_json(&records, None, None), render_json(&records, None, None));
    }

    #[test]
    fn parse_errors_become_envelope_errors_and_sarif_results() {
        let record = scanned("broken.pnx", "program t;\nfn f() {\n    n = ;\n}\n");
        assert!(record.report.is_none());
        let json = render_json(std::slice::from_ref(&record), None, None);
        assert!(json.contains("\"program\": null"), "{json}");
        assert!(json.contains("unknown variable"), "{json}");
        let sarif = render_sarif(&[record]);
        assert!(sarif.contains("pnx/parse-error"), "{sarif}");
        assert!(sarif.contains("\"level\": \"error\""), "{sarif}");
    }

    #[test]
    fn sarif_results_point_at_precise_regions() {
        let sarif = render_sarif(&[scanned("demo.pnx", VULNERABLE)]);
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"startLine\": 7"), "{sarif}");
        assert!(sarif.contains("\"startColumn\": 5"), "{sarif}");
        assert!(sarif.contains("\"uri\": \"demo.pnx\""), "{sarif}");
        // Every detector rule is declared once, findings or not.
        for kind in FindingKind::ALL {
            assert!(sarif.contains(kind.rule_id()), "{}", kind.rule_id());
        }
    }

    #[test]
    fn builder_sites_without_spans_fall_back_to_the_ordinal() {
        use crate::{Expr, ProgramBuilder, Ty};
        let mut p = ProgramBuilder::new("built");
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let record = FileRecord {
            path: "built.pnx".into(),
            report: Some(Analyzer::new().analyze(&p.build())),
            errors: Vec::new(),
        };
        let json = render_json(std::slice::from_ref(&record), None, None);
        assert!(json.contains("\"span\": null"), "{json}");
        let sarif = render_sarif(&[record]);
        assert!(sarif.contains("\"startLine\": 1"), "{sarif}");
        assert!(sarif.contains("\"startColumn\": 1"), "{sarif}");
    }

    #[test]
    fn oracle_envelope_carries_verdicts_and_matrix() {
        use crate::oracle::{Matrix, Oracle};
        let program = parse_program(VULNERABLE).unwrap();
        let report = Oracle::new().differential(&program);
        let mut matrix = Matrix::new();
        matrix.absorb(&report);
        let json = render_oracle_json(&[OracleRecord { path: "demo.pnx".into(), report }], &matrix);
        assert!(json.contains("\"schema\": \"pncheck-oracle/1\""), "{json}");
        assert!(json.contains("\"verdict\": \"true-positive\""), "{json}");
        assert!(json.contains("\"kind\": \"oversized-placement\""), "{json}");
        assert!(json.contains("\"false_negatives\": 0"), "{json}");
        assert!(json.contains("\"agreement\": \"sound\""), "{json}");
    }

    #[test]
    fn stats_and_trace_embed_when_given() {
        use crate::trace::TraceCollector;
        use crate::{Analyzer, BatchEngine};
        use std::sync::Arc;
        let program = parse_program(VULNERABLE).unwrap();
        let trace = Arc::new(TraceCollector::new());
        let engine = BatchEngine::new(Analyzer::new()).with_jobs(1).with_trace(Arc::clone(&trace));
        let (reports, stats) = engine.scan_with_stats(std::slice::from_ref(&program));
        let record = FileRecord {
            path: "demo.pnx".into(),
            report: Some(reports[0].clone()),
            errors: Vec::new(),
        };
        let json = render_json(&[record], Some(&stats), Some(&trace.snapshot()));
        assert!(json.contains("\"stats\": {"), "{json}");
        assert!(json.contains("\"cache_misses\": 1"), "{json}");
        assert!(json.contains("\"counters\": {"), "{json}");
        assert!(json.contains("\"analysis.programs\": 1"), "{json}");
    }
}
