//! Pretty-printer: renders IR programs in the `.pnx` surface syntax.
//!
//! The printed form is the detector's on-disk format (see
//! [`parse`](crate::parse_program)): `parse(pretty(p)) == p` for every
//! well-formed program, a property the corpus tests assert over all 40+
//! programs and proptest asserts over generated ones.
//!
//! ```text
//! program listing-04-construction;
//!
//! class Student size 16;
//! class GradStudent size 32 : Student;
//!
//! global pool: char[72];
//!
//! fn main(uname: ptr tainted) {
//!     local stud: Student;
//!     local st: ptr;
//!     st = new (&stud) GradStudent();
//! }
//! ```

use std::fmt::Write as _;

use crate::ir::{CmpOp, Cond, Expr, Op, Program, Scope, Stmt, Ty, VarId};

/// Renders a program in the `.pnx` surface syntax.
pub fn pretty(program: &Program) -> String {
    let mut out = pretty_preamble(program);
    for f in &program.functions {
        out.push('\n');
        write_function(&mut out, program, f);
    }
    out
}

/// Renders the program preamble — name, classes, and globals — exactly
/// as [`pretty`] prints it. Every function's meaning depends on this
/// text (class sizes, inheritance, global types), so the per-function
/// content fingerprints the delta machinery computes include it: an
/// edited class invalidates every function honestly.
pub(crate) fn pretty_preamble(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {};", program.name);

    let mut classes: Vec<_> = program.classes.values().collect();
    classes.sort_by(|a, b| a.name.cmp(&b.name));
    if !classes.is_empty() {
        out.push('\n');
    }
    for c in classes {
        let _ = write!(out, "class {} size {}", c.name, c.size);
        if let Some(base) = &c.base {
            let _ = write!(out, " : {base}");
        }
        if c.polymorphic {
            out.push_str(" polymorphic");
        }
        out.push_str(";\n");
    }

    let globals: Vec<_> = program.vars.iter().filter(|v| v.scope == Scope::Global).collect();
    if !globals.is_empty() {
        out.push('\n');
    }
    for g in &globals {
        let _ = writeln!(out, "global {}: {};", g.name, ty(&g.ty));
    }
    out
}

/// Renders one function exactly as [`pretty`] prints it (no leading
/// blank line). The per-function half of the content identity behind
/// [`crate::FunctionSummaryRecord::fingerprint`].
pub(crate) fn pretty_function(program: &Program, f: &crate::ir::Function) -> String {
    let mut out = String::new();
    write_function(&mut out, program, f);
    out
}

fn write_function(out: &mut String, program: &Program, f: &crate::ir::Function) {
    let params: Vec<String> = f
        .vars
        .iter()
        .filter_map(|&id| {
            let v = program.var(id);
            match v.scope {
                Scope::Param { tainted } => Some(format!(
                    "{}: {}{}",
                    v.name,
                    ty(&v.ty),
                    if tainted { " tainted" } else { "" }
                )),
                _ => None,
            }
        })
        .collect();
    let _ = writeln!(out, "fn {}({}) {{", f.name, params.join(", "));
    for &id in &f.vars {
        let v = program.var(id);
        if v.scope == Scope::Local {
            let _ = writeln!(out, "    local {}: {};", v.name, ty(&v.ty));
        }
    }
    for stmt in &f.body {
        write_stmt(out, program, stmt, 1);
    }
    out.push_str("}\n");
}

fn ty(t: &Ty) -> String {
    match t {
        Ty::Int => "int".to_owned(),
        Ty::Char => "char".to_owned(),
        Ty::Double => "double".to_owned(),
        Ty::Ptr => "ptr".to_owned(),
        Ty::CharArray(Some(n)) => format!("char[{n}]"),
        Ty::CharArray(None) => "char[?]".to_owned(),
        Ty::Class(name) => name.clone(),
    }
}

fn var(program: &Program, v: VarId) -> String {
    program.var(v).name.clone()
}

fn expr(program: &Program, e: &Expr) -> String {
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Var(v) => var(program, *v),
        Expr::SizeOf(c) => format!("sizeof({c})"),
        Expr::AddrOf(v) => format!("&{}", var(program, *v)),
        Expr::Field(v, f) => format!("{}.{f}", var(program, *v)),
        Expr::BinOp(op, a, b) => {
            let sym = match op {
                Op::Add => "+",
                Op::Sub => "-",
                Op::Mul => "*",
            };
            format!("({} {sym} {})", expr(program, a), expr(program, b))
        }
    }
}

fn cmp(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
    }
}

fn cond(program: &Program, c: &Cond) -> String {
    format!("{} {} {}", expr(program, &c.lhs), cmp(c.op), expr(program, &c.rhs))
}

fn write_stmt(out: &mut String, p: &Program, stmt: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    match stmt {
        Stmt::Assign { dst, src, .. } => {
            let _ = writeln!(out, "{pad}{} = {};", var(p, *dst), expr(p, src));
        }
        Stmt::FieldStore { obj, field, src, .. } => {
            let _ = writeln!(out, "{pad}{}.{field} = {};", var(p, *obj), expr(p, src));
        }
        Stmt::ReadInput { dst, .. } => {
            let _ = writeln!(out, "{pad}read {};", var(p, *dst));
        }
        Stmt::RecvObject { dst, class, .. } => {
            let _ = writeln!(out, "{pad}recv {}: {class};", var(p, *dst));
        }
        Stmt::HeapNew { dst, class: Some(class), .. } => {
            let _ = writeln!(out, "{pad}{} = new {class}();", var(p, *dst));
        }
        Stmt::HeapNew { dst, class: None, count, .. } => {
            let count = count.as_ref().map_or_else(String::new, |c| expr(p, c));
            let _ = writeln!(out, "{pad}{} = new bytes[{count}];", var(p, *dst));
        }
        Stmt::PlacementNew { dst, arena, class, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| expr(p, a)).collect();
            let _ = writeln!(
                out,
                "{pad}{} = new ({}) {class}({});",
                var(p, *dst),
                expr(p, arena),
                args.join(", ")
            );
        }
        Stmt::PlacementNewArray { dst, arena, elem_size, count, .. } => {
            let _ = writeln!(
                out,
                "{pad}{} = new ({}) array[{elem_size}; {}];",
                var(p, *dst),
                expr(p, arena),
                expr(p, count)
            );
        }
        Stmt::Strncpy { dst, src, len, .. } => {
            let _ = writeln!(
                out,
                "{pad}strncpy({}, {}, {});",
                var(p, *dst),
                expr(p, src),
                expr(p, len)
            );
        }
        Stmt::Memset { dst, len, .. } => {
            let _ = writeln!(out, "{pad}memset({}, {});", var(p, *dst), expr(p, len));
        }
        Stmt::ReadSecret { dst, .. } => {
            let _ = writeln!(out, "{pad}read_secret {};", var(p, *dst));
        }
        Stmt::Output { src, .. } => {
            let _ = writeln!(out, "{pad}output {};", var(p, *src));
        }
        Stmt::Delete { ptr, as_class: Some(class), .. } => {
            let _ = writeln!(out, "{pad}delete ({class}*) {};", var(p, *ptr));
        }
        Stmt::Delete { ptr, as_class: None, .. } => {
            let _ = writeln!(out, "{pad}delete {};", var(p, *ptr));
        }
        Stmt::NullAssign { ptr, .. } => {
            let _ = writeln!(out, "{pad}{} = null;", var(p, *ptr));
        }
        Stmt::VirtualCall { obj, method, .. } => {
            let _ = writeln!(out, "{pad}vcall {}.{method}();", var(p, *obj));
        }
        Stmt::CallPtr { ptr, .. } => {
            let _ = writeln!(out, "{pad}callptr {};", var(p, *ptr));
        }
        Stmt::Return { .. } => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::Call { func, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| expr(p, a)).collect();
            let _ = writeln!(out, "{pad}call {func}({});", args.join(", "));
        }
        Stmt::If { cond: c, then_body, else_body, .. } => {
            let _ = writeln!(out, "{pad}if ({}) {{", cond(p, c));
            for s in then_body {
                write_stmt(out, p, s, depth + 1);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    write_stmt(out, p, s, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond: c, body, .. } => {
            let _ = writeln!(out, "{pad}while ({}) {{", cond(p, c));
            for s in body {
                write_stmt(out, p, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn prints_the_canonical_shape() {
        let mut p = ProgramBuilder::new("demo");
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), true);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut f = p.function("main");
        let uname = f.param("uname", Ty::Ptr, true);
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(8));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.strncpy(buf, Expr::Var(uname), Expr::mul(Expr::Var(n), Expr::Const(9)));
        f.finish();
        let text = pretty(&p.build());

        assert!(text.contains("program demo;"));
        assert!(text.contains("class GradStudent size 32 : Student polymorphic;"));
        assert!(text.contains("global pool: char[72];"));
        assert!(text.contains("fn main(uname: ptr tainted) {"));
        assert!(text.contains("    local n: int;"));
        assert!(text.contains("    if (n > 8) {"));
        assert!(text.contains("        return;"));
        assert!(text.contains("    buf = new (&pool) array[9; n];"));
        assert!(text.contains("    strncpy(buf, uname, (n * 9));"));
    }

    #[test]
    fn prints_every_statement_form() {
        let mut p = ProgramBuilder::new("all");
        p.class("C", 8, None, false);
        let g = p.global("g", Ty::Class("C".into()));
        let mut f = p.function("f");
        let x = f.local("x", Ty::Int);
        let q = f.local("q", Ty::Ptr);
        f.assign(x, Expr::add(Expr::Const(-1), Expr::SizeOf("C".into())));
        f.field_store(q, "fld", Expr::Field(q, "other".to_owned()));
        f.recv_object(q, "C");
        f.heap_new(q, "C");
        f.heap_new_array(q, Expr::Const(4));
        f.placement_new_with(q, Expr::addr_of(g), "C", vec![Expr::Var(x)]);
        f.memset(q, Expr::Const(8));
        f.read_secret(q);
        f.output(q);
        f.delete(q, Some("C"));
        f.delete(q, None);
        f.null_assign(q);
        f.virtual_call(q, "m");
        f.call_ptr(q);
        f.while_start(Expr::Var(x), CmpOp::Ne, Expr::Const(0));
        f.assign(x, Expr::BinOp(Op::Sub, Box::new(Expr::Var(x)), Box::new(Expr::Const(1))));
        f.end_while();
        f.finish();
        let text = pretty(&p.build());
        for needle in [
            "x = (-1 + sizeof(C));",
            "q.fld = q.other;",
            "recv q: C;",
            "q = new C();",
            "q = new bytes[4];",
            "q = new (&g) C(x);",
            "memset(q, 8);",
            "read_secret q;",
            "output q;",
            "delete (C*) q;",
            "delete q;",
            "q = null;",
            "vcall q.m();",
            "callptr q;",
            "while (x != 0) {",
            "x = (x - 1);",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn else_branches_render() {
        let mut p = ProgramBuilder::new("e");
        let mut f = p.function("f");
        let x = f.local("x", Ty::Int);
        f.if_start(Expr::Var(x), CmpOp::Eq, Expr::Const(0));
        f.assign(x, Expr::Const(1));
        f.else_branch();
        f.assign(x, Expr::Const(2));
        f.end_if();
        f.finish();
        let text = pretty(&p.build());
        assert!(text.contains("} else {"));
    }
}
