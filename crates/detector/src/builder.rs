//! Fluent construction of IR programs.
//!
//! Corpus programs are written with this builder, which auto-assigns
//! variable ids and statement sites.

use std::collections::HashMap;

use crate::ir::{
    ClassInfo, CmpOp, Cond, Expr, Function, Program, Scope, Site, Span, Stmt, Ty, VarId, VarInfo,
};

/// Builds a [`Program`].
///
/// # Examples
///
/// ```
/// use pnew_detector::{Expr, ProgramBuilder, Ty};
///
/// let mut p = ProgramBuilder::new("listing-4");
/// p.class("Student", 16, None, false);
/// p.class("GradStudent", 32, Some("Student"), false);
/// let program = {
///     let mut f = p.function("main");
///     let stud = f.local("stud", Ty::Class("Student".into()));
///     let st = f.local("st", Ty::Ptr);
///     f.placement_new(st, Expr::addr_of(stud), "GradStudent");
///     f.finish();
///     p.build()
/// };
/// assert_eq!(program.functions.len(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    classes: HashMap<String, ClassInfo>,
    vars: Vec<VarInfo>,
    functions: Vec<Function>,
}

impl ProgramBuilder {
    /// Starts a program.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_owned(),
            classes: HashMap::new(),
            vars: Vec::new(),
            functions: Vec::new(),
        }
    }

    /// Declares a class with its `sizeof`, base and polymorphism flag.
    pub fn class(&mut self, name: &str, size: u32, base: Option<&str>, polymorphic: bool) {
        self.classes.insert(
            name.to_owned(),
            ClassInfo { name: name.to_owned(), size, base: base.map(str::to_owned), polymorphic },
        );
    }

    /// Declares a global variable.
    pub fn global(&mut self, name: &str, ty: Ty) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo { id, name: name.to_owned(), ty, scope: Scope::Global });
        id
    }

    /// Starts a function body.
    pub fn function(&mut self, name: &str) -> FunctionBuilder<'_> {
        FunctionBuilder {
            program: self,
            name: name.to_owned(),
            vars: Vec::new(),
            body_stack: vec![Vec::new()],
            else_open: Vec::new(),
            next_line: 1,
            pending_span: None,
        }
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            classes: self.classes,
            vars: self.vars,
            functions: self.functions,
        }
    }
}

/// Builds one function; statements go to the innermost open block.
#[derive(Debug)]
pub struct FunctionBuilder<'p> {
    program: &'p mut ProgramBuilder,
    name: String,
    vars: Vec<VarId>,
    body_stack: Vec<Vec<Stmt>>,
    else_open: Vec<bool>,
    next_line: u32,
    pending_span: Option<Span>,
}

impl FunctionBuilder<'_> {
    fn site(&mut self) -> Site {
        let line = self.next_line;
        self.next_line += 1;
        Site { function: self.name.clone(), line, span: self.pending_span.take() }
    }

    /// Attaches a precise source span to the *next* statement built.
    ///
    /// Used by the parser; builder-made programs have no source text to
    /// point into, so their sites carry no span.
    pub fn with_next_span(&mut self, span: Span) {
        self.pending_span = Some(span);
    }

    fn push(&mut self, stmt: Stmt) {
        self.body_stack.last_mut().expect("an open block always exists").push(stmt);
    }

    fn declare(&mut self, name: &str, ty: Ty, scope: Scope) -> VarId {
        let id = VarId(self.program.vars.len() as u32);
        self.program.vars.push(VarInfo { id, name: name.to_owned(), ty, scope });
        self.vars.push(id);
        id
    }

    /// Declares a parameter; tainted parameters model untrusted inputs
    /// (`char *uname` from the network).
    pub fn param(&mut self, name: &str, ty: Ty, tainted: bool) -> VarId {
        self.declare(name, ty, Scope::Param { tainted })
    }

    /// Declares a local.
    pub fn local(&mut self, name: &str, ty: Ty) -> VarId {
        self.declare(name, ty, Scope::Local)
    }

    /// `dst = src;`
    pub fn assign(&mut self, dst: VarId, src: Expr) {
        let site = self.site();
        self.push(Stmt::Assign { site, dst, src });
    }

    /// `obj.field = src;`
    pub fn field_store(&mut self, obj: VarId, field: &str, src: Expr) {
        let site = self.site();
        self.push(Stmt::FieldStore { site, obj, field: field.to_owned(), src });
    }

    /// `cin >> dst;`
    pub fn read_input(&mut self, dst: VarId) {
        let site = self.site();
        self.push(Stmt::ReadInput { site, dst });
    }

    /// `dst = service.recv<Class>();`
    pub fn recv_object(&mut self, dst: VarId, class: &str) {
        let site = self.site();
        self.push(Stmt::RecvObject { site, dst, class: class.to_owned() });
    }

    /// `dst = new Class();`
    pub fn heap_new(&mut self, dst: VarId, class: &str) {
        let site = self.site();
        self.push(Stmt::HeapNew { site, dst, class: Some(class.to_owned()), count: None });
    }

    /// `dst = new char[count];`
    pub fn heap_new_array(&mut self, dst: VarId, count: Expr) {
        let site = self.site();
        self.push(Stmt::HeapNew { site, dst, class: None, count: Some(count) });
    }

    /// `dst = new (arena) Class();`
    pub fn placement_new(&mut self, dst: VarId, arena: Expr, class: &str) {
        self.placement_new_with(dst, arena, class, Vec::new());
    }

    /// `dst = new (arena) Class(args…);` — e.g. a copy constructor taking
    /// a received object.
    pub fn placement_new_with(&mut self, dst: VarId, arena: Expr, class: &str, args: Vec<Expr>) {
        let site = self.site();
        self.push(Stmt::PlacementNew { site, dst, arena, class: class.to_owned(), args });
    }

    /// `dst = new (arena) char[count * elem_size];`
    pub fn placement_new_array(&mut self, dst: VarId, arena: Expr, elem_size: u32, count: Expr) {
        let site = self.site();
        self.push(Stmt::PlacementNewArray { site, dst, arena, elem_size, count });
    }

    /// `strncpy(dst, src, len);`
    pub fn strncpy(&mut self, dst: VarId, src: Expr, len: Expr) {
        let site = self.site();
        self.push(Stmt::Strncpy { site, dst, src, len });
    }

    /// `memset(dst, 0, len);`
    pub fn memset(&mut self, dst: VarId, len: Expr) {
        let site = self.site();
        self.push(Stmt::Memset { site, dst, len });
    }

    /// Reads secret bytes (password file) into `dst`.
    pub fn read_secret(&mut self, dst: VarId) {
        let site = self.site();
        self.push(Stmt::ReadSecret { site, dst });
    }

    /// Ships `src` to the outside world.
    pub fn output(&mut self, src: VarId) {
        let site = self.site();
        self.push(Stmt::Output { site, src });
    }

    /// `delete ptr;` (optionally typed `delete (Class*)ptr`).
    pub fn delete(&mut self, ptr: VarId, as_class: Option<&str>) {
        let site = self.site();
        self.push(Stmt::Delete { site, ptr, as_class: as_class.map(str::to_owned) });
    }

    /// `ptr = NULL;`
    pub fn null_assign(&mut self, ptr: VarId) {
        let site = self.site();
        self.push(Stmt::NullAssign { site, ptr });
    }

    /// `obj->method()` via the vtable.
    pub fn virtual_call(&mut self, obj: VarId, method: &str) {
        let site = self.site();
        self.push(Stmt::VirtualCall { site, obj, method: method.to_owned() });
    }

    /// Call through a function pointer.
    pub fn call_ptr(&mut self, ptr: VarId) {
        let site = self.site();
        self.push(Stmt::CallPtr { site, ptr });
    }

    /// `return;`
    pub fn ret(&mut self) {
        let site = self.site();
        self.push(Stmt::Return { site });
    }

    /// `call f(args…);` — a direct call to another function defined in
    /// the same program.
    pub fn call(&mut self, func: &str, args: Vec<Expr>) {
        let site = self.site();
        self.push(Stmt::Call { site, func: func.to_owned(), args });
    }

    /// Opens `if (lhs op rhs) { … }`; close with [`end_if`](Self::end_if)
    /// (optionally after [`else_branch`](Self::else_branch)).
    pub fn if_start(&mut self, lhs: Expr, op: CmpOp, rhs: Expr) {
        let site = self.site();
        // Park the If header in the current block with empty bodies; its
        // bodies are filled when the block closes.
        self.push(Stmt::If {
            site,
            cond: Cond { lhs, op, rhs },
            then_body: Vec::new(),
            else_body: Vec::new(),
        });
        self.body_stack.push(Vec::new());
        self.else_open.push(false);
    }

    /// Switches from the then-branch to the else-branch.
    ///
    /// # Panics
    ///
    /// Panics if no `if` is open.
    pub fn else_branch(&mut self) {
        let then_body = self.body_stack.pop().expect("open then-branch");
        let parent = self.body_stack.last_mut().expect("parent block");
        match parent.last_mut() {
            Some(Stmt::If { then_body: t, .. }) => *t = then_body,
            _ => panic!("else_branch without a matching if_start"),
        }
        *self.else_open.last_mut().expect("open if") = true;
        self.body_stack.push(Vec::new());
    }

    /// Closes the innermost `if`.
    ///
    /// # Panics
    ///
    /// Panics if no `if` is open.
    pub fn end_if(&mut self) {
        let branch = self.body_stack.pop().expect("open branch");
        let in_else = self.else_open.pop().expect("open if");
        let parent = self.body_stack.last_mut().expect("parent block");
        match parent.last_mut() {
            Some(Stmt::If { then_body, else_body, .. }) => {
                if in_else {
                    *else_body = branch;
                } else {
                    *then_body = branch;
                }
            }
            _ => panic!("end_if without a matching if_start"),
        }
    }

    /// Opens `while (lhs op rhs) { … }`; close with
    /// [`end_while`](Self::end_while).
    pub fn while_start(&mut self, lhs: Expr, op: CmpOp, rhs: Expr) {
        let site = self.site();
        self.push(Stmt::While { site, cond: Cond { lhs, op, rhs }, body: Vec::new() });
        self.body_stack.push(Vec::new());
    }

    /// Closes the innermost `while`.
    ///
    /// # Panics
    ///
    /// Panics if no `while` is open.
    pub fn end_while(&mut self) {
        let body = self.body_stack.pop().expect("open loop body");
        let parent = self.body_stack.last_mut().expect("parent block");
        match parent.last_mut() {
            Some(Stmt::While { body: b, .. }) => *b = body,
            _ => panic!("end_while without a matching while_start"),
        }
    }

    /// Force-closes any still-open `if`/`while` blocks, attaching each
    /// collected branch to its header.
    ///
    /// Used by parser error recovery so a partially parsed function can
    /// still be finished without panicking.
    pub(crate) fn close_open_blocks(&mut self) {
        while self.body_stack.len() > 1 {
            let branch = self.body_stack.pop().expect("open block");
            let parent = self.body_stack.last_mut().expect("parent block");
            match parent.last_mut() {
                Some(Stmt::If { then_body, else_body, .. }) => {
                    let in_else = self.else_open.pop().unwrap_or(false);
                    if in_else {
                        *else_body = branch;
                    } else {
                        *then_body = branch;
                    }
                }
                Some(Stmt::While { body, .. }) => *body = branch,
                // A block can only be opened by an if/while header, so
                // there is nothing sensible to attach to here; the
                // recovered statements are dropped.
                _ => {}
            }
        }
    }

    /// Finishes the function and registers it on the program.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open.
    pub fn finish(self) {
        assert_eq!(self.body_stack.len(), 1, "unclosed if/while block in {}", self.name);
        let body = self.body_stack.into_iter().next().expect("root block");
        self.program.functions.push(Function { name: self.name, vars: self.vars, body });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_listing_4_shape() {
        let mut p = ProgramBuilder::new("t");
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let prog = p.build();
        assert_eq!(prog.vars.len(), 2);
        assert_eq!(prog.functions[0].body.len(), 1);
        assert_eq!(prog.stmt_count(), 1);
        assert_eq!(prog.functions[0].body[0].site().line, 1);
    }

    #[test]
    fn nested_blocks() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("f");
        let n = f.local("n", Ty::Int);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(0));
        f.assign(n, Expr::Const(1));
        f.else_branch();
        f.assign(n, Expr::Const(2));
        f.end_if();
        f.while_start(Expr::Var(n), CmpOp::Lt, Expr::Const(10));
        f.assign(n, Expr::add(Expr::Var(n), Expr::Const(1)));
        f.end_while();
        f.finish();
        let prog = p.build();
        let body = &prog.functions[0].body;
        assert_eq!(body.len(), 3); // read, if, while
        match &body[1] {
            Stmt::If { then_body, else_body, .. } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected If, got {other:?}"),
        }
        match &body[2] {
            Stmt::While { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("expected While, got {other:?}"),
        }
        assert_eq!(prog.stmt_count(), 6);
    }

    #[test]
    fn if_without_else() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("f");
        let n = f.local("n", Ty::Int);
        f.if_start(Expr::Var(n), CmpOp::Eq, Expr::Const(0));
        f.assign(n, Expr::Const(5));
        f.end_if();
        f.finish();
        let prog = p.build();
        match &prog.functions[0].body[0] {
            Stmt::If { then_body, else_body, .. } => {
                assert_eq!(then_body.len(), 1);
                assert!(else_body.is_empty());
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_block_panics() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("f");
        let n = f.local("n", Ty::Int);
        f.if_start(Expr::Var(n), CmpOp::Eq, Expr::Const(0));
        f.finish();
    }

    #[test]
    fn params_carry_taint_flags() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("f");
        let uname = f.param("uname", Ty::Ptr, true);
        let clean = f.param("cfg", Ty::Ptr, false);
        f.finish();
        let prog = p.build();
        assert_eq!(prog.var(uname).scope, Scope::Param { tainted: true });
        assert_eq!(prog.var(clean).scope, Scope::Param { tainted: false });
    }
}
