//! Static-analysis detector for placement-new vulnerabilities.
//!
//! §7 of *"A New Class of Buffer Overflow Attacks"* (Kundu & Bertino,
//! ICDCS 2011) announces "a tool for static analysis of code and for
//! detecting vulnerabilities due to placement new"; §1 claims no existing
//! tool covers the class. This crate builds that tool and the experiment
//! around the claim:
//!
//! * an [`ir`] for C++-like programs (the corpus encodes every listing of
//!   the paper in it), with a fluent [`ProgramBuilder`];
//! * the [`Analyzer`] — constant propagation, region-size inference with
//!   alias tracking, taint analysis, and arena-lifecycle state, reporting
//!   the §3/§4 vulnerability taxonomy as typed [`Finding`]s;
//! * the [`BatchEngine`] — a parallel, cache-aware scanner that runs the
//!   analyzer over whole corpora on scoped worker threads, memoizing
//!   reports behind a content-fingerprint cache while keeping output
//!   ordering deterministic;
//! * the [`BaselineChecker`] — a stand-in for traditional overflow tools
//!   that knows classic copy-overflows but has no concept of placement
//!   new, used to reproduce the paper's coverage-gap claim (E21);
//! * the [`server`] — `pncheckd`, the detector as a persistent service:
//!   one warm [`BatchEngine`] per configuration behind a versioned
//!   newline-delimited JSON protocol over stdio or TCP.
//!
//! # Examples
//!
//! ```
//! use pnew_detector::{Analyzer, BaselineChecker, Expr, ProgramBuilder, Ty};
//!
//! // Listing 4: GradStudent placed at &stud.
//! let mut p = ProgramBuilder::new("listing-4");
//! p.class("Student", 16, None, false);
//! p.class("GradStudent", 32, Some("Student"), false);
//! let mut f = p.function("main");
//! let stud = f.local("stud", Ty::Class("Student".into()));
//! let st = f.local("st", Ty::Ptr);
//! f.placement_new(st, Expr::addr_of(stud), "GradStudent");
//! f.finish();
//! let program = p.build();
//!
//! assert!(Analyzer::new().analyze(&program).detected());
//! assert!(!BaselineChecker::new().analyze(&program).detected()); // the gap
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod backend;
mod baseline;
pub mod batch;
mod builder;
pub mod cache;
pub mod cliopts;
pub mod delta;
pub mod emit;
pub mod eventloop;
pub mod exec;
mod findings;
mod fixer;
pub mod ir;
pub mod oracle;
mod parse;
mod pretty;
pub mod server;
mod summary;
pub mod trace;

pub use analysis::{Analyzer, AnalyzerConfig};
pub use backend::{BackendKind, CacheBackend, DirBackend, IndexedBackend};
pub use baseline::BaselineChecker;
pub use batch::{
    fingerprint, BatchEngine, BatchStats, CacheStats, DeltaStats, ShardSpec, SourceOutcome,
    TrackedOutcome,
};
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use cache::{
    source_fingerprint, CacheLookup, CachedAnalysis, PersistentCache, PersistentCacheStats,
};
pub use delta::{invalidation_cone, ConeStats};
pub use exec::{ExecEvent, ExecEventKind, ExecOutcome, Executor};
pub use findings::{Finding, FindingKind, Report, Severity};
pub use fixer::{AppliedFix, Fixer};
pub use ir::{
    ClassInfo, CmpOp, Cond, Expr, Function, Op, Program, Scope, Site, Span, Stmt, Symbol,
    SymbolTable, Ty, VarId,
};
pub use oracle::{DifferentialReport, Matrix, Oracle, SiteVerdict, Verdict};
pub use parse::{parse_program, parse_program_recovering, ParseError, MAX_ERRORS};
pub use pretty::pretty as pretty_program;
pub use summary::{FunctionSummaryRecord, SummaryDep};
