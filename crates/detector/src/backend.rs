//! Storage backends behind [`crate::PersistentCache`].
//!
//! The cache's *semantics* — entry encoding, checksums, schema/config
//! staleness, corrupt-entry healing — live in [`crate::cache`] and are
//! backend-independent. A [`CacheBackend`] only moves opaque bytes:
//! load/store an entry by its 128-bit source fingerprint, plus
//! load/store the delta manifest text. Two layouts ship:
//!
//! * [`DirBackend`] — one `<key in hex>.pnc` file per entry plus
//!   `manifest.pnm`, written via unique temp names (pid + a
//!   process-wide monotonic nonce) and `rename`, so any number of
//!   processes can share one directory without ever clobbering each
//!   other's in-flight temp files or serving a half-written entry.
//! * [`IndexedBackend`] — a single append-only file (`cache.pnxi`)
//!   with an in-memory index built by scanning it on open. Every
//!   record carries its own checksum, so a torn tail from a crash is
//!   detected and truncated on the next open; when dead (superseded)
//!   bytes outweigh live ones the file is compacted through a temp +
//!   `rename`, so a kill mid-compaction leaves the original file
//!   authoritative. One writer per file: replicas in a fleet each own
//!   their shard's store (use `dir` when processes must share).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::cache::fnv64;

/// Process-wide monotonic counter for temp-file names. A pid alone is
/// not unique enough: two engines in one daemon (or a recycled pid on
/// a shared cache dir) can race the same key, and a fixed name would
/// let one writer rename the other's half-written temp into place.
static TEMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// A temp-name component unique within this process for its lifetime.
pub(crate) fn temp_nonce() -> u64 {
    TEMP_NONCE.fetch_add(1, Ordering::Relaxed)
}

/// Which on-disk layout a cache directory uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// One `.pnc` file per entry (multi-process safe; the default).
    Dir,
    /// One append-only indexed file, `cache.pnxi` (single writer,
    /// fewer inodes, one sequential read to warm).
    Indexed,
}

impl BackendKind {
    /// Parses a `--cache-backend` value.
    pub fn parse(text: &str) -> Result<BackendKind, String> {
        match text {
            "dir" => Ok(BackendKind::Dir),
            "indexed" => Ok(BackendKind::Indexed),
            other => Err(format!("unknown cache backend {other:?} (expected dir or indexed)")),
        }
    }

    /// The flag spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Dir => "dir",
            BackendKind::Indexed => "indexed",
        }
    }
}

/// Byte storage for one cache directory. Implementations are shared
/// across scan worker threads, so every method takes `&self` and must
/// be internally synchronized.
pub trait CacheBackend: Send + Sync + fmt::Debug {
    /// The flag spelling of this backend ("dir", "indexed").
    fn name(&self) -> &'static str;
    /// Raw bytes of the entry stored under `key`, if any. Backends do
    /// not validate entry contents — the caller's decode layer
    /// classifies stale and corrupt bytes.
    fn load(&self, key: u128) -> Option<Vec<u8>>;
    /// Durably stores `bytes` under `key`, replacing any prior entry.
    /// Concurrent readers must see the old entry or the new one in
    /// full, never a mix.
    fn store(&self, key: u128, bytes: &[u8]) -> io::Result<()>;
    /// The delta manifest text, if one has been stored.
    fn load_manifest(&self) -> Option<String>;
    /// Durably stores the delta manifest text.
    fn store_manifest(&self, text: &str) -> io::Result<()>;
}

// ---------------------------------------------------------------------
// Directory-of-files backend
// ---------------------------------------------------------------------

/// The manifest file name inside a `dir`-backend cache directory.
pub(crate) const MANIFEST_FILE: &str = "manifest.pnm";

/// One file per entry: `<dir>/<key in hex>.pnc` plus
/// `<dir>/manifest.pnm`, each written atomically via a uniquely named
/// temp file and `rename`.
#[derive(Debug)]
pub struct DirBackend {
    dir: PathBuf,
}

impl DirBackend {
    /// Opens (creating if needed) the directory and probes it for
    /// writability, so an unusable cache fails fast instead of
    /// degrading every later store.
    pub fn open(dir: &Path) -> io::Result<DirBackend> {
        fs::create_dir_all(dir)?;
        let probe = dir.join(format!(".probe-{}-{}.tmp", std::process::id(), temp_nonce()));
        fs::File::create(&probe).and_then(|mut f| f.write_all(b"pnx"))?;
        fs::remove_file(&probe)?;
        Ok(DirBackend { dir: dir.to_path_buf() })
    }

    fn entry_path(&self, key: u128) -> PathBuf {
        self.dir.join(format!("{key:032x}.pnc"))
    }

    fn write_atomic(&self, stem: &str, target: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!(".{stem}.{}-{}.tmp", std::process::id(), temp_nonce()));
        let wrote = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(bytes))
            .and_then(|()| fs::rename(&tmp, target));
        if wrote.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        wrote
    }
}

impl CacheBackend for DirBackend {
    fn name(&self) -> &'static str {
        "dir"
    }

    fn load(&self, key: u128) -> Option<Vec<u8>> {
        fs::read(self.entry_path(key)).ok()
    }

    fn store(&self, key: u128, bytes: &[u8]) -> io::Result<()> {
        self.write_atomic(&format!("{key:032x}"), &self.entry_path(key), bytes)
    }

    fn load_manifest(&self) -> Option<String> {
        fs::read_to_string(self.dir.join(MANIFEST_FILE)).ok()
    }

    fn store_manifest(&self, text: &str) -> io::Result<()> {
        self.write_atomic("manifest", &self.dir.join(MANIFEST_FILE), text.as_bytes())
    }
}

// ---------------------------------------------------------------------
// Single-file indexed backend
// ---------------------------------------------------------------------

/// The store file name inside an `indexed`-backend cache directory.
pub(crate) const INDEX_FILE: &str = "cache.pnxi";
const INDEX_MAGIC: &[u8; 8] = b"PNXINDEX";
const INDEX_VERSION: u32 = 1;
/// File header: magic + container format version.
const HEADER_LEN: u64 = 12;
const RECORD_MAGIC: &[u8; 4] = b"PNXR";
const REC_ENTRY: u8 = 1;
const REC_MANIFEST: u8 = 2;
/// Record framing around the payload: magic(4) + kind(1) + key(16) +
/// len(4) before it, fnv64 checksum(8) after it.
const RECORD_OVERHEAD: u64 = 4 + 1 + 16 + 4 + 8;
/// Don't bother compacting until at least this many dead bytes exist.
const COMPACT_MIN_DEAD: u64 = 4096;

/// Location of one live record's payload inside the store file.
#[derive(Debug, Clone, Copy)]
struct Slot {
    payload_at: u64,
    payload_len: u32,
}

impl Slot {
    fn record_bytes(self) -> u64 {
        RECORD_OVERHEAD + u64::from(self.payload_len)
    }
}

#[derive(Debug)]
struct IndexedInner {
    file: fs::File,
    /// Latest live entry record per fingerprint.
    index: HashMap<u128, Slot>,
    /// Latest live manifest record.
    manifest: Option<Slot>,
    /// Append position (== validated file length).
    end: u64,
    live_bytes: u64,
    dead_bytes: u64,
}

/// A single append-only store file with an in-memory fingerprint
/// index. Superseded records become dead bytes and are dropped by
/// compaction on a later open.
#[derive(Debug)]
pub struct IndexedBackend {
    path: PathBuf,
    inner: Mutex<IndexedInner>,
}

/// What a full scan of the store file found.
struct Scan {
    index: HashMap<u128, Slot>,
    manifest: Option<Slot>,
    /// Length of the validated prefix; anything after it is a torn
    /// tail from an interrupted append.
    valid_len: u64,
    live_bytes: u64,
    dead_bytes: u64,
}

/// Scans `bytes` as a store file. `Err` means the file is not ours
/// (foreign magic or an unknown container version) — the caller fails
/// fast rather than destroying data. Torn or checksum-failing records
/// end the scan: everything before them is kept, the tail is dropped.
fn scan_records(bytes: &[u8]) -> io::Result<Scan> {
    let mut scan =
        Scan { index: HashMap::new(), manifest: None, valid_len: 0, live_bytes: 0, dead_bytes: 0 };
    if bytes.is_empty() {
        return Ok(scan);
    }
    if bytes.len() < HEADER_LEN as usize || &bytes[..8] != INDEX_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a pnx indexed cache file (foreign or truncated header)",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != INDEX_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported indexed cache version {version}"),
        ));
    }
    let mut pos = HEADER_LEN;
    scan.valid_len = pos;
    let total = bytes.len() as u64;
    while pos < total {
        // Record header: magic + kind + key + payload len.
        let head_end = pos + 4 + 1 + 16 + 4;
        if head_end > total {
            break; // torn mid-header
        }
        let head = &bytes[pos as usize..head_end as usize];
        if &head[..4] != RECORD_MAGIC {
            break; // scribbled-over tail
        }
        let kind = head[4];
        let key = u128::from_le_bytes(head[5..21].try_into().expect("16 bytes"));
        let payload_len = u32::from_le_bytes(head[21..25].try_into().expect("4 bytes"));
        let payload_at = head_end;
        let check_end =
            match payload_at.checked_add(u64::from(payload_len)).and_then(|e| e.checked_add(8)) {
                Some(e) if e <= total => e,
                _ => break, // torn mid-payload
            };
        let payload = &bytes[payload_at as usize..(payload_at + u64::from(payload_len)) as usize];
        let stored = u64::from_le_bytes(
            bytes[(check_end - 8) as usize..check_end as usize].try_into().expect("8 bytes"),
        );
        if fnv64(payload) != stored {
            break; // torn or bit-rotted: drop from here on
        }
        let slot = Slot { payload_at, payload_len };
        match kind {
            REC_ENTRY => {
                if let Some(old) = scan.index.insert(key, slot) {
                    scan.dead_bytes += old.record_bytes();
                    scan.live_bytes -= old.record_bytes();
                }
                scan.live_bytes += slot.record_bytes();
            }
            REC_MANIFEST => {
                if let Some(old) = scan.manifest.replace(slot) {
                    scan.dead_bytes += old.record_bytes();
                    scan.live_bytes -= old.record_bytes();
                }
                scan.live_bytes += slot.record_bytes();
            }
            _ => {
                // A record kind from the future: keep it as dead bytes
                // so this binary never misreads it, but don't truncate
                // — the checksum proved it intact.
                scan.dead_bytes += slot.record_bytes();
            }
        }
        pos = check_end;
        scan.valid_len = pos;
    }
    Ok(scan)
}

/// Frames one record: header + payload + checksum.
fn encode_record(kind: u8, key: u128, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + RECORD_OVERHEAD as usize);
    out.extend_from_slice(RECORD_MAGIC);
    out.push(kind);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

impl IndexedBackend {
    /// Opens (creating if needed) `<dir>/cache.pnxi`, scans it to
    /// build the index, truncates any torn tail, discards any stale
    /// compaction temp from a killed process, and compacts when dead
    /// bytes outweigh live ones.
    pub fn open(dir: &Path) -> io::Result<IndexedBackend> {
        fs::create_dir_all(dir)?;
        let path = dir.join(INDEX_FILE);
        // A temp left by a compaction that died before its rename: the
        // main file is still authoritative (rename is atomic), so the
        // temp is garbage regardless of its contents.
        let _ = fs::remove_file(compact_tmp_path(&path));

        let mut bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut scan = scan_records(&bytes)?;

        if !bytes.is_empty()
            && scan.dead_bytes > scan.live_bytes
            && scan.dead_bytes >= COMPACT_MIN_DEAD
        {
            bytes = compact_bytes(&bytes, &scan);
            let tmp = compact_tmp_path(&path);
            fs::File::create(&tmp)
                .and_then(|mut f| f.write_all(&bytes))
                .and_then(|()| fs::rename(&tmp, &path))
                .inspect_err(|_| {
                    let _ = fs::remove_file(&tmp);
                })?;
            scan = scan_records(&bytes)?;
        }

        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let end = if bytes.is_empty() {
            file.write_all(INDEX_MAGIC)?;
            file.write_all(&INDEX_VERSION.to_le_bytes())?;
            HEADER_LEN
        } else {
            if scan.valid_len < bytes.len() as u64 {
                file.set_len(scan.valid_len)?; // drop the torn tail
            }
            scan.valid_len
        };
        Ok(IndexedBackend {
            path,
            inner: Mutex::new(IndexedInner {
                file,
                index: scan.index,
                manifest: scan.manifest,
                end,
                live_bytes: scan.live_bytes,
                dead_bytes: scan.dead_bytes,
            }),
        })
    }

    /// The store file path (for tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, IndexedInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn read_slot(inner: &mut IndexedInner, slot: Slot) -> Option<Vec<u8>> {
        let mut buf = vec![0u8; slot.payload_len as usize];
        inner.file.seek(SeekFrom::Start(slot.payload_at)).ok()?;
        inner.file.read_exact(&mut buf).ok()?;
        Some(buf)
    }

    fn append(&self, kind: u8, key: u128, payload: &[u8]) -> io::Result<()> {
        let record = encode_record(kind, key, payload);
        let mut inner = self.lock();
        let at = inner.end;
        let wrote =
            inner.file.seek(SeekFrom::Start(at)).and_then(|_| inner.file.write_all(&record));
        if let Err(e) = wrote {
            // Drop any partial append so the in-memory picture and the
            // file stay consistent; a crash before this set_len is
            // what the torn-tail truncation on open handles.
            let _ = inner.file.set_len(at);
            return Err(e);
        }
        let slot =
            Slot { payload_at: at + (RECORD_OVERHEAD - 8), payload_len: payload.len() as u32 };
        let replaced = match kind {
            REC_MANIFEST => inner.manifest.replace(slot),
            _ => inner.index.insert(key, slot),
        };
        if let Some(old) = replaced {
            inner.dead_bytes += old.record_bytes();
            inner.live_bytes -= old.record_bytes();
        }
        inner.live_bytes += slot.record_bytes();
        inner.end = at + record.len() as u64;
        Ok(())
    }
}

fn compact_tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".compact.tmp");
    path.with_file_name(name)
}

/// Rewrites only the live records (key order, manifest last) into a
/// fresh store image.
fn compact_bytes(bytes: &[u8], scan: &Scan) -> Vec<u8> {
    let mut out = Vec::with_capacity((HEADER_LEN + scan.live_bytes) as usize);
    out.extend_from_slice(INDEX_MAGIC);
    out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
    let mut keys: Vec<u128> = scan.index.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let slot = scan.index[&key];
        let payload = &bytes
            [slot.payload_at as usize..(slot.payload_at + u64::from(slot.payload_len)) as usize];
        out.extend_from_slice(&encode_record(REC_ENTRY, key, payload));
    }
    if let Some(slot) = scan.manifest {
        let payload = &bytes
            [slot.payload_at as usize..(slot.payload_at + u64::from(slot.payload_len)) as usize];
        out.extend_from_slice(&encode_record(REC_MANIFEST, 0, payload));
    }
    out
}

impl CacheBackend for IndexedBackend {
    fn name(&self) -> &'static str {
        "indexed"
    }

    fn load(&self, key: u128) -> Option<Vec<u8>> {
        let mut inner = self.lock();
        let slot = *inner.index.get(&key)?;
        Self::read_slot(&mut inner, slot)
    }

    fn store(&self, key: u128, bytes: &[u8]) -> io::Result<()> {
        self.append(REC_ENTRY, key, bytes)
    }

    fn load_manifest(&self) -> Option<String> {
        let mut inner = self.lock();
        let slot = inner.manifest?;
        String::from_utf8(Self::read_slot(&mut inner, slot)?).ok()
    }

    fn store_manifest(&self, text: &str) -> io::Result<()> {
        self.append(REC_MANIFEST, 0, text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pnx-backend-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn backend_kind_parses_both_spellings_and_rejects_junk() {
        assert_eq!(BackendKind::parse("dir"), Ok(BackendKind::Dir));
        assert_eq!(BackendKind::parse("indexed"), Ok(BackendKind::Indexed));
        assert!(BackendKind::parse("sqlite").is_err());
        assert!(BackendKind::parse("").is_err());
        assert_eq!(BackendKind::Dir.name(), "dir");
        assert_eq!(BackendKind::Indexed.name(), "indexed");
    }

    #[test]
    fn indexed_store_round_trips_entries_and_manifest() {
        let dir = tmp_dir("indexed-roundtrip");
        let be = IndexedBackend::open(&dir).unwrap();
        assert_eq!(be.load(1), None);
        assert_eq!(be.load_manifest(), None);
        be.store(1, b"alpha").unwrap();
        be.store(2, b"beta").unwrap();
        be.store(1, b"alpha-v2").unwrap(); // latest wins
        be.store_manifest("pnx-delta-manifest/1\n").unwrap();
        assert_eq!(be.load(1).as_deref(), Some(b"alpha-v2".as_slice()));
        assert_eq!(be.load(2).as_deref(), Some(b"beta".as_slice()));
        assert_eq!(be.load_manifest().as_deref(), Some("pnx-delta-manifest/1\n"));

        // Reopen: the index rebuilds from the file.
        drop(be);
        let be = IndexedBackend::open(&dir).unwrap();
        assert_eq!(be.load(1).as_deref(), Some(b"alpha-v2".as_slice()));
        assert_eq!(be.load(2).as_deref(), Some(b"beta".as_slice()));
        assert_eq!(be.load_manifest().as_deref(), Some("pnx-delta-manifest/1\n"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn indexed_store_truncates_a_torn_tail_on_open() {
        let dir = tmp_dir("indexed-torn");
        let be = IndexedBackend::open(&dir).unwrap();
        be.store(7, b"good entry").unwrap();
        let path = be.path().to_path_buf();
        drop(be);

        // A crash mid-append: half a record at the end of the file.
        let clean = fs::read(&path).unwrap();
        let mut torn = clean.clone();
        torn.extend_from_slice(&encode_record(REC_ENTRY, 8, b"half-written")[..14]);
        fs::write(&path, &torn).unwrap();

        let be = IndexedBackend::open(&dir).unwrap();
        assert_eq!(be.load(7).as_deref(), Some(b"good entry".as_slice()));
        assert_eq!(be.load(8), None, "the torn record must not resolve");
        assert_eq!(fs::read(&path).unwrap(), clean, "the tail is physically dropped");

        // New appends land where the torn tail was and survive reopen.
        be.store(8, b"rewritten").unwrap();
        drop(be);
        let be = IndexedBackend::open(&dir).unwrap();
        assert_eq!(be.load(8).as_deref(), Some(b"rewritten".as_slice()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn indexed_store_checksum_failure_ends_the_scan() {
        let dir = tmp_dir("indexed-checksum");
        let be = IndexedBackend::open(&dir).unwrap();
        be.store(1, b"keep me").unwrap();
        let keep_len = fs::metadata(be.path()).unwrap().len();
        be.store(2, b"rot me").unwrap();
        let path = be.path().to_path_buf();
        drop(be);

        // Flip a payload byte of the second record: its checksum fails
        // and the scan stops before it.
        let mut bytes = fs::read(&path).unwrap();
        let flip = keep_len as usize + RECORD_OVERHEAD as usize - 8; // inside record 2's payload
        bytes[flip] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let be = IndexedBackend::open(&dir).unwrap();
        assert_eq!(be.load(1).as_deref(), Some(b"keep me".as_slice()));
        assert_eq!(be.load(2), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn indexed_store_compacts_when_dead_outweighs_live() {
        let dir = tmp_dir("indexed-compact");
        let be = IndexedBackend::open(&dir).unwrap();
        let blob = vec![0xabu8; 2048];
        for _ in 0..8 {
            be.store(1, &blob).unwrap(); // 7 superseded copies = dead bytes
        }
        be.store(2, b"small").unwrap();
        be.store_manifest("pnx-delta-manifest/1\n").unwrap();
        let path = be.path().to_path_buf();
        let fat = fs::metadata(&path).unwrap().len();
        drop(be);

        let be = IndexedBackend::open(&dir).unwrap();
        let slim = fs::metadata(&path).unwrap().len();
        assert!(slim < fat, "compaction must shrink the file ({slim} !< {fat})");
        assert_eq!(be.load(1).as_deref(), Some(blob.as_slice()));
        assert_eq!(be.load(2).as_deref(), Some(b"small".as_slice()));
        assert_eq!(be.load_manifest().as_deref(), Some("pnx-delta-manifest/1\n"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn indexed_store_recovers_from_a_killed_compaction() {
        let dir = tmp_dir("indexed-killed-compaction");
        let be = IndexedBackend::open(&dir).unwrap();
        be.store(1, b"authoritative").unwrap();
        let path = be.path().to_path_buf();
        drop(be);

        // A compaction that died before its rename leaves a temp file;
        // the main file is still the truth and the temp is discarded.
        let tmp = compact_tmp_path(&path);
        fs::write(&tmp, b"half a compacted store").unwrap();
        let be = IndexedBackend::open(&dir).unwrap();
        assert_eq!(be.load(1).as_deref(), Some(b"authoritative".as_slice()));
        assert!(!tmp.exists(), "the stale compaction temp is removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn indexed_store_refuses_a_foreign_file() {
        let dir = tmp_dir("indexed-foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(INDEX_FILE), b"NOTINDEXdata").unwrap();
        assert!(IndexedBackend::open(&dir).is_err(), "foreign magic must not be destroyed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_backend_round_trips_and_names_temps_uniquely() {
        let dir = tmp_dir("dir-roundtrip");
        let be = DirBackend::open(&dir).unwrap();
        assert_eq!(be.load(42), None);
        be.store(42, b"entry bytes").unwrap();
        assert_eq!(be.load(42).as_deref(), Some(b"entry bytes".as_slice()));
        be.store_manifest("pnx-delta-manifest/1\n").unwrap();
        assert_eq!(be.load_manifest().as_deref(), Some("pnx-delta-manifest/1\n"));
        // No temp litter after successful writes.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temps must be renamed away: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_nonce_is_monotonic() {
        let a = temp_nonce();
        let b = temp_nonce();
        assert!(b > a);
    }
}
