//! Differential oracle: static findings vs. concrete execution.
//!
//! The paper argues its attacks empirically — §4 *runs* every listing
//! and reports what actually overflowed — while §5.1 concedes that
//! static analysis "may not always succeed" in sizing a buffer. The
//! [`Oracle`] holds both halves of that story against each other: it
//! runs the [`Analyzer`](crate::Analyzer) and the [`Executor`] over the
//! same [`Program`] IR and joins their outputs per [`Site`]:
//!
//! * **true positive** — the analyzer flagged the site (at any
//!   severity) and the machine observed a vulnerability event there;
//! * **false negative** — the machine observed a vulnerability event at
//!   a site the analyzer cleared entirely. Every one of these is an
//!   analyzer bug with a concrete reproduction attached;
//! * **false positive** — the analyzer claimed Warning or stronger at a
//!   site where no scripted input produced an event. These are the
//!   price of soundness, not bugs: the executor probes a handful of
//!   input vectors, so "never observed" is weaker than "safe".
//!
//! Info-severity findings that nothing confirms are advisory and count
//! toward no cell; out-of-memory events are resource conditions the
//! analyzer does not claim to flag and are likewise excluded. The
//! per-kind [`Matrix`] aggregates verdicts across a corpus — the
//! agreement table EXPERIMENTS.md reports.

use std::collections::BTreeMap;
use std::fmt;

use crate::analysis::Analyzer;
use crate::exec::{ExecEvent, ExecEventKind, ExecOutcome, Executor};
use crate::findings::{Finding, FindingKind, Severity};
use crate::ir::{Program, Site, Stmt};

/// How one site's static and dynamic stories compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Flagged by the analyzer and confirmed by execution.
    TruePositive,
    /// Flagged (Warning+) but never observed under the scripted inputs.
    FalsePositive,
    /// Observed by execution at a site the analyzer cleared.
    FalseNegative,
}

impl Verdict {
    /// Stable short name (used in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            Verdict::TruePositive => "true-positive",
            Verdict::FalsePositive => "false-positive",
            Verdict::FalseNegative => "false-negative",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The judgement for one placement/copy site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteVerdict {
    /// The site being judged.
    pub site: Site,
    /// The classification.
    pub verdict: Verdict,
    /// The finding kind involved: the analyzer's kind for TP/FP, the
    /// kind the event implies the analyzer *should* have reported for
    /// FN.
    pub kind: FindingKind,
    /// The strongest analyzer severity at the site (`None` for FN —
    /// that is what makes it one).
    pub severity: Option<Severity>,
    /// Labels of the machine events observed at the site.
    pub events: Vec<&'static str>,
}

/// The full differential result for one program.
#[derive(Debug, Clone, Default)]
pub struct DifferentialReport {
    /// Program name.
    pub program: String,
    /// Per-site verdicts, in `(function, site)` order.
    pub verdicts: Vec<SiteVerdict>,
    /// Every machine event observed (including out-of-memory, which is
    /// excluded from classification).
    pub events: Vec<ExecEvent>,
    /// Statements the executor could not model.
    pub skipped: Vec<(Site, &'static str)>,
    /// The analyzer's findings, verbatim.
    pub findings: Vec<Finding>,
    /// Whether any loop hit the executor's iteration cap.
    pub loop_capped: bool,
}

impl DifferentialReport {
    /// Number of sites with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.verdicts.iter().filter(|v| v.verdict == verdict).count()
    }

    /// Confirmed sites.
    pub fn true_positives(&self) -> usize {
        self.count(Verdict::TruePositive)
    }

    /// Unconfirmed Warning+ claims.
    pub fn false_positives(&self) -> usize {
        self.count(Verdict::FalsePositive)
    }

    /// Observed-but-cleared sites — analyzer bugs.
    pub fn false_negatives(&self) -> usize {
        self.count(Verdict::FalseNegative)
    }

    /// Soundness on this program: no event escaped the analyzer.
    pub fn agrees(&self) -> bool {
        self.false_negatives() == 0
    }
}

/// Per-[`FindingKind`] TP/FP/FN counts, aggregated over many programs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matrix {
    cells: BTreeMap<FindingKind, [u64; 3]>,
    programs: u64,
}

impl Matrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Matrix::default()
    }

    /// Folds one program's verdicts in.
    pub fn absorb(&mut self, report: &DifferentialReport) {
        self.programs += 1;
        for v in &report.verdicts {
            let cell = self.cells.entry(v.kind).or_insert([0; 3]);
            match v.verdict {
                Verdict::TruePositive => cell[0] += 1,
                Verdict::FalsePositive => cell[1] += 1,
                Verdict::FalseNegative => cell[2] += 1,
            }
        }
    }

    /// Programs folded in so far.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// `(tp, fp, fn)` totals across all kinds.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.cells.values().fold((0, 0, 0), |(tp, fp, fnn), c| (tp + c[0], fp + c[1], fnn + c[2]))
    }

    /// Total false negatives — what CI gates on.
    pub fn false_negatives(&self) -> u64 {
        self.totals().2
    }

    /// `(tp, fp, fn)` for one kind.
    pub fn row(&self, kind: FindingKind) -> (u64, u64, u64) {
        let c = self.cells.get(&kind).copied().unwrap_or([0; 3]);
        (c[0], c[1], c[2])
    }

    /// Kinds with at least one nonzero cell, in declaration order.
    pub fn kinds(&self) -> Vec<FindingKind> {
        self.cells.keys().copied().collect()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<28} {:>6} {:>6} {:>6}", "kind", "TP", "FP", "FN")?;
        for (kind, c) in &self.cells {
            writeln!(f, "{:<28} {:>6} {:>6} {:>6}", kind.name(), c[0], c[1], c[2])?;
        }
        let (tp, fp, fnn) = self.totals();
        writeln!(f, "{:<28} {:>6} {:>6} {:>6}", "total", tp, fp, fnn)?;
        write!(
            f,
            "programs: {}, agreement: {}",
            self.programs,
            if fnn == 0 { "sound" } else { "FALSE NEGATIVES" }
        )
    }
}

/// The differential harness: one analyzer, one executor, a shared input
/// script.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    analyzer: Analyzer,
    executor: Executor,
}

impl Oracle {
    /// An oracle with default analyzer and executor settings.
    pub fn new() -> Self {
        Oracle { analyzer: Analyzer::new(), executor: Executor::new() }
    }

    /// The default attacker input scripts: one benign vector (small
    /// counts that fit every corpus arena), one hostile vector (counts
    /// that overflow any arena up to a few hundred bytes), and one
    /// empty vector (reads return 0). Events are unioned across
    /// scripts, so a site is "observed" if *any* script triggers it.
    pub fn default_inputs() -> Vec<Vec<i64>> {
        vec![vec![3; 8], vec![600; 8], Vec::new()]
    }

    /// Runs the differential with [`Oracle::default_inputs`].
    pub fn differential(&self, program: &Program) -> DifferentialReport {
        self.differential_with(program, &Self::default_inputs())
    }

    /// Runs the differential with explicit input scripts.
    pub fn differential_with(&self, program: &Program, inputs: &[Vec<i64>]) -> DifferentialReport {
        let report = self.analyzer.analyze(program);

        let mut union = ExecOutcome { program: program.name.clone(), ..ExecOutcome::default() };
        let scripts: &[Vec<i64>] = if inputs.is_empty() { &[Vec::new()] } else { inputs };
        for script in scripts {
            let out = self.executor.run(program, script);
            union.executed += out.executed;
            union.loop_capped |= out.loop_capped;
            for ev in out.events {
                if !union
                    .events
                    .iter()
                    .any(|e| same_site(&e.site, &ev.site) && e.kind.label() == ev.kind.label())
                {
                    union.events.push(ev);
                }
            }
            for (site, why) in out.skipped {
                if !union.skipped.iter().any(|(s, w)| same_site(s, &site) && *w == why) {
                    union.skipped.push((site, why));
                }
            }
        }

        let mut verdicts: Vec<SiteVerdict> = Vec::new();

        // Event sites first: each is a TP (analyzer said something
        // there) or an FN (analyzer cleared it).
        let mut event_sites: Vec<Site> = Vec::new();
        for ev in union.events.iter().filter(|e| e.kind.is_vulnerability()) {
            if !event_sites.iter().any(|s| same_site(s, &ev.site)) {
                event_sites.push(ev.site.clone());
            }
        }
        for site in &event_sites {
            let labels: Vec<&'static str> = union
                .events
                .iter()
                .filter(|e| e.kind.is_vulnerability() && same_site(&e.site, site))
                .map(|e| e.kind.label())
                .collect();
            let best = report
                .findings
                .iter()
                .filter(|f| same_site(&f.site, site))
                .max_by_key(|f| f.severity);
            match best {
                Some(finding) => verdicts.push(SiteVerdict {
                    site: site.clone(),
                    verdict: Verdict::TruePositive,
                    kind: finding.kind,
                    severity: Some(finding.severity),
                    events: labels,
                }),
                None => verdicts.push(SiteVerdict {
                    site: site.clone(),
                    verdict: Verdict::FalseNegative,
                    kind: expected_kind(program, site, &union.events),
                    severity: None,
                    events: labels,
                }),
            }
        }

        // Unconfirmed Warning+ claims are false positives; one verdict
        // per site, strongest finding wins.
        for finding in &report.findings {
            if finding.severity < Severity::Warning {
                continue;
            }
            if event_sites.iter().any(|s| same_site(s, &finding.site)) {
                continue;
            }
            if let Some(existing) = verdicts.iter_mut().find(|v| same_site(&v.site, &finding.site))
            {
                if existing.severity < Some(finding.severity) {
                    existing.kind = finding.kind;
                    existing.severity = Some(finding.severity);
                }
                continue;
            }
            verdicts.push(SiteVerdict {
                site: finding.site.clone(),
                verdict: Verdict::FalsePositive,
                kind: finding.kind,
                severity: Some(finding.severity),
                events: Vec::new(),
            });
        }

        verdicts.sort_by(|a, b| {
            (a.site.function.as_str(), a.site.line).cmp(&(b.site.function.as_str(), b.site.line))
        });

        DifferentialReport {
            program: program.name.clone(),
            verdicts,
            events: union.events,
            skipped: union.skipped,
            findings: report.findings,
            loop_capped: union.loop_capped,
        }
    }
}

fn same_site(a: &Site, b: &Site) -> bool {
    a.line == b.line && a.function == b.function
}

/// The kind a false negative *should* have carried, inferred from the
/// event and the statement at the site.
fn expected_kind(program: &Program, site: &Site, events: &[ExecEvent]) -> FindingKind {
    let strongest = events
        .iter()
        .filter(|e| e.kind.is_vulnerability() && same_site(&e.site, site))
        .map(|e| e.kind)
        .next();
    match strongest {
        Some(ExecEventKind::SecretLeak { .. }) => FindingKind::UnsanitizedArenaReuse,
        Some(ExecEventKind::StrandedBytes { .. }) => FindingKind::PlacementLeak,
        Some(ExecEventKind::OverflowWrite { .. }) | Some(ExecEventKind::CanarySmash) => {
            match stmt_at(program, site) {
                Some(Stmt::Strncpy { .. }) | Some(Stmt::Memset { .. }) => {
                    FindingKind::ClassicOverflow
                }
                _ => FindingKind::OversizedPlacement,
            }
        }
        _ => FindingKind::OversizedPlacement,
    }
}

/// Finds the statement at `site`, searching nested bodies.
fn stmt_at<'p>(program: &'p Program, site: &Site) -> Option<&'p Stmt> {
    fn find<'p>(body: &'p [Stmt], site: &Site) -> Option<&'p Stmt> {
        for stmt in body {
            if same_site(stmt.site(), site) {
                return Some(stmt);
            }
            match stmt {
                Stmt::If { then_body, else_body, .. } => {
                    if let Some(s) = find(then_body, site).or_else(|| find(else_body, site)) {
                        return Some(s);
                    }
                }
                Stmt::While { body, .. } => {
                    if let Some(s) = find(body, site) {
                        return Some(s);
                    }
                }
                _ => {}
            }
        }
        None
    }
    program.functions.iter().filter(|f| f.name == site.function).find_map(|f| find(&f.body, site))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::{CmpOp, Expr, Ty};

    fn students(p: &mut ProgramBuilder) {
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
    }

    #[test]
    fn oversized_placement_is_a_confirmed_true_positive() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let diff = Oracle::new().differential(&p.build());
        assert_eq!(diff.true_positives(), 1, "{:?}", diff.verdicts);
        assert_eq!(diff.false_negatives(), 0);
        assert!(diff.agrees());
        assert_eq!(diff.verdicts[0].kind, FindingKind::OversizedPlacement);
    }

    #[test]
    fn clean_program_has_no_verdicts() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "Student");
        f.finish();
        let diff = Oracle::new().differential(&p.build());
        assert!(diff.verdicts.is_empty(), "{:?}", diff.verdicts);
        assert!(diff.agrees());
    }

    #[test]
    fn guarded_count_no_longer_shows_up_as_false_positive() {
        // This exact program used to be the oracle's canonical false
        // positive: the guard keeps every script inside the arena, yet
        // the boolean-taint analyzer warned anyway. Under the interval
        // lattice the guard bounds n ≤ 8 (8·9 = 72 fits), so the two
        // sides now simply agree — no verdicts in either column.
        let mut p = ProgramBuilder::new("t");
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut f = p.function("f");
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(8));
        f.ret();
        f.end_if();
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.finish();
        let diff = Oracle::new().differential(&p.build());
        assert_eq!(diff.false_negatives(), 0, "{:?}", diff.verdicts);
        assert_eq!(diff.false_positives(), 0, "{:?}", diff.verdicts);
        assert!(diff.agrees(), "{:?}", diff.verdicts);
    }

    #[test]
    fn unguarded_tainted_count_is_confirmed() {
        let mut p = ProgramBuilder::new("t");
        let pool = p.global("pool", Ty::CharArray(Some(64)));
        let mut f = p.function("main");
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
        f.finish();
        let diff = Oracle::new().differential(&p.build());
        assert_eq!(diff.true_positives(), 1, "{:?}", diff.verdicts);
        assert!(diff.agrees());
    }

    #[test]
    fn matrix_accumulates_and_formats() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let program = p.build();
        let oracle = Oracle::new();
        let mut matrix = Matrix::new();
        matrix.absorb(&oracle.differential(&program));
        matrix.absorb(&oracle.differential(&program));
        assert_eq!(matrix.programs(), 2);
        let (tp, _, fnn) = matrix.totals();
        assert_eq!(tp, 2);
        assert_eq!(fnn, 0);
        assert_eq!(matrix.row(FindingKind::OversizedPlacement).0, 2);
        let text = matrix.to_string();
        assert!(text.contains("oversized-placement"), "{text}");
        assert!(text.contains("agreement: sound"), "{text}");
    }

    #[test]
    fn info_only_unobserved_findings_are_not_counted() {
        // An unknown-bounds placement over a param pointer: the analyzer
        // says Info, the machine (untainted param = null-ish) observes
        // nothing. Neither TP nor FP.
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("f");
        let arena = f.param("arena", Ty::Ptr, false);
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::Var(arena), "Student");
        f.finish();
        let diff = Oracle::new().differential(&p.build());
        assert_eq!(
            diff.verdicts.iter().filter(|v| v.verdict == Verdict::FalsePositive).count(),
            0,
            "{:?}",
            diff.verdicts
        );
        assert!(diff.agrees());
    }
}
