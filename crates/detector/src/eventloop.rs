//! Readiness-driven connection machinery for `pncheckd`.
//!
//! The original daemon spawned one thread per TCP connection and turned
//! everything over [`ServerConfig::max_connections`] away with a `busy`
//! error. This module holds the std-only building blocks the rewritten
//! accept loop composes instead:
//!
//! * [`Poller`] / [`TickPoller`] — the loop blocks here between ticks
//!   and worker threads wake it when a reply is ready. `TickPoller` is
//!   a `Mutex` + `Condvar` pair: portable, `forbid(unsafe_code)`-clean,
//!   and deliberately the *only* platform-specific seam — an
//!   epoll/kqueue backend would implement the same two methods and
//!   replace the fixed tick with true socket readiness.
//! * [`FairQueue`] — a per-client request queue drained round-robin by
//!   the worker pool, so one chatty client cannot starve the rest.
//!   Each client is bounded by a quota over its queued **plus**
//!   in-flight requests; pushing past it is a [`PushError::QuotaExceeded`]
//!   the server answers with a `quota-exceeded` error (the connection
//!   survives). The queue also answers "does this client have anything
//!   queued or in flight?" — the question the idle reaper must ask
//!   before closing a connection, because a connection waiting on a
//!   slow analysis is *busy*, not idle.
//! * [`LineFramer`] — incremental newline framing over non-blocking
//!   reads, with the same bounded-line semantics as the blocking
//!   reader: an oversized line is discarded through its newline and
//!   surfaces as one [`Frame::TooLong`], and the connection stays
//!   request-aligned.
//!
//! [`ServerConfig::max_connections`]: crate::server::ServerConfig::max_connections

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------
// Poller.
// ---------------------------------------------------------------------

/// Blocks the event loop between ticks and lets other threads wake it.
///
/// Wake-ups are level-style: a [`wake`](Poller::wake) with no waiter
/// pending makes the *next* [`wait`](Poller::wait) return immediately,
/// so a completion can never be lost between ticks.
pub trait Poller: Send + Sync {
    /// Blocks until woken or until `timeout` elapses. Returns `true`
    /// when a wake-up was consumed.
    fn wait(&self, timeout: Duration) -> bool;
    /// Wakes the current (or next) [`wait`](Poller::wait).
    fn wake(&self);
}

/// The portable [`Poller`]: a mutex-guarded flag and a condvar.
///
/// Without `unsafe` there is no `epoll`/`kqueue`, so socket readiness
/// is approximated by a short tick — the loop probes every socket with
/// non-blocking reads each time `wait` returns. Replies still flush
/// with low latency because workers [`wake`](Poller::wake) the loop the
/// moment one is ready.
#[derive(Debug, Default)]
pub struct TickPoller {
    woken: Mutex<bool>,
    cond: Condvar,
}

impl Poller for TickPoller {
    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.woken.lock().unwrap_or_else(|e| e.into_inner());
        let (mut woken, _) = self
            .cond
            .wait_timeout_while(guard, timeout, |woken| !*woken)
            .unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *woken)
    }

    fn wake(&self) {
        *self.woken.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cond.notify_one();
    }
}

// ---------------------------------------------------------------------
// Fair per-client queue.
// ---------------------------------------------------------------------

/// Why [`FairQueue::push`] refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The client already has `quota` requests queued or in flight.
    QuotaExceeded,
}

#[derive(Debug)]
struct ClientQueue<T> {
    queued: VecDeque<T>,
    inflight: usize,
}

/// A round-robin queue of per-client work items.
///
/// Workers [`pop`](FairQueue::pop) one item per ready client in
/// rotation, so a client that pipelines 100 requests shares the pool
/// evenly with one that sends a single request. An item stays counted
/// against its client — as *in flight* — from `pop` until the event
/// loop collects the finished reply and calls
/// [`complete`](FairQueue::complete).
#[derive(Debug)]
pub struct FairQueue<T> {
    clients: HashMap<u64, ClientQueue<T>>,
    /// Clients with at least one queued item, in round-robin order.
    ready: VecDeque<u64>,
    quota: usize,
    queued_total: usize,
    inflight_total: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue where each client may have at most `quota`
    /// requests queued + in flight (a quota of 0 is treated as 1).
    pub fn new(quota: usize) -> Self {
        FairQueue {
            clients: HashMap::new(),
            ready: VecDeque::new(),
            quota: quota.max(1),
            queued_total: 0,
            inflight_total: 0,
        }
    }

    /// Enqueues `item` for `client`, unless the client is at quota.
    pub fn push(&mut self, client: u64, item: T) -> Result<(), PushError> {
        let entry = self
            .clients
            .entry(client)
            .or_insert_with(|| ClientQueue { queued: VecDeque::new(), inflight: 0 });
        if entry.queued.len() + entry.inflight >= self.quota {
            return Err(PushError::QuotaExceeded);
        }
        entry.queued.push_back(item);
        self.queued_total += 1;
        if entry.queued.len() == 1 {
            self.ready.push_back(client);
        }
        Ok(())
    }

    /// Takes the next item in round-robin order, marking it in flight.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let client = self.ready.pop_front()?;
        let entry = self.clients.get_mut(&client).expect("ready client has a queue");
        let item = entry.queued.pop_front().expect("ready client has a queued item");
        entry.inflight += 1;
        self.queued_total -= 1;
        self.inflight_total += 1;
        if !entry.queued.is_empty() {
            self.ready.push_back(client);
        }
        Some((client, item))
    }

    /// Records that one in-flight item for `client` finished. Safe to
    /// call after [`remove`](FairQueue::remove): the global in-flight
    /// count still balances, so a drain waiting on
    /// [`total_pending`](FairQueue::total_pending) terminates.
    pub fn complete(&mut self, client: u64) {
        self.inflight_total = self.inflight_total.saturating_sub(1);
        if let Some(entry) = self.clients.get_mut(&client) {
            entry.inflight = entry.inflight.saturating_sub(1);
            if entry.queued.is_empty() && entry.inflight == 0 {
                self.clients.remove(&client);
            }
        }
    }

    /// Queued + in-flight items for `client` — 0 means the client is
    /// genuinely idle and safe to reap.
    pub fn pending(&self, client: u64) -> usize {
        self.clients.get(&client).map_or(0, |entry| entry.queued.len() + entry.inflight)
    }

    /// Drops `client` and everything it still has queued. In-flight
    /// items are not recalled — their [`complete`](FairQueue::complete)
    /// still balances the global count when the reply is collected.
    pub fn remove(&mut self, client: u64) {
        if let Some(entry) = self.clients.remove(&client) {
            self.queued_total -= entry.queued.len();
            if entry.inflight > 0 {
                // Keep a tombstone so `complete` still finds the client
                // counted; only the queued items are discarded.
                self.clients.insert(
                    client,
                    ClientQueue { queued: VecDeque::new(), inflight: entry.inflight },
                );
            }
        }
        self.ready.retain(|&c| c != client);
    }

    /// Queued + in-flight items across all clients.
    pub fn total_pending(&self) -> usize {
        self.queued_total + self.inflight_total
    }

    /// Items waiting to be popped (excludes in-flight work).
    pub fn queued(&self) -> usize {
        self.queued_total
    }
}

// ---------------------------------------------------------------------
// Incremental line framing.
// ---------------------------------------------------------------------

/// One framed unit out of a [`LineFramer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line, newline stripped.
    Line(Vec<u8>),
    /// A line that exceeded the limit; its bytes were discarded through
    /// the newline so the stream stays request-aligned.
    TooLong,
}

/// Reassembles newline-delimited requests from arbitrary read chunks.
///
/// Mirrors the blocking reader's bounds: a line of exactly `max` bytes
/// passes, one byte more is discarded (cheaply — oversized bytes are
/// dropped as they arrive, never buffered) and reported as a single
/// [`Frame::TooLong`] once its newline shows up.
#[derive(Debug, Default)]
pub struct LineFramer {
    buf: Vec<u8>,
    discarding: bool,
}

impl LineFramer {
    /// Feeds one read chunk; returns every frame it completed.
    pub fn feed(&mut self, bytes: &[u8], max: usize) -> Vec<Frame> {
        let mut frames = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            match rest.iter().position(|&b| b == b'\n') {
                Some(newline) => {
                    if self.discarding {
                        self.discarding = false;
                        frames.push(Frame::TooLong);
                    } else if self.buf.len() + newline > max {
                        self.buf.clear();
                        frames.push(Frame::TooLong);
                    } else {
                        let mut line = std::mem::take(&mut self.buf);
                        line.extend_from_slice(&rest[..newline]);
                        frames.push(Frame::Line(line));
                    }
                    rest = &rest[newline + 1..];
                }
                None => {
                    if !self.discarding {
                        if self.buf.len() + rest.len() > max {
                            self.buf.clear();
                            self.discarding = true;
                        } else {
                            self.buf.extend_from_slice(rest);
                        }
                    }
                    rest = &[];
                }
            }
        }
        frames
    }

    /// Flushes the final unterminated line at EOF, if any.
    pub fn finish(&mut self) -> Option<Frame> {
        if std::mem::take(&mut self.discarding) {
            return Some(Frame::TooLong);
        }
        if self.buf.is_empty() {
            None
        } else {
            Some(Frame::Line(std::mem::take(&mut self.buf)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    #[test]
    fn tick_poller_times_out_and_consumes_wakes() {
        let poller = TickPoller::default();
        let start = Instant::now();
        assert!(!poller.wait(Duration::from_millis(10)), "no wake pending");
        assert!(start.elapsed() >= Duration::from_millis(10));
        poller.wake();
        assert!(poller.wait(Duration::from_secs(5)), "wake consumed immediately");
        assert!(!poller.wait(Duration::from_millis(1)), "wake is one-shot");
    }

    #[test]
    fn tick_poller_wakes_a_blocked_waiter_across_threads() {
        let poller = TickPoller::default();
        let woken = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                woken.store(poller.wait(Duration::from_secs(10)), Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(20));
            poller.wake();
        });
        assert!(woken.load(Ordering::SeqCst), "cross-thread wake arrives");
    }

    #[test]
    fn fair_queue_round_robins_across_clients() {
        let mut q = FairQueue::new(16);
        for item in ["a1", "a2", "a3"] {
            q.push(1, item).unwrap();
        }
        q.push(2, "b1").unwrap();
        q.push(3, "c1").unwrap();
        let order: Vec<(u64, &str)> = std::iter::from_fn(|| q.pop()).collect();
        // One per client in rotation, then client 1 drains its backlog.
        assert_eq!(order, vec![(1, "a1"), (2, "b1"), (3, "c1"), (1, "a2"), (1, "a3")]);
    }

    #[test]
    fn fair_queue_quota_counts_queued_plus_inflight() {
        let mut q = FairQueue::new(2);
        q.push(1, "a").unwrap();
        q.push(1, "b").unwrap();
        assert_eq!(q.push(1, "c"), Err(PushError::QuotaExceeded));
        // Popping moves an item to in-flight; it still counts.
        let (client, _) = q.pop().unwrap();
        assert_eq!(client, 1);
        assert_eq!(q.push(1, "c"), Err(PushError::QuotaExceeded));
        assert_eq!(q.pending(1), 2);
        // Completion frees a slot.
        q.complete(1);
        q.push(1, "c").unwrap();
        assert_eq!(q.pending(1), 2);
    }

    #[test]
    fn fair_queue_remove_drops_queued_but_balances_inflight() {
        let mut q = FairQueue::new(16);
        q.push(7, "popped").unwrap();
        q.push(7, "discarded").unwrap();
        let _ = q.pop().unwrap();
        assert_eq!(q.total_pending(), 2);
        q.remove(7);
        assert_eq!(q.pending(7), 1, "in-flight survives removal");
        assert_eq!(q.queued(), 0, "queued items were discarded");
        q.complete(7);
        assert_eq!(q.total_pending(), 0, "drain can terminate");
        assert!(q.pop().is_none());
    }

    #[test]
    fn line_framer_reassembles_lines_split_across_chunks() {
        let mut framer = LineFramer::default();
        assert!(framer.feed(b"{\"op\":\"pi", 1024).is_empty());
        let frames = framer.feed(b"ng\"}\n{\"op\":\"stats\"}\n{", 1024);
        assert_eq!(
            frames,
            vec![
                Frame::Line(b"{\"op\":\"ping\"}".to_vec()),
                Frame::Line(b"{\"op\":\"stats\"}".to_vec()),
            ]
        );
        assert_eq!(framer.finish(), Some(Frame::Line(b"{".to_vec())));
        assert_eq!(framer.finish(), None);
    }

    #[test]
    fn line_framer_discards_oversized_lines_and_stays_aligned() {
        let mut framer = LineFramer::default();
        // 8-byte limit: a 9-byte line is discarded, the next survives.
        let mut frames = framer.feed(b"123456789", 8);
        frames.extend(framer.feed(b"still-too-long\nok\n", 8));
        assert_eq!(frames, vec![Frame::TooLong, Frame::Line(b"ok".to_vec())]);
        // Exactly at the limit passes.
        assert_eq!(framer.feed(b"12345678\n", 8), vec![Frame::Line(b"12345678".to_vec())]);
        // Discarding state surfaces at EOF too.
        assert!(framer.feed(b"123456789", 8).is_empty());
        assert_eq!(framer.finish(), Some(Frame::TooLong));
    }
}
