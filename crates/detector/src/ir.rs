//! A small C++-like intermediate representation.
//!
//! The detector does not parse C++; corpus programs are written directly
//! in this IR, which keeps exactly the constructs the paper's
//! vulnerability patterns need: variables with declared types, placement
//! and heap `new`, tainted input sources (`cin`, received objects),
//! `strncpy`/`memset`, deletes, pointer calls, and structured control
//! flow. Every statement carries a [`Site`] so findings are addressable.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a variable (globals and locals share one namespace per
/// program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An interned name: a dense index into a [`SymbolTable`].
///
/// The analyzer's hot path compares and copies class/function names
/// constantly; interning turns those `String` clones and hash-of-string
/// lookups into `u32` copies. Symbols are only meaningful together with
/// the table that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A string interner mapping names to dense [`Symbol`]s.
///
/// # Examples
///
/// ```
/// use pnew_detector::ir::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let a = table.intern("Student");
/// let b = table.intern("GradStudent");
/// assert_eq!(table.intern("Student"), a); // stable on re-intern
/// assert_ne!(a, b);
/// assert_eq!(table.resolve(a), "Student");
/// assert_eq!(table.lookup("GradStudent"), Some(b));
/// assert_eq!(table.lookup("Nope"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `name`, returning its stable symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&i) = self.index.get(name) {
            return Symbol(i);
        }
        let i = u32::try_from(self.names.len()).expect("fewer than 2^32 symbols");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        Symbol(i)
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).map(|&i| Symbol(i))
    }

    /// The name behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol came from a different table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Declared type of a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// `int`.
    Int,
    /// `char`.
    Char,
    /// `double`.
    Double,
    /// Any pointer.
    Ptr,
    /// `char buf[n]` with a statically known or unknown length.
    CharArray(Option<u32>),
    /// An instance of a named class.
    Class(String),
}

impl Ty {
    /// Statically known byte size of the declared storage, if any.
    pub fn declared_size(&self, classes: &HashMap<String, ClassInfo>) -> Option<u64> {
        match self {
            Ty::Int => Some(4),
            Ty::Char => Some(1),
            Ty::Double => Some(8),
            Ty::Ptr => Some(4),
            Ty::CharArray(Some(n)) => Some(u64::from(*n)),
            Ty::CharArray(None) => None,
            Ty::Class(name) => classes.get(name).map(|c| u64::from(c.size)),
        }
    }
}

/// What the analyzer knows about a class (sizes come from the object
/// model's layout engine, matching the paper's advice to use `sizeof`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// Class name.
    pub name: String,
    /// `sizeof` under the target layout policy.
    pub size: u32,
    /// Direct base class, if any.
    pub base: Option<String>,
    /// Whether instances carry vtable pointers.
    pub polymorphic: bool,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Variable read.
    Var(VarId),
    /// `sizeof(Class)`.
    SizeOf(String),
    /// Arithmetic.
    BinOp(Op, Box<Expr>, Box<Expr>),
    /// `&var` — the address of a declared variable (the usual placement
    /// arena).
    AddrOf(VarId),
    /// `obj.field` / `obj->field` load (fields are opaque to the
    /// analyzer beyond taint).
    Field(VarId, String),
}

impl Expr {
    /// Shorthand for `&var`.
    pub fn addr_of(var: VarId) -> Expr {
        Expr::AddrOf(var)
    }

    /// Shorthand for `a * b`.
    ///
    /// Free-standing constructor (not `std::ops::Mul`): these build AST
    /// nodes, they do not evaluate.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::BinOp(Op::Mul, Box::new(a), Box::new(b))
    }

    /// Shorthand for `a + b`.
    ///
    /// Free-standing constructor (not `std::ops::Add`): these build AST
    /// nodes, they do not evaluate.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::BinOp(Op::Add, Box::new(a), Box::new(b))
    }

    /// Shorthand for `a - b`.
    ///
    /// Free-standing constructor (not `std::ops::Sub`): these build AST
    /// nodes, they do not evaluate.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::BinOp(Op::Sub, Box::new(a), Box::new(b))
    }

    /// Variables read by this expression.
    pub fn reads(&self) -> Vec<VarId> {
        let mut r = Vec::new();
        self.for_each_read(&mut |v| r.push(v));
        r
    }

    /// Visits every variable read by this expression without allocating.
    ///
    /// The analyzer's taint checks run once per assignment per program;
    /// this is the allocation-free form of [`Expr::reads`] for that hot
    /// path.
    pub fn for_each_read(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Expr::Const(_) | Expr::SizeOf(_) => {}
            Expr::Var(v) | Expr::AddrOf(v) | Expr::Field(v, _) => f(*v),
            Expr::BinOp(_, a, b) => {
                a.for_each_read(f);
                b.for_each_read(f);
            }
        }
    }
}

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The comparison with its operands swapped: `a op b` holds exactly
    /// when `b op.flipped() a` does.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The comparison's logical negation: `!(a op b)` holds exactly
    /// when `a op.negated() b` does.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

/// A branch/loop condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Left operand.
    pub lhs: Expr,
    /// Comparison.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Expr,
}

/// A precise source span: 1-based line and column of the first token of
/// a construct, plus the byte range it covers in the original source.
///
/// Builder-made programs have no source text, so spans only exist on
/// sites that came through [`parse_program`](crate::parse_program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based source line of the first token.
    pub line: u32,
    /// 1-based column (in characters) of the first token.
    pub col: u32,
    /// Byte offset of the first token in the source.
    pub byte_offset: u32,
    /// Byte length from the first to the last token, inclusive.
    pub len: u32,
}

impl Span {
    /// A span at `line`/`col` covering `len` bytes from `byte_offset`.
    pub fn new(line: u32, col: u32, byte_offset: u32, len: u32) -> Self {
        Span { line, col, byte_offset, len }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A source location: function name plus a statement ordinal assigned by
/// the builder, and — for parsed programs — the precise [`Span`].
///
/// Identity is `(function, line)` only: the span is carried for
/// reporting, and two sites naming the same statement compare equal
/// whether or not source positions are known. This keeps the round-trip
/// guarantee `parse(pretty(p)) == p` and finding dedup stable across
/// builder-made and parsed programs.
#[derive(Debug, Clone)]
pub struct Site {
    /// Enclosing function.
    pub function: String,
    /// 1-based statement ordinal within the function.
    pub line: u32,
    /// Precise source span, when the site came from parsed text.
    pub span: Option<Span>,
}

impl Site {
    /// A site without source text (builder programs).
    pub fn new(function: impl Into<String>, line: u32) -> Self {
        Site { function: function.into(), line, span: None }
    }
}

impl PartialEq for Site {
    fn eq(&self, other: &Self) -> bool {
        self.function == other.function && self.line == other.line
    }
}

impl Eq for Site {}

impl std::hash::Hash for Site {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.function.hash(state);
        self.line.hash(state);
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.function, self.line)
    }
}

/// Statements. Each carries its [`Site`].
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = src;`
    Assign {
        /// Statement site.
        site: Site,
        /// Destination variable.
        dst: VarId,
        /// Source expression.
        src: Expr,
    },
    /// `obj.field = src;`
    FieldStore {
        /// Statement site.
        site: Site,
        /// Object written through.
        obj: VarId,
        /// Field name.
        field: String,
        /// Stored expression.
        src: Expr,
    },
    /// `cin >> dst;` — a taint source.
    ReadInput {
        /// Statement site.
        site: Site,
        /// Destination variable.
        dst: VarId,
    },
    /// `dst = service.recv<Class>();` — a remote/serialized object
    /// (taint source, §3.2).
    RecvObject {
        /// Statement site.
        site: Site,
        /// Destination (pointer) variable.
        dst: VarId,
        /// Claimed class.
        class: String,
    },
    /// `dst = new Class()` / `dst = new char[count]`.
    HeapNew {
        /// Statement site.
        site: Site,
        /// Destination pointer.
        dst: VarId,
        /// Allocated class (object form).
        class: Option<String>,
        /// Element count (array form; element size 1).
        count: Option<Expr>,
    },
    /// `dst = new (arena) Class(args…);`
    PlacementNew {
        /// Statement site.
        site: Site,
        /// Destination pointer.
        dst: VarId,
        /// Arena address expression.
        arena: Expr,
        /// Placed class.
        class: String,
        /// Constructor arguments (copy-constructor sources carry taint,
        /// §3.2).
        args: Vec<Expr>,
    },
    /// `dst = new (arena) char[count * elem_size];`
    PlacementNewArray {
        /// Statement site.
        site: Site,
        /// Destination pointer.
        dst: VarId,
        /// Arena address expression.
        arena: Expr,
        /// Element size in bytes.
        elem_size: u32,
        /// Element count expression.
        count: Expr,
    },
    /// `strncpy(dst, src, len);`
    Strncpy {
        /// Statement site.
        site: Site,
        /// Destination pointer/array variable.
        dst: VarId,
        /// Source expression (tainted when from input).
        src: Expr,
        /// Copy length expression.
        len: Expr,
    },
    /// `memset(dst, 0, len);` — the §5.1 sanitization.
    Memset {
        /// Statement site.
        site: Site,
        /// Destination pointer/array variable.
        dst: VarId,
        /// Fill length expression.
        len: Expr,
    },
    /// Read a file/secret into a buffer (`mmap`, `read`) — marks the
    /// region as holding sensitive bytes.
    ReadSecret {
        /// Statement site.
        site: Site,
        /// Destination pointer/array variable.
        dst: VarId,
    },
    /// Ship a buffer to the outside world (`store`, `send`).
    Output {
        /// Statement site.
        site: Site,
        /// Source pointer/array variable.
        src: VarId,
    },
    /// `delete ptr;` optionally through a static type (`delete (Class*)p`).
    Delete {
        /// Statement site.
        site: Site,
        /// Pointer being deleted.
        ptr: VarId,
        /// The static class the delete is typed with.
        as_class: Option<String>,
    },
    /// `ptr = NULL;`
    NullAssign {
        /// Statement site.
        site: Site,
        /// Pointer being nulled.
        ptr: VarId,
    },
    /// `obj->virtualMethod()`.
    VirtualCall {
        /// Statement site.
        site: Site,
        /// Receiver.
        obj: VarId,
        /// Method name.
        method: String,
    },
    /// Call through a function pointer.
    CallPtr {
        /// Statement site.
        site: Site,
        /// The pointer variable.
        ptr: VarId,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Statement site.
        site: Site,
        /// Condition.
        cond: Cond,
        /// Then-branch body.
        then_body: Vec<Stmt>,
        /// Else-branch body.
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Statement site.
        site: Site,
        /// Condition.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return;`
    Return {
        /// Statement site.
        site: Site,
    },
    /// `call f(args…);` — a direct call to another function in the
    /// program (the §3.3 inter-procedural data-flow path).
    Call {
        /// Statement site.
        site: Site,
        /// Callee name.
        func: String,
        /// Actual arguments, bound to the callee's parameters in order.
        args: Vec<Expr>,
    },
}

impl Stmt {
    /// The statement's site.
    pub fn site(&self) -> &Site {
        match self {
            Stmt::Assign { site, .. }
            | Stmt::FieldStore { site, .. }
            | Stmt::ReadInput { site, .. }
            | Stmt::RecvObject { site, .. }
            | Stmt::HeapNew { site, .. }
            | Stmt::PlacementNew { site, .. }
            | Stmt::PlacementNewArray { site, .. }
            | Stmt::Strncpy { site, .. }
            | Stmt::Memset { site, .. }
            | Stmt::ReadSecret { site, .. }
            | Stmt::Output { site, .. }
            | Stmt::Delete { site, .. }
            | Stmt::NullAssign { site, .. }
            | Stmt::VirtualCall { site, .. }
            | Stmt::CallPtr { site, .. }
            | Stmt::If { site, .. }
            | Stmt::While { site, .. }
            | Stmt::Call { site, .. }
            | Stmt::Return { site } => site,
        }
    }
}

/// Scope of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Global (data/bss).
    Global,
    /// Function local (stack).
    Local,
    /// Function parameter; `tainted` parameters model network/remote
    /// inputs.
    Param {
        /// Whether the parameter carries untrusted data.
        tainted: bool,
    },
}

/// A declared variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Identifier.
    pub id: VarId,
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Scope.
    pub scope: Scope,
}

/// A function: parameters and locals (by id) plus a statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Ids of parameters and locals belonging to this function.
    pub vars: Vec<VarId>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A whole program: class table, variables, functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program name (corpus id).
    pub name: String,
    /// Known classes.
    pub classes: HashMap<String, ClassInfo>,
    /// All variables (globals first).
    pub vars: Vec<VarInfo>,
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    /// `sizeof` a class, if known.
    pub fn sizeof(&self, class: &str) -> Option<u64> {
        self.classes.get(class).map(|c| u64::from(c.size))
    }

    /// Whether `sub` is (transitively) a subclass of `sup`.
    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        let mut cur = Some(sub.to_owned());
        while let Some(name) = cur {
            if name == sup {
                return true;
            }
            cur = self.classes.get(&name).and_then(|c| c.base.clone());
        }
        false
    }

    /// Total number of statements (recursively), used by throughput
    /// benches.
    pub fn stmt_count(&self) -> usize {
        fn count(body: &[Stmt]) -> usize {
            body.iter()
                .map(|s| match s {
                    Stmt::If { then_body, else_body, .. } => {
                        1 + count(then_body) + count(else_body)
                    }
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_sizes() {
        let mut classes = HashMap::new();
        classes.insert(
            "Student".to_owned(),
            ClassInfo { name: "Student".into(), size: 16, base: None, polymorphic: false },
        );
        assert_eq!(Ty::Int.declared_size(&classes), Some(4));
        assert_eq!(Ty::CharArray(Some(72)).declared_size(&classes), Some(72));
        assert_eq!(Ty::CharArray(None).declared_size(&classes), None);
        assert_eq!(Ty::Class("Student".into()).declared_size(&classes), Some(16));
        assert_eq!(Ty::Class("Nope".into()).declared_size(&classes), None);
    }

    #[test]
    fn expr_reads() {
        let e = Expr::mul(Expr::Var(VarId(1)), Expr::add(Expr::Const(1), Expr::Var(VarId(2))));
        assert_eq!(e.reads(), vec![VarId(1), VarId(2)]);
        assert!(Expr::SizeOf("X".into()).reads().is_empty());
    }

    #[test]
    fn subclass_chains() {
        let mut p = Program::default();
        for (name, base) in [("A", None), ("B", Some("A")), ("C", Some("B"))] {
            p.classes.insert(
                name.to_owned(),
                ClassInfo {
                    name: name.to_owned(),
                    size: 16,
                    base: base.map(str::to_owned),
                    polymorphic: false,
                },
            );
        }
        assert!(p.is_subclass("C", "A"));
        assert!(p.is_subclass("B", "A"));
        assert!(p.is_subclass("A", "A"));
        assert!(!p.is_subclass("A", "C"));
        assert!(!p.is_subclass("Z", "A"));
    }

    #[test]
    fn site_display() {
        let s = Site::new("addStudent", 3);
        assert_eq!(s.to_string(), "addStudent:3");
    }

    #[test]
    fn site_identity_ignores_the_span() {
        let bare = Site::new("f", 1);
        let mut spanned = Site::new("f", 1);
        spanned.span = Some(Span::new(7, 5, 104, 30));
        assert_eq!(bare, spanned);
        let hash = |s: &Site| {
            use std::hash::{Hash as _, Hasher as _};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&bare), hash(&spanned));
        assert_eq!(spanned.span.expect("span kept").to_string(), "7:5");
    }
}
