//! Parser for the `.pnx` surface syntax.
//!
//! The inverse of [`pretty`](crate::pretty_program): parses the textual
//! form back into an IR [`Program`], so the detector works as a
//! command-line tool over source files (`pncheck`). The grammar is the
//! C++-like subset the corpus uses; see the module docs of
//! [`pretty`](crate::pretty) for a sample.
//!
//! Round-trip guarantee (tested over the whole corpus and with proptest):
//! `parse(pretty(p)) == p`.
//!
//! Every token carries a [`Span`] (1-based line and column plus the byte
//! range in the source), and every parsed statement's [`Site`](crate::Site)
//! records the span from its first to its last token — this is what
//! findings and machine-readable reports point at.
//!
//! Two entry points: [`parse_program`] stops at the first error;
//! [`parse_program_recovering`] synchronizes after each error (to the
//! next `;` inside a block, to the next declaration keyword at the top
//! level) and reports everything it found, capped at [`MAX_ERRORS`].
//!
//! Statement keywords (`local`, `read`, `read_secret`, `recv`, `output`,
//! `delete`, `vcall`, `call`, `callptr`, `return`, `strncpy`, `memset`,
//! `if`, `else`, `while`, `new`, `bytes`, `array`, `null`, `sizeof`) are
//! reserved: a variable with one of those names at the start of a
//! statement is parsed as the keyword form.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::builder::{FunctionBuilder, ProgramBuilder};
use crate::ir::{CmpOp, Expr, Program, Span, Ty, VarId};

/// The most errors [`parse_program_recovering`] reports before giving
/// up; bounds cascades from a badly desynchronized token stream.
pub const MAX_ERRORS: usize = 20;

/// A parse failure, with the precise source span of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the failure was detected.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}, col {}: {}", self.span.line, self.span.col, self.message)
    }
}

impl Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Sym(s) => write!(f, "`{s}`"),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `src` (the source after the `program` header), tracking
/// line, column, and byte offset per token. `start_line` is the 1-based
/// line the slice begins on and `base_offset` its byte offset within the
/// full source, so spans point into the original file.
///
/// Never fails: a bad character or overflowing literal is recorded as a
/// [`ParseError`] and skipped, so the caller decides whether to stop at
/// the first error or report them all.
fn lex(src: &str, start_line: u32, base_offset: u32) -> (Vec<(Tok, Span)>, Vec<ParseError>) {
    let mut toks = Vec::new();
    let mut errors = Vec::new();
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let total = src.len();
    let mut line = start_line;
    let mut col = 1u32;
    let mut i = 0usize;
    while i < chars.len() {
        let (off, c) = chars[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        if c == '/' && chars.get(i + 1).map(|&(_, c)| c) == Some('/') {
            while i < chars.len() && chars[i].1 != '\n' {
                i += 1;
            }
            continue;
        }
        if is_ident_start(c) {
            let (start_col, start_off) = (col, off);
            let mut s = String::new();
            while i < chars.len() {
                let (_, c) = chars[i];
                if is_ident_char(c) {
                    s.push(c);
                    i += 1;
                    col += 1;
                } else if c == ':'
                    && chars.get(i + 1).map(|&(_, c)| c) == Some(':')
                    && chars.get(i + 2).is_some_and(|&(_, c)| is_ident_start(c))
                {
                    s.push_str("::");
                    i += 2;
                    col += 2;
                } else {
                    break;
                }
            }
            let end = chars.get(i).map_or(total, |&(o, _)| o);
            let span = Span::new(
                line,
                start_col,
                base_offset + start_off as u32,
                (end - start_off) as u32,
            );
            toks.push((Tok::Ident(s), span));
            continue;
        }
        if c.is_ascii_digit() {
            let (start_col, start_off) = (col, off);
            let mut v: Option<i64> = Some(0);
            while i < chars.len() && chars[i].1.is_ascii_digit() {
                v = v
                    .and_then(|v| v.checked_mul(10))
                    .and_then(|v| v.checked_add((chars[i].1 as u8 - b'0') as i64));
                i += 1;
                col += 1;
            }
            let end = chars.get(i).map_or(total, |&(o, _)| o);
            let span = Span::new(
                line,
                start_col,
                base_offset + start_off as u32,
                (end - start_off) as u32,
            );
            match v {
                Some(v) => toks.push((Tok::Int(v), span)),
                None => errors
                    .push(ParseError { span, message: "integer literal overflows i64".to_owned() }),
            }
            continue;
        }
        let two: Option<&'static str> = match (c, chars.get(i + 1).map(|&(_, c)| c)) {
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            _ => None,
        };
        if let Some(sym) = two {
            toks.push((Tok::Sym(sym), Span::new(line, col, base_offset + off as u32, 2)));
            i += 2;
            col += 2;
            continue;
        }
        let one: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            '{' => Some("{"),
            '}' => Some("}"),
            '[' => Some("["),
            ']' => Some("]"),
            ';' => Some(";"),
            ':' => Some(":"),
            ',' => Some(","),
            '.' => Some("."),
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '&' => Some("&"),
            '?' => Some("?"),
            _ => None,
        };
        match one {
            Some(sym) => {
                toks.push((Tok::Sym(sym), Span::new(line, col, base_offset + off as u32, 1)));
            }
            None => errors.push(ParseError {
                span: Span::new(line, col, base_offset + off as u32, c.len_utf8() as u32),
                message: format!("unexpected character {c:?}"),
            }),
        }
        i += 1;
        col += 1;
    }
    (toks, errors)
}

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
}

impl Parser {
    /// The span of the current token (or the last one at end of input).
    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(Span::new(1, 1, 0, 0), |(_, s)| *s)
    }

    /// A span from the first token at `start` through the last consumed
    /// token — the extent of a whole statement.
    fn span_from(&self, start: usize) -> Span {
        let first = self.toks.get(start).map_or_else(|| self.span(), |(_, s)| *s);
        let last = if self.pos > start {
            self.toks.get(self.pos - 1).map_or(first, |(_, s)| *s)
        } else {
            first
        };
        let end = last.byte_offset + last.len;
        Span::new(first.line, first.col, first.byte_offset, end.saturating_sub(first.byte_offset))
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError { span: self.span(), message: message.into() })
    }

    /// An error anchored at the *last consumed* token — for `expect_*`
    /// failures, where [`next`](Self::next) has already advanced past
    /// the offender.
    fn err_prev<T>(&self, message: impl Into<String>) -> PResult<T> {
        let span = if self.pos > 0 {
            self.toks.get(self.pos - 1).map_or_else(|| self.span(), |(_, s)| *s)
        } else {
            self.span()
        };
        Err(ParseError { span, message: message.into() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn next(&mut self) -> PResult<Tok> {
        match self.toks.get(self.pos) {
            Some((t, _)) => {
                self.pos += 1;
                Ok(t.clone())
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn expect_sym(&mut self, sym: &str) -> PResult<()> {
        match self.next()? {
            Tok::Sym(s) if s == sym => Ok(()),
            other => self.err_prev(format!("expected `{sym}`, found {other}")),
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => self.err_prev(format!("expected an identifier, found {other}")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        match self.next()? {
            Tok::Ident(s) if s == kw => Ok(()),
            other => self.err_prev(format!("expected `{kw}`, found {other}")),
        }
    }

    fn expect_int(&mut self) -> PResult<i64> {
        match self.next()? {
            Tok::Int(v) => Ok(v),
            other => self.err_prev(format!("expected an integer, found {other}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Error recovery inside a block: skips forward past the next `;`,
    /// stopping *before* a `}` so the enclosing block can still close.
    /// Returns `false` when the end of input was reached instead.
    fn sync_stmt(&mut self) -> bool {
        while let Some(t) = self.peek() {
            match t {
                Tok::Sym(";") => {
                    self.pos += 1;
                    return true;
                }
                Tok::Sym("}") => return true,
                _ => self.pos += 1,
            }
        }
        false
    }

    /// Error recovery at the top level: skips forward (at least one
    /// token) to the next `class`/`global`/`fn` declaration keyword.
    fn sync_decl(&mut self) {
        self.pos += 1;
        while let Some(t) = self.peek() {
            if matches!(t, Tok::Ident(s) if s == "class" || s == "global" || s == "fn") {
                return;
            }
            self.pos += 1;
        }
    }
}

/// Error accumulation for [`parse_program_recovering`]; when disabled the
/// first error propagates unchanged (the [`parse_program`] behavior).
struct Recovery {
    enabled: bool,
    errors: Vec<ParseError>,
}

impl Recovery {
    /// `true` while more errors may still be collected.
    fn has_room(&self) -> bool {
        self.errors.len() < MAX_ERRORS
    }
}

/// Variable scope during parsing.
struct Names {
    map: HashMap<String, VarId>,
}

impl Names {
    fn resolve(&self, span: Span, name: &str) -> PResult<VarId> {
        self.map
            .get(name)
            .copied()
            .ok_or_else(|| ParseError { span, message: format!("unknown variable `{name}`") })
    }
}

/// Parses a `.pnx` source into a [`Program`], stopping at the first
/// error.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending span on any syntax or
/// name-resolution failure. Use [`parse_program_recovering`] to collect
/// every leading error instead of only the first.
///
/// # Examples
///
/// ```
/// use pnew_detector::{parse_program, Analyzer};
///
/// let program = parse_program(
///     "program demo;\n\
///      class Student size 16;\n\
///      class GradStudent size 32 : Student;\n\
///      fn main() {\n\
///          local stud: Student;\n\
///          local st: ptr;\n\
///          st = new (&stud) GradStudent();\n\
///      }\n",
/// ).unwrap();
/// assert!(Analyzer::new().analyze(&program).detected());
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_internal(src, false).map_err(|errors| {
        errors.into_iter().next().unwrap_or_else(|| ParseError {
            span: Span::new(1, 1, 0, 0),
            message: "parse failed".to_owned(),
        })
    })
}

/// Parses a `.pnx` source, recovering after each error and returning
/// *all* leading parse errors (capped at [`MAX_ERRORS`]).
///
/// After a bad statement the parser skips to the next `;` (or the end of
/// the block); after a bad declaration it skips to the next
/// `class`/`global`/`fn`. Later errors can be knock-on effects of
/// earlier ones, but each carries its own precise span.
///
/// # Errors
///
/// Returns every [`ParseError`] collected, in source order; the list is
/// never empty on the `Err` path.
pub fn parse_program_recovering(src: &str) -> Result<Program, Vec<ParseError>> {
    parse_internal(src, true)
}

#[allow(clippy::too_many_lines)]
fn parse_internal(src: &str, recover: bool) -> Result<Program, Vec<ParseError>> {
    // The program name may contain characters the lexer rejects ('-'),
    // so the header is scanned textually first. `consumed` tracks the
    // byte offset so later token spans index into the full source.
    let mut header_lines = 0u32;
    let mut consumed = 0usize;
    let mut rest = src;
    let mut name = None;
    while name.is_none() {
        if rest.is_empty() {
            break;
        }
        let nl = rest.find('\n').map_or(rest.len(), |i| i + 1);
        let (line, tail) = rest.split_at(nl);
        let trimmed = line.trim();
        header_lines += 1;
        let line_start = consumed;
        consumed += nl;
        rest = tail;
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        let lead = line.len() - line.trim_start().len();
        let header_span = Span::new(
            header_lines,
            1 + line[..lead].chars().count() as u32,
            (line_start + lead) as u32,
            trimmed.len() as u32,
        );
        let Some(n) = trimmed.strip_prefix("program ") else {
            return Err(vec![ParseError {
                span: header_span,
                message: "expected `program <name>;` header".to_owned(),
            }]);
        };
        let Some(n) = n.trim().strip_suffix(';') else {
            return Err(vec![ParseError {
                span: header_span,
                message: "the program header must end with `;`".to_owned(),
            }]);
        };
        name = Some(n.trim().to_owned());
    }
    let Some(name) = name else {
        return Err(vec![ParseError {
            span: Span::new(1, 1, 0, 0),
            message: "empty source".to_owned(),
        }]);
    };

    let (toks, mut lex_errors) = lex(rest, header_lines + 1, consumed as u32);
    if !recover && !lex_errors.is_empty() {
        return Err(vec![lex_errors.remove(0)]);
    }
    let mut parser = Parser { toks, pos: 0 };
    let mut builder = ProgramBuilder::new(&name);
    let mut globals = Names { map: HashMap::new() };
    let mut rec = Recovery { enabled: recover, errors: Vec::new() };
    rec.errors.extend(lex_errors.into_iter().take(MAX_ERRORS));

    while parser.peek().is_some() {
        if !rec.has_room() {
            break;
        }
        let step = if parser.eat_keyword("class") {
            parse_class(&mut parser, &mut builder)
        } else if parser.eat_keyword("global") {
            parse_global(&mut parser, &mut builder, &mut globals)
        } else if parser.eat_keyword("fn") {
            parse_function(&mut parser, &mut builder, &globals, &mut rec)
        } else {
            parser.err("expected `class`, `global`, or `fn`")
        };
        if let Err(e) = step {
            if !rec.enabled {
                return Err(vec![e]);
            }
            if rec.has_room() {
                rec.errors.push(e);
            }
            parser.sync_decl();
        }
    }
    if rec.errors.is_empty() {
        Ok(builder.build())
    } else {
        // Lexer and parser errors interleave; report in source order.
        rec.errors.sort_by_key(|e| e.span.byte_offset);
        Err(rec.errors)
    }
}

fn parse_class(p: &mut Parser, b: &mut ProgramBuilder) -> PResult<()> {
    let name = p.expect_ident()?;
    p.expect_keyword("size")?;
    let size = p.expect_int()?;
    let size = u32::try_from(size)
        .map_err(|_| ParseError { span: p.span(), message: "class size must fit u32".into() })?;
    let base = if p.eat_sym(":") { Some(p.expect_ident()?) } else { None };
    let polymorphic = p.eat_keyword("polymorphic");
    p.expect_sym(";")?;
    b.class(&name, size, base.as_deref(), polymorphic);
    Ok(())
}

fn parse_global(p: &mut Parser, b: &mut ProgramBuilder, globals: &mut Names) -> PResult<()> {
    let gname = p.expect_ident()?;
    p.expect_sym(":")?;
    let ty = parse_ty(p)?;
    p.expect_sym(";")?;
    let id = b.global(&gname, ty);
    globals.map.insert(gname, id);
    Ok(())
}

fn parse_ty(p: &mut Parser) -> PResult<Ty> {
    let name = p.expect_ident()?;
    Ok(match name.as_str() {
        "int" => Ty::Int,
        "double" => Ty::Double,
        "ptr" => Ty::Ptr,
        "char" => {
            if p.eat_sym("[") {
                let len = if p.eat_sym("?") {
                    None
                } else {
                    let v = p.expect_int()?;
                    Some(u32::try_from(v).map_err(|_| ParseError {
                        span: p.span(),
                        message: "array length must fit u32".into(),
                    })?)
                };
                p.expect_sym("]")?;
                Ty::CharArray(len)
            } else {
                Ty::Char
            }
        }
        _ => Ty::Class(name),
    })
}

fn parse_function(
    p: &mut Parser,
    b: &mut ProgramBuilder,
    globals: &Names,
    rec: &mut Recovery,
) -> PResult<()> {
    let fname = p.expect_ident()?;
    p.expect_sym("(")?;
    let mut f = b.function(&fname);
    let mut names = Names { map: globals.map.clone() };
    if !p.eat_sym(")") {
        loop {
            let pname = p.expect_ident()?;
            p.expect_sym(":")?;
            let ty = parse_ty(p)?;
            let tainted = p.eat_keyword("tainted");
            let id = f.param(&pname, ty, tainted);
            names.map.insert(pname, id);
            if p.eat_sym(")") {
                break;
            }
            p.expect_sym(",")?;
        }
    }
    p.expect_sym("{")?;
    match parse_block(p, &mut f, &mut names, true, rec) {
        Ok(()) => f.finish(),
        Err(e) if rec.enabled => {
            // The block could not be recovered in place (end of input or
            // the error cap); keep the partial function so its sites
            // stay consistent and report from the top level.
            if rec.has_room() {
                rec.errors.push(e);
            }
            f.close_open_blocks();
            f.finish();
        }
        Err(e) => return Err(e),
    }
    Ok(())
}

/// Parses statements until the closing `}` (consumed). `allow_locals`
/// permits `local` declarations (top level of a function only).
fn parse_block(
    p: &mut Parser,
    f: &mut FunctionBuilder<'_>,
    names: &mut Names,
    allow_locals: bool,
    rec: &mut Recovery,
) -> PResult<()> {
    loop {
        if p.eat_sym("}") {
            return Ok(());
        }
        if p.peek().is_none() {
            return p.err("unexpected end of input inside a block");
        }
        match parse_stmt(p, f, names, allow_locals, rec) {
            Ok(()) => {}
            Err(e) if rec.enabled && rec.has_room() => {
                rec.errors.push(e);
                if !rec.has_room() {
                    return p.err("too many parse errors; giving up");
                }
                if !p.sync_stmt() {
                    return p.err("unexpected end of input inside a block");
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Stamps the span of the statement parsed since `start` onto the next
/// builder push (tokens `[start, p.pos)`).
fn mark(p: &Parser, f: &mut FunctionBuilder<'_>, start: usize) {
    f.with_next_span(p.span_from(start));
}

#[allow(clippy::too_many_lines)]
fn parse_stmt(
    p: &mut Parser,
    f: &mut FunctionBuilder<'_>,
    names: &mut Names,
    allow_locals: bool,
    rec: &mut Recovery,
) -> PResult<()> {
    let start = p.pos;
    if p.eat_keyword("local") {
        if !allow_locals {
            return p.err("`local` declarations are only allowed at function top level");
        }
        let lname = p.expect_ident()?;
        p.expect_sym(":")?;
        let ty = parse_ty(p)?;
        p.expect_sym(";")?;
        let id = f.local(&lname, ty);
        names.map.insert(lname, id);
        return Ok(());
    }
    if p.eat_keyword("read") {
        let v = resolve_next(p, names)?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.read_input(v);
        return Ok(());
    }
    if p.eat_keyword("read_secret") {
        let v = resolve_next(p, names)?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.read_secret(v);
        return Ok(());
    }
    if p.eat_keyword("recv") {
        let v = resolve_next(p, names)?;
        p.expect_sym(":")?;
        let class = p.expect_ident()?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.recv_object(v, &class);
        return Ok(());
    }
    if p.eat_keyword("output") {
        let v = resolve_next(p, names)?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.output(v);
        return Ok(());
    }
    if p.eat_keyword("delete") {
        if p.eat_sym("(") {
            let class = p.expect_ident()?;
            p.expect_sym("*")?;
            p.expect_sym(")")?;
            let v = resolve_next(p, names)?;
            p.expect_sym(";")?;
            mark(p, f, start);
            f.delete(v, Some(&class));
        } else {
            let v = resolve_next(p, names)?;
            p.expect_sym(";")?;
            mark(p, f, start);
            f.delete(v, None);
        }
        return Ok(());
    }
    if p.eat_keyword("vcall") {
        let v = resolve_next(p, names)?;
        p.expect_sym(".")?;
        let method = p.expect_ident()?;
        p.expect_sym("(")?;
        p.expect_sym(")")?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.virtual_call(v, &method);
        return Ok(());
    }
    if p.eat_keyword("call") {
        let func = p.expect_ident()?;
        p.expect_sym("(")?;
        let mut args = Vec::new();
        if !p.eat_sym(")") {
            loop {
                args.push(parse_expr(p, names)?);
                if p.eat_sym(")") {
                    break;
                }
                p.expect_sym(",")?;
            }
        }
        p.expect_sym(";")?;
        mark(p, f, start);
        f.call(&func, args);
        return Ok(());
    }
    if p.eat_keyword("callptr") {
        let v = resolve_next(p, names)?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.call_ptr(v);
        return Ok(());
    }
    if p.eat_keyword("return") {
        p.expect_sym(";")?;
        mark(p, f, start);
        f.ret();
        return Ok(());
    }
    if p.eat_keyword("strncpy") {
        p.expect_sym("(")?;
        let dst = resolve_next(p, names)?;
        p.expect_sym(",")?;
        let src = parse_expr(p, names)?;
        p.expect_sym(",")?;
        let len = parse_expr(p, names)?;
        p.expect_sym(")")?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.strncpy(dst, src, len);
        return Ok(());
    }
    if p.eat_keyword("memset") {
        p.expect_sym("(")?;
        let dst = resolve_next(p, names)?;
        p.expect_sym(",")?;
        let len = parse_expr(p, names)?;
        p.expect_sym(")")?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.memset(dst, len);
        return Ok(());
    }
    if p.eat_keyword("if") {
        p.expect_sym("(")?;
        let (lhs, op, rhs) = parse_cond(p, names)?;
        p.expect_sym(")")?;
        p.expect_sym("{")?;
        // The header's span covers `if (cond) {`.
        mark(p, f, start);
        f.if_start(lhs, op, rhs);
        parse_block(p, f, names, false, rec)?;
        if p.eat_keyword("else") {
            p.expect_sym("{")?;
            f.else_branch();
            parse_block(p, f, names, false, rec)?;
        }
        f.end_if();
        return Ok(());
    }
    if p.eat_keyword("while") {
        p.expect_sym("(")?;
        let (lhs, op, rhs) = parse_cond(p, names)?;
        p.expect_sym(")")?;
        p.expect_sym("{")?;
        mark(p, f, start);
        f.while_start(lhs, op, rhs);
        parse_block(p, f, names, false, rec)?;
        f.end_while();
        return Ok(());
    }

    // Assignment forms: `x = …;` or `x.field = …;`
    let target_span = p.span();
    let target = p.expect_ident()?;
    let target_id = names.resolve(target_span, &target)?;
    if p.eat_sym(".") {
        let field = p.expect_ident()?;
        p.expect_sym("=")?;
        let src = parse_expr(p, names)?;
        p.expect_sym(";")?;
        mark(p, f, start);
        f.field_store(target_id, &field, src);
        return Ok(());
    }
    p.expect_sym("=")?;
    if p.eat_keyword("null") {
        p.expect_sym(";")?;
        mark(p, f, start);
        f.null_assign(target_id);
        return Ok(());
    }
    if p.eat_keyword("new") {
        if p.eat_sym("(") {
            // Placement form.
            let arena = parse_expr(p, names)?;
            p.expect_sym(")")?;
            if p.eat_keyword("array") {
                p.expect_sym("[")?;
                let elem = p.expect_int()?;
                let elem = u32::try_from(elem).map_err(|_| ParseError {
                    span: p.span(),
                    message: "element size must fit u32".into(),
                })?;
                p.expect_sym(";")?;
                let count = parse_expr(p, names)?;
                p.expect_sym("]")?;
                p.expect_sym(";")?;
                mark(p, f, start);
                f.placement_new_array(target_id, arena, elem, count);
            } else {
                let class = p.expect_ident()?;
                p.expect_sym("(")?;
                let mut args = Vec::new();
                if !p.eat_sym(")") {
                    loop {
                        args.push(parse_expr(p, names)?);
                        if p.eat_sym(")") {
                            break;
                        }
                        p.expect_sym(",")?;
                    }
                }
                p.expect_sym(";")?;
                mark(p, f, start);
                f.placement_new_with(target_id, arena, &class, args);
            }
        } else if p.eat_keyword("bytes") {
            p.expect_sym("[")?;
            let count = parse_expr(p, names)?;
            p.expect_sym("]")?;
            p.expect_sym(";")?;
            mark(p, f, start);
            f.heap_new_array(target_id, count);
        } else {
            let class = p.expect_ident()?;
            p.expect_sym("(")?;
            p.expect_sym(")")?;
            p.expect_sym(";")?;
            mark(p, f, start);
            f.heap_new(target_id, &class);
        }
        return Ok(());
    }
    let src = parse_expr(p, names)?;
    p.expect_sym(";")?;
    mark(p, f, start);
    f.assign(target_id, src);
    Ok(())
}

fn resolve_next(p: &mut Parser, names: &Names) -> PResult<VarId> {
    let span = p.span();
    let name = p.expect_ident()?;
    names.resolve(span, &name)
}

fn parse_cond(p: &mut Parser, names: &Names) -> PResult<(Expr, CmpOp, Expr)> {
    let lhs = parse_expr(p, names)?;
    let op = match p.next()? {
        Tok::Sym("<") => CmpOp::Lt,
        Tok::Sym("<=") => CmpOp::Le,
        Tok::Sym(">") => CmpOp::Gt,
        Tok::Sym(">=") => CmpOp::Ge,
        Tok::Sym("==") => CmpOp::Eq,
        Tok::Sym("!=") => CmpOp::Ne,
        other => return p.err_prev(format!("expected a comparison operator, found {other}")),
    };
    let rhs = parse_expr(p, names)?;
    Ok((lhs, op, rhs))
}

fn parse_expr(p: &mut Parser, names: &Names) -> PResult<Expr> {
    let mut lhs = parse_term(p, names)?;
    loop {
        if p.eat_sym("+") {
            let rhs = parse_term(p, names)?;
            lhs = Expr::add(lhs, rhs);
        } else if p.eat_sym("-") {
            let rhs = parse_term(p, names)?;
            lhs = Expr::BinOp(crate::ir::Op::Sub, Box::new(lhs), Box::new(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_term(p: &mut Parser, names: &Names) -> PResult<Expr> {
    let mut lhs = parse_factor(p, names)?;
    while p.eat_sym("*") {
        let rhs = parse_factor(p, names)?;
        lhs = Expr::mul(lhs, rhs);
    }
    Ok(lhs)
}

fn parse_factor(p: &mut Parser, names: &Names) -> PResult<Expr> {
    if p.eat_sym("(") {
        let e = parse_expr(p, names)?;
        p.expect_sym(")")?;
        return Ok(e);
    }
    if p.eat_sym("-") {
        let v = p.expect_int()?;
        return Ok(Expr::Const(-v));
    }
    if p.eat_sym("&") {
        let v = resolve_next(p, names)?;
        return Ok(Expr::AddrOf(v));
    }
    match p.peek() {
        Some(Tok::Int(_)) => {
            let v = p.expect_int()?;
            Ok(Expr::Const(v))
        }
        Some(Tok::Ident(s)) if s == "sizeof" => {
            p.pos += 1;
            p.expect_sym("(")?;
            let class = p.expect_ident()?;
            p.expect_sym(")")?;
            Ok(Expr::SizeOf(class))
        }
        Some(Tok::Ident(_)) => {
            let span = p.span();
            let name = p.expect_ident()?;
            let id = names.resolve(span, &name)?;
            if matches!(p.peek(), Some(Tok::Sym("."))) && matches!(p.peek2(), Some(Tok::Ident(_))) {
                p.pos += 1;
                let field = p.expect_ident()?;
                Ok(Expr::Field(id, field))
            } else {
                Ok(Expr::Var(id))
            }
        }
        other => {
            let msg = other.map_or_else(
                || "unexpected end of input in expression".to_owned(),
                |t| format!("unexpected token {t} in expression"),
            );
            p.err(msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Stmt;
    use crate::pretty::pretty;
    use crate::{Analyzer, FindingKind};

    #[test]
    fn parses_the_doc_example() {
        let program = parse_program(
            "program demo;\n\
             class Student size 16;\n\
             class GradStudent size 32 : Student;\n\
             fn main() {\n\
                 local stud: Student;\n\
                 local st: ptr;\n\
                 st = new (&stud) GradStudent();\n\
             }\n",
        )
        .unwrap();
        assert_eq!(program.name, "demo");
        assert_eq!(program.classes.len(), 2);
        let report = Analyzer::new().analyze(&program);
        assert_eq!(report.of_kind(FindingKind::OversizedPlacement).len(), 1);
    }

    #[test]
    fn round_trips_a_rich_program() {
        let src = "\
program rich-demo-01;

class Student size 16;
class GradStudent size 32 : Student;
class Poly size 24 polymorphic;

global pool: char[72];
global count: int;

fn sortAndAddUname(uname: ptr tainted, cfg: ptr) {
    local n: int;
    local stud: Student;
    local st: ptr;
    local buf: ptr;
    read n;
    if (n > 8) {
        return;
    } else {
        n = (n + 1);
    }
    st = new (&stud) GradStudent(uname);
    buf = new (&pool) array[9; n];
    strncpy(buf, uname, (n * 9));
    while (n != 0) {
        n = (n - 1);
    }
    delete (Student*) st;
    st = null;
}

fn Helper::run() {
    local q: ptr;
    q = new GradStudent();
    q = new bytes[64];
    read_secret q;
    memset(q, 64);
    recv q: Student;
    output q;
    vcall q.getInfo();
    callptr q;
    q.field = sizeof(Poly);
}
";
        let program = parse_program(src).unwrap();
        let printed = pretty(&program);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(program, reparsed, "parse∘pretty must be the identity");
    }

    #[test]
    fn program_names_may_contain_dashes() {
        let p = parse_program("program listing-04-construction;\nfn f() {\n}\n").unwrap();
        assert_eq!(p.name, "listing-04-construction");
    }

    #[test]
    fn function_names_may_contain_double_colons() {
        let p = parse_program("program t;\nfn MobilePlayer::addStudentPlayer() {\n}\n").unwrap();
        assert_eq!(p.functions[0].name, "MobilePlayer::addStudentPlayer");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = parse_program(
            "// leading comment\n\nprogram t;\n// about f\nfn f() {\n    // body comment\n    return;\n}\n",
        )
        .unwrap();
        assert_eq!(p.functions[0].body.len(), 1);
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The stray `!` is a lexer error: line 3, and the column of the
        // `!` itself.
        let err = parse_program("program t;\nfn f() {\n    bogus!;\n}\n").unwrap_err();
        assert_eq!(err.span.line, 3);
        assert_eq!(err.span.col, 10);
        assert!(err.to_string().contains("line 3"));

        let err = parse_program("not a header\n").unwrap_err();
        assert!(err.message.contains("program"));
    }

    #[test]
    fn unknown_variables_are_rejected() {
        let err = parse_program("program t;\nfn f() {\n    x = 1;\n}\n").unwrap_err();
        assert!(err.message.contains("unknown variable `x`"));
        // The span points at the variable itself, not a later token.
        assert_eq!(err.span.line, 3);
        assert_eq!(err.span.col, 5);
        assert_eq!(err.span.len, 1);
    }

    #[test]
    fn locals_are_rejected_inside_blocks() {
        let err = parse_program(
            "program t;\nfn f() {\n    local n: int;\n    if (n > 0) {\n        local m: int;\n    }\n}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("top level"));
    }

    #[test]
    fn negative_literals_and_subtraction() {
        let p = parse_program(
            "program t;\nfn f() {\n    local x: int;\n    x = -5;\n    x = (x - -3);\n}\n",
        )
        .unwrap();
        let report = Analyzer::new().analyze(&p);
        assert!(!report.detected());
    }

    #[test]
    fn char_array_types() {
        let p = parse_program(
            "program t;\nglobal a: char[16];\nglobal b: char[?];\nglobal c: char;\nfn f() {\n}\n",
        )
        .unwrap();
        assert_eq!(p.vars[0].ty, Ty::CharArray(Some(16)));
        assert_eq!(p.vars[1].ty, Ty::CharArray(None));
        assert_eq!(p.vars[2].ty, Ty::Char);
    }

    #[test]
    fn shadowing_params_resolve_locally() {
        let p =
            parse_program("program t;\nglobal n: int;\nfn f(n: int tainted) {\n    read n;\n}\n")
                .unwrap();
        // The read targets the param (id 1), not the global (id 0).
        match &p.functions[0].body[0] {
            crate::ir::Stmt::ReadInput { dst, .. } => assert_eq!(dst.index(), 1),
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn statement_spans_point_into_the_source() {
        let src = "program t;\n\
                   class Student size 16;\n\
                   class GradStudent size 32 : Student;\n\
                   fn main() {\n\
                   \x20   local stud: Student;\n\
                   \x20   local st: ptr;\n\
                   \x20   st = new (&stud) GradStudent();\n\
                   \x20   return;\n\
                   }\n";
        let p = parse_program(src).unwrap();
        let body = &p.functions[0].body;
        let placement = body[0].site().span.expect("parsed statements carry spans");
        assert_eq!(placement.line, 7);
        assert_eq!(placement.col, 5);
        let text =
            &src[placement.byte_offset as usize..(placement.byte_offset + placement.len) as usize];
        assert_eq!(text, "st = new (&stud) GradStudent();");
        let ret = body[1].site().span.expect("span on return");
        assert_eq!(ret.line, 8);
        let text = &src[ret.byte_offset as usize..(ret.byte_offset + ret.len) as usize];
        assert_eq!(text, "return;");
    }

    #[test]
    fn block_header_spans_cover_the_condition() {
        let src =
            "program t;\nfn f() {\n    local n: int;\n    if (n > 0) {\n        n = 1;\n    }\n}\n";
        let p = parse_program(src).unwrap();
        let body = &p.functions[0].body;
        let Stmt::If { site, then_body, .. } = &body[0] else { panic!("expected If") };
        let span = site.span.expect("span on if header");
        let text = &src[span.byte_offset as usize..(span.byte_offset + span.len) as usize];
        assert_eq!(text, "if (n > 0) {");
        let inner = then_body[0].site().span.expect("span on nested stmt");
        assert_eq!(inner.line, 5);
        assert_eq!(inner.col, 9);
    }

    #[test]
    fn columns_disambiguate_same_line_errors() {
        // Two statements on one line: the error span must point at the
        // second one's column, not just the line.
        let err = parse_program("program t;\nfn f() {\n    return; x = 1;\n}\n").unwrap_err();
        assert!(err.message.contains("unknown variable `x`"));
        assert_eq!(err.span.line, 3);
        assert_eq!(err.span.col, 13);
        assert_eq!(err.span.len, 1);
    }

    #[test]
    fn spans_survive_crlf_free_multibyte_comments() {
        // Multibyte characters in comments must not desync byte offsets.
        let src = "program t;\n// naïve café comment\nfn f() {\n    return;\n}\n";
        let p = parse_program(src).unwrap();
        let ret = p.functions[0].body[0].site().span.expect("span");
        let text = &src[ret.byte_offset as usize..(ret.byte_offset + ret.len) as usize];
        assert_eq!(text, "return;");
    }

    #[test]
    fn recovering_parser_reports_every_error() {
        let errs = parse_program_recovering(
            "program t;\n\
             fn f() {\n\
                 local n: int;\n\
                 bogus!;\n\
                 n = ;\n\
                 read n;\n\
             }\n",
        )
        .unwrap_err();
        // The stray `!` (lexer), the unknown variable `bogus`, and the
        // missing expression in `n = ;` — all reported, in source order.
        assert!(errs.len() >= 3, "{errs:?}");
        assert!(errs
            .iter()
            .any(|e| e.span.line == 4 && e.message.contains("unexpected character")));
        assert!(errs.iter().any(|e| e.span.line == 4 && e.message.contains("unknown variable")));
        assert!(errs.iter().any(|e| e.span.line == 5), "{errs:?}");
        assert!(errs.windows(2).all(|w| w[0].span.byte_offset <= w[1].span.byte_offset));
    }

    #[test]
    fn recovering_parser_resyncs_at_declarations() {
        let errs = parse_program_recovering(
            "program t;\n\
             class Broken size ;\n\
             fn f( {\n\
             }\n\
             fn g() {\n\
                 return\n\
             }\n",
        )
        .unwrap_err();
        assert!(errs.len() >= 3, "{errs:?}");
        // Every error names its own line.
        assert!(errs.iter().any(|e| e.span.line == 2), "{errs:?}");
    }

    #[test]
    fn recovering_parser_matches_strict_parser_on_good_input() {
        let src = "program t;\nfn f() {\n    local n: int;\n    read n;\n}\n";
        let strict = parse_program(src).unwrap();
        let recovering = parse_program_recovering(src).unwrap();
        assert_eq!(strict, recovering);
    }

    #[test]
    fn recovering_parser_caps_the_error_count() {
        let mut src = String::from("program t;\nfn f() {\n");
        for _ in 0..200 {
            src.push_str("    bogus!;\n");
        }
        src.push_str("}\n");
        let errs = parse_program_recovering(&src).unwrap_err();
        assert!(errs.len() <= MAX_ERRORS, "{}", errs.len());
    }

    #[test]
    fn recovering_parser_survives_unclosed_blocks() {
        let errs = parse_program_recovering(
            "program t;\nfn f() {\n    local n: int;\n    if (n > 0) {\n        bogus!;\n",
        )
        .unwrap_err();
        assert!(!errs.is_empty());
    }
}
