//! Parser for the `.pnx` surface syntax.
//!
//! The inverse of [`pretty`](crate::pretty_program): parses the textual
//! form back into an IR [`Program`], so the detector works as a
//! command-line tool over source files (`pncheck`). The grammar is the
//! C++-like subset the corpus uses; see the module docs of
//! [`pretty`](crate::pretty) for a sample.
//!
//! Round-trip guarantee (tested over the whole corpus and with proptest):
//! `parse(pretty(p)) == p`.
//!
//! Statement keywords (`local`, `read`, `read_secret`, `recv`, `output`,
//! `delete`, `vcall`, `call`, `callptr`, `return`, `strncpy`, `memset`,
//! `if`, `else`, `while`, `new`, `bytes`, `array`, `null`, `sizeof`) are
//! reserved: a variable with one of those names at the start of a
//! statement is parsed as the keyword form.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::builder::{FunctionBuilder, ProgramBuilder};
use crate::ir::{CmpOp, Expr, Program, Ty, VarId};

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Source line of the failure.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Sym(s) => write!(f, "`{s}`"),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn lex(src: &str, start_line: u32) -> PResult<Vec<(Tok, u32)>> {
    let mut toks = Vec::new();
    let mut line = start_line;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if is_ident_start(c) {
            let mut s = String::new();
            while i < chars.len() {
                let c = chars[i];
                if is_ident_char(c) {
                    s.push(c);
                    i += 1;
                } else if c == ':'
                    && chars.get(i + 1) == Some(&':')
                    && chars.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    s.push_str("::");
                    i += 2;
                } else {
                    break;
                }
            }
            toks.push((Tok::Ident(s), line));
            continue;
        }
        if c.is_ascii_digit() {
            let mut v: i64 = 0;
            while i < chars.len() && chars[i].is_ascii_digit() {
                v = v
                    .checked_mul(10)
                    .and_then(|v| v.checked_add((chars[i] as u8 - b'0') as i64))
                    .ok_or_else(|| ParseError {
                    line,
                    message: "integer literal overflows i64".to_owned(),
                })?;
                i += 1;
            }
            toks.push((Tok::Int(v), line));
            continue;
        }
        let two: Option<&'static str> = match (c, chars.get(i + 1)) {
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            _ => None,
        };
        if let Some(sym) = two {
            toks.push((Tok::Sym(sym), line));
            i += 2;
            continue;
        }
        let one: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            '{' => Some("{"),
            '}' => Some("}"),
            '[' => Some("["),
            ']' => Some("]"),
            ';' => Some(";"),
            ':' => Some(":"),
            ',' => Some(","),
            '.' => Some("."),
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '&' => Some("&"),
            '?' => Some("?"),
            _ => None,
        };
        match one {
            Some(sym) => {
                toks.push((Tok::Sym(sym), line));
                i += 1;
            }
            None => {
                return Err(ParseError { line, message: format!("unexpected character {c:?}") })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> u32 {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map_or(1, |(_, l)| *l)
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError { line: self.line(), message: message.into() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn next(&mut self) -> PResult<Tok> {
        match self.toks.get(self.pos) {
            Some((t, _)) => {
                self.pos += 1;
                Ok(t.clone())
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn expect_sym(&mut self, sym: &str) -> PResult<()> {
        match self.next()? {
            Tok::Sym(s) if s == sym => Ok(()),
            other => self.err(format!("expected `{sym}`, found {other}")),
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected an identifier, found {other}")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        match self.next()? {
            Tok::Ident(s) if s == kw => Ok(()),
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn expect_int(&mut self) -> PResult<i64> {
        match self.next()? {
            Tok::Int(v) => Ok(v),
            other => self.err(format!("expected an integer, found {other}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// Variable scope during parsing.
struct Names {
    map: HashMap<String, VarId>,
}

impl Names {
    fn resolve(&self, p: &Parser, name: &str) -> PResult<VarId> {
        self.map.get(name).copied().ok_or_else(|| ParseError {
            line: p.line(),
            message: format!("unknown variable `{name}`"),
        })
    }
}

/// Parses a `.pnx` source into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on any syntax or
/// name-resolution failure.
///
/// # Examples
///
/// ```
/// use pnew_detector::{parse_program, Analyzer};
///
/// let program = parse_program(
///     "program demo;\n\
///      class Student size 16;\n\
///      class GradStudent size 32 : Student;\n\
///      fn main() {\n\
///          local stud: Student;\n\
///          local st: ptr;\n\
///          st = new (&stud) GradStudent();\n\
///      }\n",
/// ).unwrap();
/// assert!(Analyzer::new().analyze(&program).detected());
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    // The program name may contain characters the lexer rejects ('-'),
    // so the header is scanned textually first.
    let mut header_lines = 0u32;
    let mut rest = src;
    let mut name = None;
    while name.is_none() {
        if rest.is_empty() {
            break;
        }
        let nl = rest.find('\n').map_or(rest.len(), |i| i + 1);
        let (line, tail) = rest.split_at(nl);
        let trimmed = line.trim();
        header_lines += 1;
        rest = tail;
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        let Some(n) = trimmed.strip_prefix("program ") else {
            return Err(ParseError {
                line: header_lines,
                message: "expected `program <name>;` header".to_owned(),
            });
        };
        let Some(n) = n.trim().strip_suffix(';') else {
            return Err(ParseError {
                line: header_lines,
                message: "the program header must end with `;`".to_owned(),
            });
        };
        name = Some(n.trim().to_owned());
    }
    let Some(name) = name else {
        return Err(ParseError { line: 1, message: "empty source".to_owned() });
    };

    let toks = lex(rest, header_lines + 1)?;
    let mut parser = Parser { toks, pos: 0 };
    let mut builder = ProgramBuilder::new(&name);
    let mut globals = Names { map: HashMap::new() };

    while parser.peek().is_some() {
        if parser.eat_keyword("class") {
            parse_class(&mut parser, &mut builder)?;
        } else if parser.eat_keyword("global") {
            let gname = parser.expect_ident()?;
            parser.expect_sym(":")?;
            let ty = parse_ty(&mut parser)?;
            parser.expect_sym(";")?;
            let id = builder.global(&gname, ty);
            globals.map.insert(gname, id);
        } else if parser.eat_keyword("fn") {
            parse_function(&mut parser, &mut builder, &globals)?;
        } else {
            return parser.err("expected `class`, `global`, or `fn`");
        }
    }
    Ok(builder.build())
}

fn parse_class(p: &mut Parser, b: &mut ProgramBuilder) -> PResult<()> {
    let name = p.expect_ident()?;
    p.expect_keyword("size")?;
    let size = p.expect_int()?;
    let size = u32::try_from(size)
        .map_err(|_| ParseError { line: p.line(), message: "class size must fit u32".into() })?;
    let base = if p.eat_sym(":") { Some(p.expect_ident()?) } else { None };
    let polymorphic = p.eat_keyword("polymorphic");
    p.expect_sym(";")?;
    b.class(&name, size, base.as_deref(), polymorphic);
    Ok(())
}

fn parse_ty(p: &mut Parser) -> PResult<Ty> {
    let name = p.expect_ident()?;
    Ok(match name.as_str() {
        "int" => Ty::Int,
        "double" => Ty::Double,
        "ptr" => Ty::Ptr,
        "char" => {
            if p.eat_sym("[") {
                let len = if p.eat_sym("?") {
                    None
                } else {
                    let v = p.expect_int()?;
                    Some(u32::try_from(v).map_err(|_| ParseError {
                        line: p.line(),
                        message: "array length must fit u32".into(),
                    })?)
                };
                p.expect_sym("]")?;
                Ty::CharArray(len)
            } else {
                Ty::Char
            }
        }
        _ => Ty::Class(name),
    })
}

fn parse_function(p: &mut Parser, b: &mut ProgramBuilder, globals: &Names) -> PResult<()> {
    let fname = p.expect_ident()?;
    p.expect_sym("(")?;
    let mut f = b.function(&fname);
    let mut names = Names { map: globals.map.clone() };
    if !p.eat_sym(")") {
        loop {
            let pname = p.expect_ident()?;
            p.expect_sym(":")?;
            let ty = parse_ty(p)?;
            let tainted = p.eat_keyword("tainted");
            let id = f.param(&pname, ty, tainted);
            names.map.insert(pname, id);
            if p.eat_sym(")") {
                break;
            }
            p.expect_sym(",")?;
        }
    }
    p.expect_sym("{")?;
    parse_block(p, &mut f, &mut names, true)?;
    f.finish();
    Ok(())
}

/// Parses statements until the closing `}` (consumed). `allow_locals`
/// permits `local` declarations (top level of a function only).
fn parse_block(
    p: &mut Parser,
    f: &mut FunctionBuilder<'_>,
    names: &mut Names,
    allow_locals: bool,
) -> PResult<()> {
    loop {
        if p.eat_sym("}") {
            return Ok(());
        }
        if p.peek().is_none() {
            return p.err("unexpected end of input inside a block");
        }
        parse_stmt(p, f, names, allow_locals)?;
    }
}

#[allow(clippy::too_many_lines)]
fn parse_stmt(
    p: &mut Parser,
    f: &mut FunctionBuilder<'_>,
    names: &mut Names,
    allow_locals: bool,
) -> PResult<()> {
    if p.eat_keyword("local") {
        if !allow_locals {
            return p.err("`local` declarations are only allowed at function top level");
        }
        let lname = p.expect_ident()?;
        p.expect_sym(":")?;
        let ty = parse_ty(p)?;
        p.expect_sym(";")?;
        let id = f.local(&lname, ty);
        names.map.insert(lname, id);
        return Ok(());
    }
    if p.eat_keyword("read") {
        let v = resolve_next(p, names)?;
        p.expect_sym(";")?;
        f.read_input(v);
        return Ok(());
    }
    if p.eat_keyword("read_secret") {
        let v = resolve_next(p, names)?;
        p.expect_sym(";")?;
        f.read_secret(v);
        return Ok(());
    }
    if p.eat_keyword("recv") {
        let v = resolve_next(p, names)?;
        p.expect_sym(":")?;
        let class = p.expect_ident()?;
        p.expect_sym(";")?;
        f.recv_object(v, &class);
        return Ok(());
    }
    if p.eat_keyword("output") {
        let v = resolve_next(p, names)?;
        p.expect_sym(";")?;
        f.output(v);
        return Ok(());
    }
    if p.eat_keyword("delete") {
        if p.eat_sym("(") {
            let class = p.expect_ident()?;
            p.expect_sym("*")?;
            p.expect_sym(")")?;
            let v = resolve_next(p, names)?;
            p.expect_sym(";")?;
            f.delete(v, Some(&class));
        } else {
            let v = resolve_next(p, names)?;
            p.expect_sym(";")?;
            f.delete(v, None);
        }
        return Ok(());
    }
    if p.eat_keyword("vcall") {
        let v = resolve_next(p, names)?;
        p.expect_sym(".")?;
        let method = p.expect_ident()?;
        p.expect_sym("(")?;
        p.expect_sym(")")?;
        p.expect_sym(";")?;
        f.virtual_call(v, &method);
        return Ok(());
    }
    if p.eat_keyword("call") {
        let func = p.expect_ident()?;
        p.expect_sym("(")?;
        let mut args = Vec::new();
        if !p.eat_sym(")") {
            loop {
                args.push(parse_expr(p, names)?);
                if p.eat_sym(")") {
                    break;
                }
                p.expect_sym(",")?;
            }
        }
        p.expect_sym(";")?;
        f.call(&func, args);
        return Ok(());
    }
    if p.eat_keyword("callptr") {
        let v = resolve_next(p, names)?;
        p.expect_sym(";")?;
        f.call_ptr(v);
        return Ok(());
    }
    if p.eat_keyword("return") {
        p.expect_sym(";")?;
        f.ret();
        return Ok(());
    }
    if p.eat_keyword("strncpy") {
        p.expect_sym("(")?;
        let dst = resolve_next(p, names)?;
        p.expect_sym(",")?;
        let src = parse_expr(p, names)?;
        p.expect_sym(",")?;
        let len = parse_expr(p, names)?;
        p.expect_sym(")")?;
        p.expect_sym(";")?;
        f.strncpy(dst, src, len);
        return Ok(());
    }
    if p.eat_keyword("memset") {
        p.expect_sym("(")?;
        let dst = resolve_next(p, names)?;
        p.expect_sym(",")?;
        let len = parse_expr(p, names)?;
        p.expect_sym(")")?;
        p.expect_sym(";")?;
        f.memset(dst, len);
        return Ok(());
    }
    if p.eat_keyword("if") {
        p.expect_sym("(")?;
        let (lhs, op, rhs) = parse_cond(p, names)?;
        p.expect_sym(")")?;
        p.expect_sym("{")?;
        f.if_start(lhs, op, rhs);
        parse_block(p, f, names, false)?;
        if p.eat_keyword("else") {
            p.expect_sym("{")?;
            f.else_branch();
            parse_block(p, f, names, false)?;
        }
        f.end_if();
        return Ok(());
    }
    if p.eat_keyword("while") {
        p.expect_sym("(")?;
        let (lhs, op, rhs) = parse_cond(p, names)?;
        p.expect_sym(")")?;
        p.expect_sym("{")?;
        f.while_start(lhs, op, rhs);
        parse_block(p, f, names, false)?;
        f.end_while();
        return Ok(());
    }

    // Assignment forms: `x = …;` or `x.field = …;`
    let target = p.expect_ident()?;
    let target_id = names.resolve(p, &target)?;
    if p.eat_sym(".") {
        let field = p.expect_ident()?;
        p.expect_sym("=")?;
        let src = parse_expr(p, names)?;
        p.expect_sym(";")?;
        f.field_store(target_id, &field, src);
        return Ok(());
    }
    p.expect_sym("=")?;
    if p.eat_keyword("null") {
        p.expect_sym(";")?;
        f.null_assign(target_id);
        return Ok(());
    }
    if p.eat_keyword("new") {
        if p.eat_sym("(") {
            // Placement form.
            let arena = parse_expr(p, names)?;
            p.expect_sym(")")?;
            if p.eat_keyword("array") {
                p.expect_sym("[")?;
                let elem = p.expect_int()?;
                let elem = u32::try_from(elem).map_err(|_| ParseError {
                    line: p.line(),
                    message: "element size must fit u32".into(),
                })?;
                p.expect_sym(";")?;
                let count = parse_expr(p, names)?;
                p.expect_sym("]")?;
                p.expect_sym(";")?;
                f.placement_new_array(target_id, arena, elem, count);
            } else {
                let class = p.expect_ident()?;
                p.expect_sym("(")?;
                let mut args = Vec::new();
                if !p.eat_sym(")") {
                    loop {
                        args.push(parse_expr(p, names)?);
                        if p.eat_sym(")") {
                            break;
                        }
                        p.expect_sym(",")?;
                    }
                }
                p.expect_sym(";")?;
                f.placement_new_with(target_id, arena, &class, args);
            }
        } else if p.eat_keyword("bytes") {
            p.expect_sym("[")?;
            let count = parse_expr(p, names)?;
            p.expect_sym("]")?;
            p.expect_sym(";")?;
            f.heap_new_array(target_id, count);
        } else {
            let class = p.expect_ident()?;
            p.expect_sym("(")?;
            p.expect_sym(")")?;
            p.expect_sym(";")?;
            f.heap_new(target_id, &class);
        }
        return Ok(());
    }
    let src = parse_expr(p, names)?;
    p.expect_sym(";")?;
    f.assign(target_id, src);
    Ok(())
}

fn resolve_next(p: &mut Parser, names: &Names) -> PResult<VarId> {
    let name = p.expect_ident()?;
    names.resolve(p, &name)
}

fn parse_cond(p: &mut Parser, names: &Names) -> PResult<(Expr, CmpOp, Expr)> {
    let lhs = parse_expr(p, names)?;
    let op = match p.next()? {
        Tok::Sym("<") => CmpOp::Lt,
        Tok::Sym("<=") => CmpOp::Le,
        Tok::Sym(">") => CmpOp::Gt,
        Tok::Sym(">=") => CmpOp::Ge,
        Tok::Sym("==") => CmpOp::Eq,
        Tok::Sym("!=") => CmpOp::Ne,
        other => return p.err(format!("expected a comparison operator, found {other}")),
    };
    let rhs = parse_expr(p, names)?;
    Ok((lhs, op, rhs))
}

fn parse_expr(p: &mut Parser, names: &Names) -> PResult<Expr> {
    let mut lhs = parse_term(p, names)?;
    loop {
        if p.eat_sym("+") {
            let rhs = parse_term(p, names)?;
            lhs = Expr::add(lhs, rhs);
        } else if p.eat_sym("-") {
            let rhs = parse_term(p, names)?;
            lhs = Expr::BinOp(crate::ir::Op::Sub, Box::new(lhs), Box::new(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_term(p: &mut Parser, names: &Names) -> PResult<Expr> {
    let mut lhs = parse_factor(p, names)?;
    while p.eat_sym("*") {
        let rhs = parse_factor(p, names)?;
        lhs = Expr::mul(lhs, rhs);
    }
    Ok(lhs)
}

fn parse_factor(p: &mut Parser, names: &Names) -> PResult<Expr> {
    if p.eat_sym("(") {
        let e = parse_expr(p, names)?;
        p.expect_sym(")")?;
        return Ok(e);
    }
    if p.eat_sym("-") {
        let v = p.expect_int()?;
        return Ok(Expr::Const(-v));
    }
    if p.eat_sym("&") {
        let v = resolve_next(p, names)?;
        return Ok(Expr::AddrOf(v));
    }
    match p.peek() {
        Some(Tok::Int(_)) => {
            let v = p.expect_int()?;
            Ok(Expr::Const(v))
        }
        Some(Tok::Ident(s)) if s == "sizeof" => {
            p.pos += 1;
            p.expect_sym("(")?;
            let class = p.expect_ident()?;
            p.expect_sym(")")?;
            Ok(Expr::SizeOf(class))
        }
        Some(Tok::Ident(_)) => {
            let name = p.expect_ident()?;
            let id = names.resolve(p, &name)?;
            if matches!(p.peek(), Some(Tok::Sym("."))) && matches!(p.peek2(), Some(Tok::Ident(_))) {
                p.pos += 1;
                let field = p.expect_ident()?;
                Ok(Expr::Field(id, field))
            } else {
                Ok(Expr::Var(id))
            }
        }
        other => {
            let msg = other.map_or_else(
                || "unexpected end of input in expression".to_owned(),
                |t| format!("unexpected token {t} in expression"),
            );
            p.err(msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::pretty;
    use crate::{Analyzer, FindingKind};

    #[test]
    fn parses_the_doc_example() {
        let program = parse_program(
            "program demo;\n\
             class Student size 16;\n\
             class GradStudent size 32 : Student;\n\
             fn main() {\n\
                 local stud: Student;\n\
                 local st: ptr;\n\
                 st = new (&stud) GradStudent();\n\
             }\n",
        )
        .unwrap();
        assert_eq!(program.name, "demo");
        assert_eq!(program.classes.len(), 2);
        let report = Analyzer::new().analyze(&program);
        assert_eq!(report.of_kind(FindingKind::OversizedPlacement).len(), 1);
    }

    #[test]
    fn round_trips_a_rich_program() {
        let src = "\
program rich-demo-01;

class Student size 16;
class GradStudent size 32 : Student;
class Poly size 24 polymorphic;

global pool: char[72];
global count: int;

fn sortAndAddUname(uname: ptr tainted, cfg: ptr) {
    local n: int;
    local stud: Student;
    local st: ptr;
    local buf: ptr;
    read n;
    if (n > 8) {
        return;
    } else {
        n = (n + 1);
    }
    st = new (&stud) GradStudent(uname);
    buf = new (&pool) array[9; n];
    strncpy(buf, uname, (n * 9));
    while (n != 0) {
        n = (n - 1);
    }
    delete (Student*) st;
    st = null;
}

fn Helper::run() {
    local q: ptr;
    q = new GradStudent();
    q = new bytes[64];
    read_secret q;
    memset(q, 64);
    recv q: Student;
    output q;
    vcall q.getInfo();
    callptr q;
    q.field = sizeof(Poly);
}
";
        let program = parse_program(src).unwrap();
        let printed = pretty(&program);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(program, reparsed, "parse∘pretty must be the identity");
    }

    #[test]
    fn program_names_may_contain_dashes() {
        let p = parse_program("program listing-04-construction;\nfn f() {\n}\n").unwrap();
        assert_eq!(p.name, "listing-04-construction");
    }

    #[test]
    fn function_names_may_contain_double_colons() {
        let p = parse_program("program t;\nfn MobilePlayer::addStudentPlayer() {\n}\n").unwrap();
        assert_eq!(p.functions[0].name, "MobilePlayer::addStudentPlayer");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = parse_program(
            "// leading comment\n\nprogram t;\n// about f\nfn f() {\n    // body comment\n    return;\n}\n",
        )
        .unwrap();
        assert_eq!(p.functions[0].body.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("program t;\nfn f() {\n    bogus!;\n}\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));

        let err = parse_program("not a header\n").unwrap_err();
        assert!(err.message.contains("program"));
    }

    #[test]
    fn unknown_variables_are_rejected() {
        let err = parse_program("program t;\nfn f() {\n    x = 1;\n}\n").unwrap_err();
        assert!(err.message.contains("unknown variable `x`"));
    }

    #[test]
    fn locals_are_rejected_inside_blocks() {
        let err = parse_program(
            "program t;\nfn f() {\n    local n: int;\n    if (n > 0) {\n        local m: int;\n    }\n}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("top level"));
    }

    #[test]
    fn negative_literals_and_subtraction() {
        let p = parse_program(
            "program t;\nfn f() {\n    local x: int;\n    x = -5;\n    x = (x - -3);\n}\n",
        )
        .unwrap();
        let report = Analyzer::new().analyze(&p);
        assert!(!report.detected());
    }

    #[test]
    fn char_array_types() {
        let p = parse_program(
            "program t;\nglobal a: char[16];\nglobal b: char[?];\nglobal c: char;\nfn f() {\n}\n",
        )
        .unwrap();
        assert_eq!(p.vars[0].ty, Ty::CharArray(Some(16)));
        assert_eq!(p.vars[1].ty, Ty::CharArray(None));
        assert_eq!(p.vars[2].ty, Ty::Char);
    }

    #[test]
    fn shadowing_params_resolve_locally() {
        let p =
            parse_program("program t;\nglobal n: int;\nfn f(n: int tainted) {\n    read n;\n}\n")
                .unwrap();
        // The read targets the param (id 1), not the global (id 0).
        match &p.functions[0].body[0] {
            crate::ir::Stmt::ReadInput { dst, .. } => assert_eq!(dst.index(), 1),
            other => panic!("unexpected stmt {other:?}"),
        }
    }
}
