//! Parallel, cache-aware batch analysis.
//!
//! [`BatchEngine`] scans many [`Program`]s concurrently on a pool of
//! scoped worker threads (`std::thread::scope` over a shared atomic
//! work-queue cursor — no extra runtime dependencies) and returns one
//! [`Report`] per input, **in input order**, regardless of how many
//! workers ran or how the queue interleaved.
//!
//! Results are memoized behind a content-fingerprint cache: the key is a
//! stable FNV-1a hash of the program's canonical pretty-printed form
//! (which round-trips through the parser, so equal programs — even ones
//! built independently — hash equally, and any semantic difference
//! changes the key). A second scan of an unchanged corpus is pure cache
//! hits.
//!
//! Source-text scans ([`BatchEngine::scan_sources_with_stats`]) add a
//! second in-memory tier keyed on a fingerprint of the **raw source
//! bytes**: a warm re-scan of unchanged text skips the parser as well as
//! the analyzer, which is what keeps a resident `pncheckd` serving
//! repeat requests without re-parsing anything. With
//! [`BatchEngine::with_persistent_cache`], an *on-disk* tier under the
//! same key extends that across process restarts. Corrupt or stale disk
//! entries degrade to a normal analysis (and get rewritten), never to an
//! error.
//!
//! ```
//! use pnew_detector::{Analyzer, BatchEngine, Expr, ProgramBuilder, Ty};
//!
//! let mut p = ProgramBuilder::new("demo");
//! p.class("Student", 16, None, false);
//! p.class("GradStudent", 32, Some("Student"), false);
//! let mut f = p.function("main");
//! let stud = f.local("stud", Ty::Class("Student".into()));
//! let st = f.local("st", Ty::Ptr);
//! f.placement_new(st, Expr::addr_of(stud), "GradStudent");
//! f.finish();
//! let programs = vec![p.build()];
//!
//! let engine = BatchEngine::new(Analyzer::new()).with_jobs(4);
//! let (reports, stats) = engine.scan_with_stats(&programs);
//! assert_eq!(reports.len(), 1);
//! assert!(reports[0].detected());
//! assert_eq!(stats.cache_misses, 1);
//!
//! // Unchanged inputs are served from the cache on the next scan.
//! let (_, stats) = engine.scan_with_stats(&programs);
//! assert_eq!(stats.cache_hits, 1);
//! ```

use std::collections::HashMap;
use std::fs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::analysis::Analyzer;
use crate::cache::{fnv128, source_fingerprint, CacheLookup, CachedAnalysis, PersistentCache};
use crate::delta::{invalidation_cone, parse_manifest, render_manifest, ManifestRow};
use crate::findings::Report;
use crate::ir::Program;
use crate::parse::{parse_program_recovering, ParseError};
use crate::pretty::pretty;
use crate::summary::FunctionSummaryRecord;
use crate::trace::TraceCollector;

/// Stable content fingerprint of a program.
///
/// 128-bit FNV-1a over the canonical pretty-printed text. The pretty
/// form sorts classes, includes the program name, and round-trips
/// through the parser (`parse(pretty(p)) == p`), so it is injective up
/// to program equality, and structurally equal programs always agree
/// even when their internal `HashMap` iteration orders differ. The key
/// was widened from 64 bits: a corpus-scale cache keyed on a bare
/// 64-bit hash has a real birthday-collision risk, and a collision
/// silently serves the wrong report.
pub fn fingerprint(program: &Program) -> u128 {
    fnv128(pretty(program).as_bytes())
}

/// Counters describing one [`BatchEngine::scan_with_stats`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Programs scanned.
    pub programs: usize,
    /// Total findings across all reports.
    pub findings: usize,
    /// Reports served from the fingerprint cache.
    pub cache_hits: u64,
    /// Reports that required a fresh analysis.
    pub cache_misses: u64,
    /// Wall-clock time of the scan.
    pub elapsed: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Source texts that actually went through the parser during this
    /// scan. A fully warm scan — every input served from the source
    /// fingerprint tier or the disk tier — runs zero parses. Always 0
    /// for program-based scans, which never parse.
    pub parses: u64,
    /// Files served whole from the on-disk cache (no parse, no
    /// analysis). Always 0 without a persistent cache.
    pub persistent_hits: u64,
    /// Files the on-disk cache could not answer (includes corrupt
    /// entries). Always 0 without a persistent cache.
    pub persistent_misses: u64,
    /// On-disk entries that failed validation and were re-analyzed.
    pub persistent_corrupt: u64,
    /// On-disk entries that could not be written (full disk, directory
    /// removed mid-run). Always 0 without a persistent cache.
    pub persistent_write_errors: u64,
}

impl BatchStats {
    /// Scan throughput in programs per second (0 for an empty scan).
    pub fn programs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.programs as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of programs served from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            self.cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Lifetime cache counters for a [`BatchEngine`].
///
/// Snapshots are *consistent*: all fields are copied under one lock,
/// so `hits + misses == lookups` holds in every snapshot — a stats
/// reader racing live requests can never observe a torn pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Scans answered from either in-memory fingerprint tier (program
    /// or source) since construction.
    pub hits: u64,
    /// Scans that ran the analyzer since construction.
    pub misses: u64,
    /// Fingerprint-tier probes since construction — always exactly
    /// `hits + misses` within one snapshot.
    pub lookups: u64,
    /// Reports currently cached in the program-fingerprint tier.
    pub entries: usize,
    /// Outcomes currently cached in the source-fingerprint tier.
    pub source_entries: usize,
    /// Source texts parsed since construction.
    pub parses: u64,
}

/// One replica's slice of the 128-bit fingerprint space
/// (`--shard K/N`): replica `index` of `count` owns every key
/// congruent to `index` mod `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based replica index; always `< count`.
    pub index: u32,
    /// Total replicas splitting the fingerprint space.
    pub count: u32,
}

impl ShardSpec {
    /// Whether this replica owns the warm state for `key`.
    pub fn owns(&self, key: u128) -> bool {
        self.count <= 1 || key % u128::from(self.count) == u128::from(self.index)
    }
}

/// The engine's live hit/miss/parse counters, mutated and snapshotted
/// under one mutex so readers never see a half-updated set (the
/// `pncheckd-stats/1` torn-pair bug: `hits + misses != lookups`).
/// The hot path already takes the cache-map mutexes, so the extra
/// uncontended lock is noise next to a parse or an analysis.
#[derive(Debug, Clone, Copy, Default)]
struct EngineCounters {
    hits: u64,
    misses: u64,
    lookups: u64,
    parses: u64,
}

/// What scanning one source text produced.
///
/// Returned by [`BatchEngine::scan_sources_with_stats`], one per input,
/// in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceOutcome {
    /// The analysis report; `None` when the source failed to parse.
    pub report: Option<Report>,
    /// Per-function summary digests (empty for parse failures and for
    /// analyzers running with summaries disabled).
    pub summaries: Vec<FunctionSummaryRecord>,
    /// Parse errors, when the source did not parse.
    pub errors: Vec<ParseError>,
    /// The report came straight from the on-disk cache: neither the
    /// parser nor the analyzer ran for this file.
    pub from_disk_cache: bool,
    /// The report came from the in-memory source-fingerprint tier:
    /// neither the parser nor the analyzer ran for this file.
    pub from_source_cache: bool,
    /// An on-disk entry existed but was corrupt; the file was
    /// re-analyzed from source and the entry rewritten.
    pub cache_corrupt: bool,
}

/// What the engine remembers about one scanned path between delta
/// rescans: enough to decide "unchanged?" from a bare `stat` and to
/// serve the cached result without touching the file.
#[derive(Debug, Clone)]
struct TrackedFile {
    len: u64,
    mtime_ns: u128,
    key: u128,
    /// `None` for manifest-seeded entries whose result still lives only
    /// on disk — fetched lazily (by `key`) the first time the file is
    /// served unchanged.
    analysis: Option<Arc<CachedAnalysis>>,
    /// Parse errors, when the tracked text did not parse.
    errors: Vec<ParseError>,
}

/// What scanning one tracked path produced. Returned by
/// [`BatchEngine::scan_paths_tracked`] and
/// [`BatchEngine::rescan_delta`], one per input path, in input order.
///
/// The analysis is behind an [`Arc`]: a delta rescan serves thousands
/// of unchanged files per millisecond precisely because "serving" is a
/// reference-count bump, not a report clone.
#[derive(Debug, Clone)]
pub struct TrackedOutcome {
    /// The path exactly as given.
    pub path: String,
    /// The analysis result; `None` when the file was unreadable or did
    /// not parse.
    pub analysis: Option<Arc<CachedAnalysis>>,
    /// Parse errors, when the source did not parse.
    pub errors: Vec<ParseError>,
    /// The I/O error message, when the file could not be read.
    pub read_error: Option<String>,
    /// The file went through the parser/analyzer (or a cache tier below
    /// the tracked index) this scan — false when served straight from
    /// the tracked index as unchanged.
    pub reanalyzed: bool,
    /// An on-disk entry existed but was corrupt; the file was
    /// re-analyzed from source and the entry rewritten.
    pub cache_corrupt: bool,
}

/// Invalidation accounting for one [`BatchEngine::rescan_delta`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Paths tracked after the rescan.
    pub tracked_files: usize,
    /// Previously tracked paths that were re-analyzed (content or stat
    /// drift, a caller hint, or an unusable cache entry).
    pub changed_files: usize,
    /// Paths not tracked before this rescan.
    pub added_files: usize,
    /// Previously tracked paths absent from this rescan's path list.
    pub removed_files: usize,
    /// Paths served from the tracked index (or the disk tier) with zero
    /// parses and zero analysis.
    pub unchanged_files: usize,
    /// Functions whose own content changed, summed over re-analyzed
    /// files.
    pub changed_functions: usize,
    /// Functions invalidated (changed plus transitive callers), summed
    /// over re-analyzed files. For a file with no prior in-memory
    /// summaries (first sight, or manifest-seeded), every function
    /// counts as changed.
    pub cone_functions: usize,
    /// Functions known across the whole tracked index after the rescan
    /// — the corpus-wide denominator for `cone_functions`. Files whose
    /// analysis has not been hydrated from disk yet contribute zero.
    pub tracked_functions: usize,
}

/// A parallel batch scanner with a content-fingerprint report cache.
///
/// See the [module docs](self) for the concurrency and caching model.
#[derive(Debug)]
pub struct BatchEngine {
    analyzer: Analyzer,
    jobs: usize,
    cache: Mutex<HashMap<u128, CachedAnalysis>>,
    source_cache: Mutex<HashMap<u128, CachedAnalysis>>,
    counters: Mutex<EngineCounters>,
    trace: Option<Arc<TraceCollector>>,
    persistent: Option<PersistentCache>,
    shard: Option<ShardSpec>,
    tracked: Mutex<HashMap<String, TrackedFile>>,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine::new(Analyzer::new())
    }
}

impl BatchEngine {
    /// An engine around `analyzer`, with one worker per available CPU.
    pub fn new(analyzer: Analyzer) -> Self {
        let jobs = thread::available_parallelism().map_or(1, |n| n.get());
        BatchEngine {
            analyzer,
            jobs,
            cache: Mutex::new(HashMap::new()),
            source_cache: Mutex::new(HashMap::new()),
            counters: Mutex::new(EngineCounters::default()),
            trace: None,
            persistent: None,
            shard: None,
            tracked: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Feeds counter and timing events (`batch.*`, `analysis.*`,
    /// `findings.*`) into `trace` during every scan. All workers share
    /// the one collector.
    #[must_use]
    pub fn with_trace(mut self, trace: Arc<TraceCollector>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Adds the on-disk tier: [`scan_sources_with_stats`]
    /// (Self::scan_sources_with_stats) will probe (and populate) `cache`
    /// before parsing anything. The cache must have been opened against
    /// this engine's analyzer configuration.
    #[must_use]
    pub fn with_persistent_cache(mut self, cache: PersistentCache) -> Self {
        self.persistent = Some(cache);
        self
    }

    /// Restricts the warm tiers (source fingerprint, on-disk, program
    /// memo) to the keys this replica owns: an unowned source still
    /// analyzes correctly, but takes the full uncached path and leaves
    /// no warm state behind, so N sharded replicas split the
    /// fingerprint space instead of each holding all of it. The
    /// tracked/delta index is deliberately unsharded — change
    /// detection is stat-based and cheap, and delta correctness must
    /// not depend on shard placement.
    #[must_use]
    pub fn with_shard(mut self, shard: ShardSpec) -> Self {
        self.shard = Some(shard);
        self
    }

    /// The shard slice this engine serves, if any.
    pub fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// The on-disk cache tier, if one is attached.
    pub fn persistent_cache(&self) -> Option<&PersistentCache> {
        self.persistent.as_ref()
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The analyzer driving each scan.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Scans every program, returning reports in input order.
    ///
    /// The order and content of the reports are independent of the
    /// worker count: workers pull indices from a shared cursor but write
    /// into the slot of the program they took, and each program's
    /// analysis is deterministic.
    pub fn scan(&self, programs: &[Program]) -> Vec<Report> {
        self.scan_with_stats(programs).0
    }

    /// [`scan`](Self::scan), plus throughput and cache counters for the
    /// run.
    pub fn scan_with_stats(&self, programs: &[Program]) -> (Vec<Report>, BatchStats) {
        let (reports, stats) =
            self.run_queue(programs, self.jobs, |program| self.analyze_cached(program).report);
        let findings = reports.iter().map(|r| r.findings.len()).sum();
        (reports, BatchStats { findings, ..stats })
    }

    /// Scans raw source texts through every cache tier, returning one
    /// [`SourceOutcome`] per input, in input order.
    ///
    /// Per file: probe the in-memory source-fingerprint tier (hit →
    /// done, no parse); probe the on-disk cache (hit → done, no parse);
    /// parse; analyze through the program-fingerprint tier; write the
    /// entry back to the source tier and to disk. Parse failures are
    /// reported in the outcome and never cached.
    pub fn scan_sources_with_stats<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
    ) -> (Vec<SourceOutcome>, BatchStats) {
        self.scan_sources_with_stats_jobs(sources, self.jobs)
    }

    /// [`scan_sources_with_stats`](Self::scan_sources_with_stats) with
    /// an explicit worker count for this scan only — the daemon uses
    /// this to honor a per-request `jobs` without rebuilding the engine
    /// (and losing its warm caches).
    pub fn scan_sources_with_stats_jobs<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
        jobs: usize,
    ) -> (Vec<SourceOutcome>, BatchStats) {
        let (outcomes, stats) =
            self.run_queue(sources, jobs, |source| self.analyze_source(source.as_ref()));
        // `programs` counts inputs that produced a report — parse
        // failures are files, not programs — matching the program-based
        // scan, whose batch only ever contains parsed programs.
        let programs = outcomes.iter().filter(|o| o.report.is_some()).count();
        let findings =
            outcomes.iter().filter_map(|o| o.report.as_ref()).map(|r| r.findings.len()).sum();
        (outcomes, BatchStats { programs, findings, ..stats })
    }

    /// Scans files **by path**, registering each in the tracked index
    /// that [`rescan_delta`](Self::rescan_delta) consults. One
    /// [`TrackedOutcome`] per path, in input order; unreadable files
    /// get a `read_error` outcome instead of failing the scan.
    ///
    /// This is the cold half of the incremental pair: it pays the full
    /// read+parse+analyze cost (modulo the ordinary cache tiers) and
    /// records each file's length, mtime, and source key so a later
    /// delta rescan can classify "unchanged" from a bare `stat`.
    pub fn scan_paths_tracked(&self, paths: &[String]) -> (Vec<TrackedOutcome>, BatchStats) {
        let (outcomes, stats) = self.run_queue(paths, self.jobs, |path| self.read_and_track(path));
        let programs = outcomes.iter().filter(|o| o.analysis.is_some()).count();
        let findings = outcomes
            .iter()
            .filter_map(|o| o.analysis.as_ref())
            .map(|a| a.report.findings.len())
            .sum();
        (outcomes, BatchStats { programs, findings, ..stats })
    }

    /// Re-scans `paths` incrementally against the tracked index: files
    /// whose `stat` (length + mtime) matches their tracked state are
    /// served from the index — zero reads, zero parses, zero analysis —
    /// and only drifted, hinted, added, or cache-degraded files go back
    /// through the full pipeline. Outcomes come back in input order and
    /// are **byte-identical** to a cold full scan of the same tree: a
    /// changed file is always re-analyzed whole (function-grain reuse
    /// would shift spans), so the per-function invalidation cone from
    /// [`invalidation_cone`](crate::delta::invalidation_cone) feeds the
    /// returned [`DeltaStats`], not the verdicts.
    ///
    /// `changed_hint` selects the change-detection mode. `None` — the
    /// watch/poll mode — stats every tracked file and re-analyzes
    /// whatever drifted. `Some(list)` — the editor-integration mode —
    /// trusts the client completely: hinted paths are re-analyzed,
    /// every other tracked path is served from the index without even a
    /// `stat`, which is what makes a single-file edit in a 10k-file
    /// tree a sub-millisecond rescan. The contract is that the client
    /// owns change detection: a file it changed but did not name comes
    /// back stale until the next unhinted rescan. Tracked paths absent
    /// from `paths` are dropped from the index in both modes. `paths`
    /// is expected to be duplicate-free (what
    /// [`expand_inputs`](crate::cliopts::expand_inputs) produces);
    /// duplicates cost extra re-analysis and can delay the removal
    /// sweep by one rescan.
    pub fn rescan_delta(
        &self,
        paths: &[String],
        changed_hint: Option<&[String]>,
    ) -> (Vec<TrackedOutcome>, BatchStats, DeltaStats) {
        self.rescan_delta_jobs(paths, changed_hint, self.jobs)
    }

    /// [`rescan_delta`](Self::rescan_delta) with an explicit worker
    /// count for the re-analysis queue — the daemon's `delta` op uses
    /// this to honor a per-request `jobs` without rebuilding the engine.
    pub fn rescan_delta_jobs(
        &self,
        paths: &[String],
        changed_hint: Option<&[String]>,
        jobs: usize,
    ) -> (Vec<TrackedOutcome>, BatchStats, DeltaStats) {
        use std::collections::HashSet;

        let start = Instant::now();
        let before = self.counters_snapshot();
        let persistent_before = self.persistent_snapshot();

        let hint: Option<HashSet<&str>> =
            changed_hint.map(|c| c.iter().map(String::as_str).collect());
        let mut delta = DeltaStats::default();
        let mut slots: Vec<Option<TrackedOutcome>> = (0..paths.len()).map(|_| None).collect();
        // (input index, path, prior summaries — the "old" side of the
        // invalidation cone computed after re-analysis).
        let mut changed: Vec<(usize, &String, Vec<FunctionSummaryRecord>)> = Vec::new();

        {
            let mut tracked = self.tracked.lock().expect("tracked index poisoned");
            for (i, path) in paths.iter().enumerate() {
                let Some(entry) = tracked.get_mut(path.as_str()) else {
                    delta.added_files += 1;
                    changed.push((i, path, Vec::new()));
                    continue;
                };
                // With a hint the client owns change detection and the
                // stat sweep is skipped wholesale; without one, stat
                // drift errs toward re-analysis (an unreadable stat
                // re-runs the file so the read error surfaces properly).
                let dirty = match &hint {
                    Some(h) => h.contains(path.as_str()),
                    None => match fs::metadata(path) {
                        Ok(m) => m.len() != entry.len || Self::mtime_ns(&m) != entry.mtime_ns,
                        Err(_) => true,
                    },
                };
                if dirty {
                    // Prior summaries feed the invalidation cone. A
                    // manifest-seeded entry has none in memory, but the
                    // old verdict is still on disk under the old key —
                    // pulling it keeps cones precise across restarts.
                    let old = match &entry.analysis {
                        Some(a) => a.summaries.clone(),
                        None if entry.errors.is_empty() => {
                            match self.persistent.as_ref().map(|pc| pc.get(entry.key)) {
                                Some(CacheLookup::Hit(hit)) => hit.summaries,
                                _ => Vec::new(),
                            }
                        }
                        None => Vec::new(),
                    };
                    delta.changed_files += 1;
                    changed.push((i, path, old));
                    continue;
                }
                if entry.analysis.is_none() && entry.errors.is_empty() {
                    // Manifest-seeded: the result lives on disk. Pull it
                    // up lazily; a missing or corrupt entry degrades to
                    // a re-analysis (and heals the cache).
                    match self.persistent.as_ref().map(|pc| pc.get(entry.key)) {
                        Some(CacheLookup::Hit(hit)) => entry.analysis = Some(Arc::new(hit)),
                        _ => {
                            delta.changed_files += 1;
                            changed.push((i, path, Vec::new()));
                            continue;
                        }
                    }
                }
                delta.unchanged_files += 1;
                slots[i] = Some(TrackedOutcome {
                    path: path.clone(),
                    analysis: entry.analysis.clone(),
                    errors: entry.errors.clone(),
                    read_error: None,
                    reanalyzed: false,
                    cache_corrupt: false,
                });
            }
            // Every requested path that was already tracked has been
            // classified above; if that accounts for the whole index,
            // nothing was removed and the retain sweep (a hash of every
            // path) is skipped — the common editor-loop case.
            let seen_tracked = delta.changed_files + delta.unchanged_files;
            if tracked.len() != seen_tracked {
                let requested: HashSet<&str> = paths.iter().map(String::as_str).collect();
                let before = tracked.len();
                tracked.retain(|p, _| requested.contains(p.as_str()));
                delta.removed_files = before - tracked.len();
            }
        }

        let changed_paths: Vec<&String> = changed.iter().map(|&(_, p, _)| p).collect();
        let (rescanned, _) = self.run_queue(&changed_paths, jobs, |path| self.read_and_track(path));
        for ((i, _, old), outcome) in changed.iter().zip(rescanned) {
            let empty: &[FunctionSummaryRecord] = &[];
            let new = outcome.analysis.as_ref().map_or(empty, |a| a.summaries.as_slice());
            let (_, cone) = invalidation_cone(old, new);
            delta.changed_functions += cone.changed_functions;
            delta.cone_functions += cone.cone_functions;
            slots[*i] = Some(outcome);
        }
        {
            let tracked = self.tracked.lock().expect("tracked index poisoned");
            delta.tracked_files = tracked.len();
            delta.tracked_functions = tracked
                .values()
                .filter_map(|t| t.analysis.as_ref())
                .map(|a| a.summaries.len())
                .sum();
        }

        let outcomes: Vec<TrackedOutcome> =
            slots.into_iter().map(|s| s.expect("every path is classified")).collect();
        let programs = outcomes.iter().filter(|o| o.analysis.is_some()).count();
        let findings = outcomes
            .iter()
            .filter_map(|o| o.analysis.as_ref())
            .map(|a| a.report.findings.len())
            .sum();
        let persistent_after = self.persistent_snapshot();
        let after = self.counters_snapshot();
        let stats = BatchStats {
            programs,
            findings,
            cache_hits: after.hits - before.hits,
            cache_misses: after.misses - before.misses,
            elapsed: start.elapsed(),
            jobs: jobs.max(1).min(changed.len().max(1)),
            parses: after.parses - before.parses,
            persistent_hits: persistent_after.0 - persistent_before.0,
            persistent_misses: persistent_after.1 - persistent_before.1,
            persistent_corrupt: persistent_after.2 - persistent_before.2,
            persistent_write_errors: persistent_after.3 - persistent_before.3,
        };
        if let Some(t) = &self.trace {
            t.count("batch.delta-changed", (delta.changed_files + delta.added_files) as u64);
            t.count("batch.delta-unchanged", delta.unchanged_files as u64);
            t.count("batch.delta-cone-functions", delta.cone_functions as u64);
            t.record_pass("batch.rescan-delta", stats.elapsed);
        }
        (outcomes, stats, delta)
    }

    /// Primes the tracked index from the manifest of the attached
    /// persistent cache (the `manifest.pnm` file of a `dir` backend,
    /// or the manifest record of an `indexed` store), so the very
    /// first [`rescan_delta`](Self::rescan_delta) of a new process can
    /// serve unchanged files from disk instead of re-parsing the
    /// world. Already-tracked paths are left alone. Returns the number
    /// of rows seeded (0 without a persistent cache or manifest).
    pub fn seed_tracked_from_manifest(&self) -> usize {
        let Some(pc) = &self.persistent else {
            return 0;
        };
        let rows = pc.load_manifest().map(|text| parse_manifest(&text)).unwrap_or_default();
        let mut tracked = self.tracked.lock().expect("tracked index poisoned");
        let mut seeded = 0;
        for row in rows {
            let ManifestRow { path, len, mtime_ns, key } = row;
            tracked.entry(path).or_insert_with(|| {
                seeded += 1;
                TrackedFile { len, mtime_ns, key, analysis: None, errors: Vec::new() }
            });
        }
        seeded
    }

    /// Writes the tracked index to the attached persistent cache's
    /// manifest for the next process to seed from. Best-effort, like
    /// every cache write: returns whether the manifest landed.
    pub fn save_tracked_manifest(&self) -> bool {
        let Some(pc) = &self.persistent else {
            return false;
        };
        let mut rows: Vec<ManifestRow> = {
            let tracked = self.tracked.lock().expect("tracked index poisoned");
            tracked
                .iter()
                .map(|(path, f)| ManifestRow {
                    path: path.clone(),
                    len: f.len,
                    mtime_ns: f.mtime_ns,
                    key: f.key,
                })
                .collect()
        };
        pc.store_manifest(&render_manifest(&mut rows))
    }

    /// Paths currently in the tracked index.
    pub fn tracked_files(&self) -> usize {
        self.tracked.lock().expect("tracked index poisoned").len()
    }

    /// Reads, analyzes, and (re-)registers one path in the tracked
    /// index. Stat runs *before* the read: if the file changes between
    /// the two, the recorded mtime is older than the analyzed content,
    /// so the next rescan errs toward re-analysis, never staleness.
    fn read_and_track(&self, path: &str) -> TrackedOutcome {
        let meta = fs::metadata(path);
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                self.tracked.lock().expect("tracked index poisoned").remove(path);
                return TrackedOutcome {
                    path: path.to_owned(),
                    analysis: None,
                    errors: Vec::new(),
                    read_error: Some(e.to_string()),
                    reanalyzed: false,
                    cache_corrupt: false,
                };
            }
        };
        let (len, mtime_ns) =
            meta.map_or((text.len() as u64, 0), |m| (m.len(), Self::mtime_ns(&m)));
        let key = source_fingerprint(&text);
        let SourceOutcome {
            report,
            summaries,
            errors,
            from_disk_cache,
            from_source_cache,
            cache_corrupt,
        } = self.analyze_source(&text);
        let analysis = report.map(|report| Arc::new(CachedAnalysis { report, summaries }));
        self.tracked.lock().expect("tracked index poisoned").insert(
            path.to_owned(),
            TrackedFile { len, mtime_ns, key, analysis: analysis.clone(), errors: errors.clone() },
        );
        TrackedOutcome {
            path: path.to_owned(),
            analysis,
            errors,
            read_error: None,
            reanalyzed: !(from_disk_cache || from_source_cache),
            cache_corrupt,
        }
    }

    /// Modification time as nanoseconds since the Unix epoch (0 when
    /// the platform reports none — length alone then decides drift).
    fn mtime_ns(meta: &fs::Metadata) -> u128 {
        meta.modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_nanos())
    }

    /// Drains `items` through the worker pool, preserving input order,
    /// and accounts both cache tiers over the run. `findings` in the
    /// returned stats is left at 0 for the caller to fill.
    fn run_queue<I: Sync, R: Send>(
        &self,
        items: &[I],
        jobs: usize,
        work: impl Fn(&I) -> R + Sync,
    ) -> (Vec<R>, BatchStats) {
        let start = Instant::now();
        let before = self.counters_snapshot();
        let persistent_before = self.persistent_snapshot();

        let workers = jobs.max(1).min(items.len().max(1));
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else {
                        break;
                    };
                    let result = work(item);
                    results.lock().expect("batch results poisoned")[i] = Some(result);
                });
            }
        });
        let results: Vec<R> = results
            .into_inner()
            .expect("batch results poisoned")
            .into_iter()
            .map(|slot| slot.expect("every queue slot is filled before the scope ends"))
            .collect();

        let persistent_after = self.persistent_snapshot();
        let after = self.counters_snapshot();
        let stats = BatchStats {
            programs: items.len(),
            findings: 0,
            cache_hits: after.hits - before.hits,
            cache_misses: after.misses - before.misses,
            elapsed: start.elapsed(),
            jobs: workers,
            parses: after.parses - before.parses,
            persistent_hits: persistent_after.0 - persistent_before.0,
            persistent_misses: persistent_after.1 - persistent_before.1,
            persistent_corrupt: persistent_after.2 - persistent_before.2,
            persistent_write_errors: persistent_after.3 - persistent_before.3,
        };
        if let Some(t) = &self.trace {
            t.count("batch.programs", items.len() as u64);
            t.record_pass("batch.scan", stats.elapsed);
        }
        (results, stats)
    }

    fn persistent_snapshot(&self) -> (u64, u64, u64, u64) {
        self.persistent.as_ref().map_or((0, 0, 0, 0), |pc| {
            let s = pc.stats();
            (s.hits, s.misses, s.corrupt, s.write_errors)
        })
    }

    /// A consistent copy of the live counters.
    fn counters_snapshot(&self) -> EngineCounters {
        *self.counters.lock().expect("engine counters poisoned")
    }

    /// Applies one counter update atomically with respect to snapshots.
    fn bump(&self, update: impl FnOnce(&mut EngineCounters)) {
        update(&mut self.counters.lock().expect("engine counters poisoned"));
    }

    /// Whether this engine's shard (if any) owns `key`'s warm state.
    fn owns(&self, key: u128) -> bool {
        self.shard.is_none_or(|s| s.owns(key))
    }

    /// Runs the analyzer on a parsed program, bypassing every cache.
    fn analyze_uncached(&self, program: &Program) -> CachedAnalysis {
        let (report, summaries) = match &self.trace {
            Some(t) => self.analyzer.analyze_traced_with_summaries(program, t),
            None => self.analyzer.analyze_with_summaries(program),
        };
        CachedAnalysis { report, summaries }
    }

    /// Analyzes one parsed program through the in-memory cache tier.
    fn analyze_cached(&self, program: &Program) -> CachedAnalysis {
        let key = fingerprint(program);
        if self.owns(key) {
            if let Some(hit) = self.cache.lock().expect("batch cache poisoned").get(&key) {
                self.bump(|c| {
                    c.lookups += 1;
                    c.hits += 1;
                });
                if let Some(t) = &self.trace {
                    t.count("batch.cache-hit", 1);
                }
                return hit.clone();
            }
        }
        // The lock is dropped during analysis: concurrent misses on the
        // same key may both analyze (identical, deterministic results),
        // but workers never serialize behind a slow analysis.
        self.bump(|c| {
            c.lookups += 1;
            c.misses += 1;
        });
        if let Some(t) = &self.trace {
            t.count("batch.cache-miss", 1);
        }
        let entry = self.analyze_uncached(program);
        if self.owns(key) {
            self.cache.lock().expect("batch cache poisoned").insert(key, entry.clone());
        }
        entry
    }

    /// Analyzes one source text through every cache tier: the in-memory
    /// source-fingerprint tier first (fastest, and the one a resident
    /// daemon stays warm on), then the on-disk tier, then parse +
    /// program-fingerprint tier.
    fn analyze_source(&self, source: &str) -> SourceOutcome {
        let key = source_fingerprint(source);
        if !self.owns(key) {
            // Another replica owns this fingerprint: analyze it
            // correctly but through the full uncached path, reading and
            // writing no warm tier, so sharded replicas split warm
            // state instead of each accumulating all of it.
            self.bump(|c| {
                c.lookups += 1;
                c.misses += 1;
                c.parses += 1;
            });
            if let Some(t) = &self.trace {
                t.count("batch.shard-unowned", 1);
            }
            return match parse_program_recovering(source) {
                Err(errors) => SourceOutcome {
                    report: None,
                    summaries: Vec::new(),
                    errors,
                    from_disk_cache: false,
                    from_source_cache: false,
                    cache_corrupt: false,
                },
                Ok(program) => {
                    let entry = self.analyze_uncached(&program);
                    SourceOutcome {
                        report: Some(entry.report),
                        summaries: entry.summaries,
                        errors: Vec::new(),
                        from_disk_cache: false,
                        from_source_cache: false,
                        cache_corrupt: false,
                    }
                }
            };
        }
        if let Some(hit) = self.source_cache.lock().expect("source cache poisoned").get(&key) {
            self.bump(|c| {
                c.lookups += 1;
                c.hits += 1;
            });
            if let Some(t) = &self.trace {
                t.count("batch.source-hit", 1);
            }
            return SourceOutcome {
                report: Some(hit.report.clone()),
                summaries: hit.summaries.clone(),
                errors: Vec::new(),
                from_disk_cache: false,
                from_source_cache: true,
                cache_corrupt: false,
            };
        }
        let mut cache_corrupt = false;
        if let Some(pc) = &self.persistent {
            match pc.get(key) {
                CacheLookup::Hit(entry) => {
                    if let Some(t) = &self.trace {
                        t.count("batch.persistent-hit", 1);
                    }
                    self.source_cache
                        .lock()
                        .expect("source cache poisoned")
                        .insert(key, entry.clone());
                    return SourceOutcome {
                        report: Some(entry.report),
                        summaries: entry.summaries,
                        errors: Vec::new(),
                        from_disk_cache: true,
                        from_source_cache: false,
                        cache_corrupt: false,
                    };
                }
                CacheLookup::Corrupt => {
                    cache_corrupt = true;
                    if let Some(t) = &self.trace {
                        t.count("batch.persistent-corrupt", 1);
                    }
                }
                CacheLookup::Miss => {
                    if let Some(t) = &self.trace {
                        t.count("batch.persistent-miss", 1);
                    }
                }
            }
        }
        self.bump(|c| c.parses += 1);
        match parse_program_recovering(source) {
            Err(errors) => SourceOutcome {
                report: None,
                summaries: Vec::new(),
                errors,
                from_disk_cache: false,
                from_source_cache: false,
                cache_corrupt,
            },
            Ok(program) => {
                let entry = self.analyze_cached(&program);
                self.source_cache.lock().expect("source cache poisoned").insert(key, entry.clone());
                if let Some(pc) = &self.persistent {
                    pc.put(key, &entry);
                }
                SourceOutcome {
                    report: Some(entry.report),
                    summaries: entry.summaries,
                    errors: Vec::new(),
                    from_disk_cache: false,
                    from_source_cache: false,
                    cache_corrupt,
                }
            }
        }
    }

    /// Lifetime hit/miss/parse counters and the current cache sizes.
    /// The counters come from one consistent snapshot, so
    /// `hits + misses == lookups` holds even while requests race this
    /// read.
    pub fn cache_stats(&self) -> CacheStats {
        let counters = self.counters_snapshot();
        CacheStats {
            hits: counters.hits,
            misses: counters.misses,
            lookups: counters.lookups,
            entries: self.cache.lock().expect("batch cache poisoned").len(),
            source_entries: self.source_cache.lock().expect("source cache poisoned").len(),
            parses: counters.parses,
        }
    }

    /// Drops every cached report in both in-memory tiers (counters are
    /// kept; the on-disk tier is untouched).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("batch cache poisoned").clear();
        self.source_cache.lock().expect("source cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::{Expr, Ty};

    fn vulnerable(name: &str) -> Program {
        let mut p = ProgramBuilder::new(name);
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        p.build()
    }

    fn safe(name: &str) -> Program {
        let mut p = ProgramBuilder::new(name);
        p.class("Student", 16, None, false);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "Student");
        f.finish();
        p.build()
    }

    fn mixed(n: usize) -> Vec<Program> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vulnerable(&format!("vuln-{i}"))
                } else {
                    safe(&format!("safe-{i}"))
                }
            })
            .collect()
    }

    #[test]
    fn reports_come_back_in_input_order() {
        let programs = mixed(37);
        let engine = BatchEngine::new(Analyzer::new()).with_jobs(8);
        let reports = engine.scan(&programs);
        assert_eq!(reports.len(), programs.len());
        for (program, report) in programs.iter().zip(&reports) {
            assert_eq!(program.name, report.program);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let programs = mixed(24);
        let serial = BatchEngine::new(Analyzer::new()).with_jobs(1).scan(&programs);
        let parallel = BatchEngine::new(Analyzer::new()).with_jobs(8).scan(&programs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn second_scan_is_all_hits() {
        let programs = mixed(10);
        let engine = BatchEngine::new(Analyzer::new()).with_jobs(4);
        let (_, first) = engine.scan_with_stats(&programs);
        assert_eq!(first.cache_misses, 10);
        assert_eq!(first.cache_hits, 0);
        let (reports, second) = engine.scan_with_stats(&programs);
        assert_eq!(second.cache_hits, 10);
        assert_eq!(second.cache_misses, 0);
        assert!((second.cache_hit_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(reports, engine.scan(&programs));
    }

    #[test]
    fn equal_programs_share_a_cache_entry() {
        // Two structurally equal programs built independently (their
        // internal HashMaps have different iteration orders) must hash
        // to the same fingerprint.
        let a = vulnerable("same");
        let b = vulnerable("same");
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let engine = BatchEngine::default().with_jobs(1);
        let (_, stats) = engine.scan_with_stats(&[a, b]);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn fingerprint_separates_name_content_and_findings() {
        assert_ne!(fingerprint(&vulnerable("a")), fingerprint(&vulnerable("b")));
        assert_ne!(fingerprint(&vulnerable("a")), fingerprint(&safe("a")));
    }

    #[test]
    fn fingerprint_uses_the_full_128_bit_key_space() {
        // Collision-hazard regression: the cache key must be the widened
        // 128-bit hash, not a 64-bit value zero-extended into one.
        let fp = fingerprint(&vulnerable("wide"));
        assert_ne!(fp >> 64, 0, "high half of the key is unused");
        assert_ne!(fp & u128::from(u64::MAX), 0, "low half of the key is unused");
        assert_eq!(fp, fingerprint(&vulnerable("wide")), "fingerprint must be stable");
    }

    #[test]
    fn clear_cache_forces_reanalysis() {
        let programs = mixed(4);
        let engine = BatchEngine::default().with_jobs(2);
        engine.scan(&programs);
        engine.clear_cache();
        let (_, stats) = engine.scan_with_stats(&programs);
        assert_eq!(stats.cache_misses, 4);
        let lifetime = engine.cache_stats();
        assert_eq!(lifetime.misses, 8);
        assert_eq!(lifetime.entries, 4);
    }

    #[test]
    fn trace_collects_scan_counters() {
        let trace = Arc::new(TraceCollector::new());
        // One worker: the duplicate is deterministically a cache hit.
        let engine = BatchEngine::default().with_jobs(1).with_trace(Arc::clone(&trace));
        let programs = vec![vulnerable("same"), vulnerable("same"), safe("other")];
        engine.scan(&programs);
        let snap = trace.snapshot();
        assert_eq!(snap.counters["batch.programs"], 3);
        assert_eq!(snap.counters["batch.cache-hit"], 1);
        assert_eq!(snap.counters["batch.cache-miss"], 2);
        assert_eq!(snap.counters["findings.oversized-placement"], 1);
        assert!(snap.passes.iter().any(|p| p.name == "batch.scan"));
        assert!(snap.passes.iter().any(|p| p.name == "analysis.walk"));
    }

    fn tmp_cache_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pnx-batch-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine_with_disk_cache(dir: &std::path::Path) -> BatchEngine {
        let analyzer = Analyzer::new();
        let cache = PersistentCache::open(dir, analyzer.config()).unwrap();
        BatchEngine::new(analyzer).with_jobs(4).with_persistent_cache(cache)
    }

    const VULN_SRC: &str = "program vuln;\n\
        class Student size 16;\n\
        class GradStudent size 32 : Student;\n\
        fn main() {\n    local stud: Student;\n    local st: ptr;\n\
        \x20   st = new (&stud) GradStudent();\n}\n";
    const SAFE_SRC: &str = "program safe;\n\
        class Student size 16;\n\
        fn main() {\n    local stud: Student;\n    local st: ptr;\n\
        \x20   st = new (&stud) Student();\n}\n";

    #[test]
    fn warm_disk_cache_skips_parse_and_analysis_across_engines() {
        let dir = tmp_cache_dir("warm");
        let sources = [VULN_SRC, SAFE_SRC];

        let cold = engine_with_disk_cache(&dir);
        let (first, stats) = cold.scan_sources_with_stats(&sources);
        assert_eq!(stats.persistent_hits, 0);
        assert_eq!(stats.persistent_misses, 2);
        assert!(first.iter().all(|o| !o.from_disk_cache));
        assert!(first[0].report.as_ref().unwrap().detected());
        assert!(!first[1].report.as_ref().unwrap().detected());

        // A fresh engine (fresh process, in effect): everything comes
        // from disk, byte-identical, without parsing anything.
        let warm = engine_with_disk_cache(&dir);
        let (second, stats) = warm.scan_sources_with_stats(&sources);
        assert_eq!(stats.persistent_hits, 2);
        assert_eq!(stats.persistent_misses, 0);
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 0), "memory tier untouched");
        assert!(second.iter().all(|o| o.from_disk_cache));
        assert_eq!(
            first.iter().map(|o| &o.report).collect::<Vec<_>>(),
            second.iter().map(|o| &o.report).collect::<Vec<_>>(),
        );
        assert_eq!(first[0].summaries, second[0].summaries);
        assert!(!second[0].summaries.is_empty(), "summary records survive the round-trip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_failures_are_reported_and_never_cached() {
        let dir = tmp_cache_dir("parse-fail");
        let engine = engine_with_disk_cache(&dir);
        let sources = ["program broken;\nfn main( {}\n".to_string()];
        let (outcomes, _) = engine.scan_sources_with_stats(&sources);
        assert!(outcomes[0].report.is_none());
        assert!(!outcomes[0].errors.is_empty());
        // Second scan: still a disk miss — the failure was not stored.
        let (outcomes, stats) = engine.scan_sources_with_stats(&sources);
        assert!(!outcomes[0].from_disk_cache);
        assert_eq!(stats.persistent_misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_degrade_to_reanalysis_and_heal() {
        // Fresh engines per scan: the in-memory source tier would
        // otherwise (correctly) answer before the disk probe, and this
        // test is about the cross-process path where memory is cold.
        let dir = tmp_cache_dir("corrupt");
        let sources = [VULN_SRC];
        engine_with_disk_cache(&dir).scan_sources_with_stats(&sources);

        // Smash the entry on disk.
        let key = source_fingerprint(VULN_SRC);
        let path = dir.join(format!("{key:032x}.pnc"));
        std::fs::write(&path, b"PNXCACHEgarbage").unwrap();

        let (outcomes, stats) = engine_with_disk_cache(&dir).scan_sources_with_stats(&sources);
        assert!(outcomes[0].cache_corrupt);
        assert!(!outcomes[0].from_disk_cache);
        assert_eq!(stats.persistent_corrupt, 1);
        assert_eq!(stats.parses, 1, "corrupt entry forces a re-parse");
        assert!(outcomes[0].report.as_ref().unwrap().detected(), "re-analyzed from source");

        // The rewrite healed the entry: next (cold-memory) scan is a
        // clean disk hit.
        let (outcomes, stats) = engine_with_disk_cache(&dir).scan_sources_with_stats(&sources);
        assert!(outcomes[0].from_disk_cache);
        assert_eq!(stats.persistent_corrupt, 0);
        assert_eq!(stats.persistent_hits, 1);
        assert_eq!(stats.parses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn source_tier_shields_a_corrupted_disk_entry_within_a_process() {
        // Same engine, same text: the source tier answers without ever
        // touching the (now corrupt) disk entry — the in-memory copy is
        // current, so serving it is both correct and faster.
        let dir = tmp_cache_dir("shield");
        let engine = engine_with_disk_cache(&dir);
        engine.scan_sources_with_stats(&[VULN_SRC]);
        let key = source_fingerprint(VULN_SRC);
        std::fs::write(dir.join(format!("{key:032x}.pnc")), b"PNXCACHEgarbage").unwrap();
        let (outcomes, stats) = engine.scan_sources_with_stats(&[VULN_SRC]);
        assert!(outcomes[0].from_source_cache);
        assert_eq!(stats.persistent_corrupt, 0);
        assert_eq!(stats.parses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn source_scan_without_disk_cache_still_works() {
        let engine = BatchEngine::default().with_jobs(2);
        let (outcomes, stats) = engine.scan_sources_with_stats(&[VULN_SRC, VULN_SRC, SAFE_SRC]);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(stats.persistent_hits + stats.persistent_misses, 0);
        // The in-memory tiers still dedup equal inputs.
        assert_eq!(stats.cache_hits + stats.cache_misses, 3);
        assert_eq!(outcomes[0].report, outcomes[1].report);
    }

    #[test]
    fn warm_source_rescan_runs_zero_parses() {
        // The daemon acceptance path: a second scan of the same texts
        // through a live engine is pure source-fingerprint hits — no
        // parser, no analyzer, no disk.
        let engine = BatchEngine::default().with_jobs(2);
        let sources = [VULN_SRC, SAFE_SRC];
        let (cold, stats) = engine.scan_sources_with_stats(&sources);
        assert_eq!(stats.parses, 2);
        let (warm, stats) = engine.scan_sources_with_stats(&sources);
        assert_eq!(stats.parses, 0, "warm rescan must not parse");
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 0);
        assert!(warm.iter().all(|o| o.from_source_cache));
        assert_eq!(
            cold.iter().map(|o| &o.report).collect::<Vec<_>>(),
            warm.iter().map(|o| &o.report).collect::<Vec<_>>(),
        );
        let lifetime = engine.cache_stats();
        assert_eq!(lifetime.parses, 2);
        assert_eq!(lifetime.source_entries, 2);
    }

    #[test]
    fn per_scan_jobs_override_matches_engine_default() {
        let engine = BatchEngine::default().with_jobs(1);
        let sources = [VULN_SRC, SAFE_SRC, VULN_SRC];
        let (default_run, _) = engine.scan_sources_with_stats(&sources);
        engine.clear_cache();
        let (override_run, stats) = engine.scan_sources_with_stats_jobs(&sources, 8);
        assert_eq!(stats.jobs, 3, "worker count clamps to the input count");
        assert_eq!(default_run, override_run);
    }

    /// A corpus on disk: file i is vulnerable when i is odd.
    fn write_corpus(dir: &std::path::Path, n: usize) -> Vec<String> {
        std::fs::create_dir_all(dir).unwrap();
        (0..n)
            .map(|i| {
                let path = dir.join(format!("file-{i:03}.pnx"));
                let src = if i % 2 == 1 { VULN_SRC } else { SAFE_SRC };
                std::fs::write(&path, src.replace("program ", &format!("program f{i}_"))).unwrap();
                path.to_string_lossy().into_owned()
            })
            .collect()
    }

    fn reports_of(outcomes: &[TrackedOutcome]) -> Vec<Option<Report>> {
        outcomes.iter().map(|o| o.analysis.as_ref().map(|a| a.report.clone())).collect()
    }

    #[test]
    fn rescan_delta_reanalyzes_only_the_edited_file() {
        let dir = tmp_cache_dir("delta-one-edit");
        let paths = write_corpus(&dir.join("src"), 12);
        let engine = BatchEngine::default().with_jobs(2);
        let (cold, stats) = engine.scan_paths_tracked(&paths);
        assert_eq!(stats.parses, 12);

        // No edits: everything served from the tracked index.
        let (same, stats, delta) = engine.rescan_delta(&paths, None);
        assert_eq!(stats.parses, 0, "no-op rescan must not parse");
        assert_eq!(delta.unchanged_files, 12);
        assert_eq!(delta.changed_files + delta.added_files, 0);
        assert_eq!(reports_of(&cold), reports_of(&same));
        assert!(same.iter().all(|o| !o.reanalyzed));

        // Edit one file (flip it to vulnerable) and rescan.
        std::fs::write(&paths[0], VULN_SRC).unwrap();
        let (warm, stats, delta) = engine.rescan_delta(&paths, None);
        assert_eq!(stats.parses, 1, "only the edited file parses");
        assert_eq!(delta.changed_files, 1);
        assert_eq!(delta.unchanged_files, 11);
        assert!(warm[0].reanalyzed);
        assert!(warm[0].analysis.as_ref().unwrap().report.detected());
        assert!(delta.cone_functions >= 1);

        // The delta result equals a from-scratch scan of the same tree.
        let fresh = BatchEngine::default().with_jobs(2);
        let (full, _) = fresh.scan_paths_tracked(&paths);
        assert_eq!(reports_of(&warm), reports_of(&full));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rescan_delta_tracks_added_removed_and_hinted_files() {
        let dir = tmp_cache_dir("delta-add-remove");
        let mut paths = write_corpus(&dir.join("src"), 4);
        let engine = BatchEngine::default().with_jobs(2);
        engine.scan_paths_tracked(&paths);

        // Drop one path from the list, add a new file, hint another.
        let removed = paths.remove(3);
        let added = dir.join("src").join("file-new.pnx");
        std::fs::write(&added, VULN_SRC).unwrap();
        paths.push(added.to_string_lossy().into_owned());
        let hint = vec![paths[1].clone()];
        let (outcomes, _, delta) = engine.rescan_delta(&paths, Some(&hint));
        assert_eq!(delta.added_files, 1);
        assert_eq!(delta.removed_files, 1);
        assert_eq!(delta.changed_files, 1, "the hinted file re-analyzes");
        assert_eq!(delta.unchanged_files, 2);
        assert_eq!(delta.tracked_files, 4);
        // The hinted file is re-read, but its unchanged content hits
        // the in-memory source tier — no parse, same bytes out.
        assert!(!outcomes[1].reanalyzed, "hinted-but-identical content serves from cache");
        assert!(outcomes[3].analysis.as_ref().unwrap().report.detected(), "added file scanned");
        assert!(!std::path::Path::new(&removed).to_string_lossy().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pins the hint contract: a hinted rescan trusts the client and
    /// skips the stat sweep, so an edit the client did not name stays
    /// stale until the next unhinted rescan catches it.
    #[test]
    fn rescan_delta_hint_is_trusted_and_unhinted_rescan_heals() {
        let dir = tmp_cache_dir("delta-hint-trust");
        let paths = write_corpus(&dir.join("src"), 3);
        let engine = BatchEngine::default().with_jobs(1);
        let (cold, _) = engine.scan_paths_tracked(&paths);
        assert!(!cold[0].analysis.as_ref().unwrap().report.detected(), "file 0 starts safe");

        // Edit file 0 but hint only file 1: the edit is invisible.
        std::fs::write(&paths[0], VULN_SRC).unwrap();
        let hint = vec![paths[1].clone()];
        let (outcomes, _, delta) = engine.rescan_delta(&paths, Some(&hint));
        assert_eq!(delta.changed_files, 1, "only the hinted file re-ran");
        assert!(
            !outcomes[0].analysis.as_ref().unwrap().report.detected(),
            "unhinted edit serves the prior verdict — the client owns change detection"
        );

        // The unhinted (stat-sweep) rescan finds the drift and heals.
        let (outcomes, _, delta) = engine.rescan_delta(&paths, None);
        assert_eq!(delta.changed_files, 1);
        assert!(outcomes[0].analysis.as_ref().unwrap().report.detected(), "drift re-analyzed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rescan_delta_surfaces_read_errors_like_a_full_scan() {
        let dir = tmp_cache_dir("delta-unreadable");
        let paths = write_corpus(&dir.join("src"), 2);
        let engine = BatchEngine::default().with_jobs(1);
        engine.scan_paths_tracked(&paths);
        std::fs::remove_file(&paths[0]).unwrap();
        let (outcomes, _, delta) = engine.rescan_delta(&paths, None);
        assert!(outcomes[0].read_error.is_some());
        assert!(outcomes[0].analysis.is_none());
        assert_eq!(delta.changed_files, 1, "a vanished file classifies as changed");
        assert_eq!(delta.tracked_files, 1, "the unreadable file is untracked again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_carries_the_tracked_index_across_engines() {
        let dir = tmp_cache_dir("delta-manifest");
        let paths = write_corpus(&dir.join("src"), 6);
        let cache_dir = dir.join("cache");

        let first = engine_with_disk_cache(&cache_dir);
        let (cold, stats) = first.scan_paths_tracked(&paths);
        assert_eq!(stats.parses, 6);
        assert!(first.save_tracked_manifest());

        // A fresh engine (fresh process, in effect) seeds from the
        // manifest: the unchanged world comes from disk with zero
        // parses, lazily hydrated through the persistent tier.
        let second = engine_with_disk_cache(&cache_dir);
        assert_eq!(second.seed_tracked_from_manifest(), 6);
        std::fs::write(&paths[2], VULN_SRC).unwrap();
        let (warm, stats, delta) = second.rescan_delta(&paths, None);
        assert_eq!(delta.unchanged_files, 5);
        assert_eq!(delta.changed_files, 1);
        assert_eq!(stats.parses, 1, "only the edit parses in the new process");
        assert_eq!(
            stats.persistent_hits, 6,
            "unchanged files hydrate from disk, plus the edit's old entry for the cone"
        );
        for (i, (a, b)) in cold.iter().zip(&warm).enumerate() {
            if i != 2 {
                assert_eq!(
                    reports_of(std::slice::from_ref(a)),
                    reports_of(std::slice::from_ref(b))
                );
            }
        }
        assert!(warm[2].analysis.as_ref().unwrap().report.detected());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_seeded_entry_with_a_lost_cache_entry_reanalyzes() {
        let dir = tmp_cache_dir("delta-lost-entry");
        let paths = write_corpus(&dir.join("src"), 2);
        let cache_dir = dir.join("cache");
        let first = engine_with_disk_cache(&cache_dir);
        first.scan_paths_tracked(&paths);
        assert!(first.save_tracked_manifest());

        // Wipe the .pnc entries but keep the manifest: the promise is
        // broken, and the rescan must fall back to re-analysis.
        for entry in std::fs::read_dir(&cache_dir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "pnc") {
                std::fs::remove_file(p).unwrap();
            }
        }
        let second = engine_with_disk_cache(&cache_dir);
        second.seed_tracked_from_manifest();
        let (outcomes, stats, delta) = second.rescan_delta(&paths, None);
        assert_eq!(delta.changed_files, 2);
        assert_eq!(stats.parses, 2);
        assert!(outcomes.iter().all(|o| o.analysis.is_some()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_spec_partitions_the_key_space() {
        let shards = [
            ShardSpec { index: 0, count: 3 },
            ShardSpec { index: 1, count: 3 },
            ShardSpec { index: 2, count: 3 },
        ];
        for key in [0u128, 1, 2, 3, 41, u128::MAX, source_fingerprint(VULN_SRC)] {
            let owners = shards.iter().filter(|s| s.owns(key)).count();
            assert_eq!(owners, 1, "every key has exactly one owner");
        }
        assert!(ShardSpec { index: 0, count: 1 }.owns(u128::MAX), "a single shard owns all");
    }

    #[test]
    fn sharded_engines_agree_with_unsharded_results_and_split_warm_state() {
        let sources: Vec<String> =
            (0..8).map(|i| VULN_SRC.replace("program ", &format!("program s{i}_"))).collect();
        let whole = BatchEngine::default().with_jobs(1);
        let (expected, _) = whole.scan_sources_with_stats(&sources);

        for index in 0..2u32 {
            let replica =
                BatchEngine::default().with_jobs(1).with_shard(ShardSpec { index, count: 2 });
            let (got, _) = replica.scan_sources_with_stats(&sources);
            assert_eq!(
                expected.iter().map(|o| &o.report).collect::<Vec<_>>(),
                got.iter().map(|o| &o.report).collect::<Vec<_>>(),
                "sharding must never change verdicts"
            );
            // Warm rescan: owned keys hit the source tier, unowned
            // keys re-parse — the replica holds only its slice warm.
            let owned = sources
                .iter()
                .filter(|s| ShardSpec { index, count: 2 }.owns(source_fingerprint(s)))
                .count() as u64;
            let (_, stats) = replica.scan_sources_with_stats(&sources);
            assert_eq!(stats.cache_hits, owned, "only owned keys stay warm");
            assert_eq!(stats.parses, sources.len() as u64 - owned);
            let cache = replica.cache_stats();
            assert_eq!(cache.source_entries, owned as usize, "no warm state for unowned keys");
        }
    }

    #[test]
    fn sharded_engine_never_touches_the_disk_tier_for_unowned_keys() {
        let dir = tmp_cache_dir("shard-disk");
        let sources = [VULN_SRC, SAFE_SRC];
        // An unsharded engine warms the whole cache dir.
        engine_with_disk_cache(&dir).scan_sources_with_stats(&sources);

        // A shard that owns neither key must not read a single entry.
        let unowned: Vec<&str> = sources
            .iter()
            .copied()
            .filter(|s| !ShardSpec { index: 0, count: 2 }.owns(source_fingerprint(s)))
            .collect();
        let analyzer = Analyzer::new();
        let cache = PersistentCache::open(&dir, analyzer.config()).unwrap();
        let replica = BatchEngine::new(analyzer)
            .with_jobs(1)
            .with_persistent_cache(cache)
            .with_shard(ShardSpec { index: 0, count: 2 });
        let (_, stats) = replica.scan_sources_with_stats(&unowned);
        assert_eq!(stats.persistent_hits, 0, "unowned keys skip the disk tier");
        assert_eq!(stats.persistent_misses, 0);
        assert_eq!(stats.parses, unowned.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_snapshots_are_never_torn_under_concurrent_requests() {
        // The pncheckd-stats/1 regression: counters sampled while
        // requests mutate them must always satisfy
        // hits + misses == lookups. With the old independent atomics a
        // reader could see the hit increment but not yet the lookup's.
        let engine = Arc::new(BatchEngine::default().with_jobs(1));
        let sources: Vec<String> =
            (0..16).map(|i| SAFE_SRC.replace("program ", &format!("program t{i}_"))).collect();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        thread::scope(|scope| {
            for _ in 0..2 {
                let engine = Arc::clone(&engine);
                let sources = sources.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        engine.scan_sources_with_stats_jobs(&sources, 2);
                    }
                });
            }
            let mut sampled = 0u64;
            while sampled < 500 {
                let snap = engine.cache_stats();
                assert_eq!(snap.hits + snap.misses, snap.lookups, "torn stats snapshot: {snap:?}");
                sampled += 1;
            }
            stop.store(true, Ordering::Relaxed);
        });
        let final_snap = engine.cache_stats();
        assert_eq!(final_snap.hits + final_snap.misses, final_snap.lookups);
        assert!(final_snap.lookups > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = BatchEngine::default();
        let (reports, stats) = engine.scan_with_stats(&[]);
        assert!(reports.is_empty());
        assert_eq!(stats.programs, 0);
        assert_eq!(stats.programs_per_sec(), 0.0);
        assert_eq!(stats.cache_hit_rate(), 0.0);
    }
}
