//! Parallel, cache-aware batch analysis.
//!
//! [`BatchEngine`] scans many [`Program`]s concurrently on a pool of
//! scoped worker threads (`std::thread::scope` over a shared atomic
//! work-queue cursor — no extra runtime dependencies) and returns one
//! [`Report`] per input, **in input order**, regardless of how many
//! workers ran or how the queue interleaved.
//!
//! Results are memoized behind a content-fingerprint cache: the key is a
//! stable FNV-1a hash of the program's canonical pretty-printed form
//! (which round-trips through the parser, so equal programs — even ones
//! built independently — hash equally, and any semantic difference
//! changes the key). A second scan of an unchanged corpus is pure cache
//! hits.
//!
//! ```
//! use pnew_detector::{Analyzer, BatchEngine, Expr, ProgramBuilder, Ty};
//!
//! let mut p = ProgramBuilder::new("demo");
//! p.class("Student", 16, None, false);
//! p.class("GradStudent", 32, Some("Student"), false);
//! let mut f = p.function("main");
//! let stud = f.local("stud", Ty::Class("Student".into()));
//! let st = f.local("st", Ty::Ptr);
//! f.placement_new(st, Expr::addr_of(stud), "GradStudent");
//! f.finish();
//! let programs = vec![p.build()];
//!
//! let engine = BatchEngine::new(Analyzer::new()).with_jobs(4);
//! let (reports, stats) = engine.scan_with_stats(&programs);
//! assert_eq!(reports.len(), 1);
//! assert!(reports[0].detected());
//! assert_eq!(stats.cache_misses, 1);
//!
//! // Unchanged inputs are served from the cache on the next scan.
//! let (_, stats) = engine.scan_with_stats(&programs);
//! assert_eq!(stats.cache_hits, 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::analysis::Analyzer;
use crate::findings::Report;
use crate::ir::Program;
use crate::pretty::pretty;
use crate::trace::TraceCollector;

/// Stable content fingerprint of a program.
///
/// 128-bit FNV-1a over the canonical pretty-printed text. The pretty
/// form sorts classes, includes the program name, and round-trips
/// through the parser (`parse(pretty(p)) == p`), so it is injective up
/// to program equality, and structurally equal programs always agree
/// even when their internal `HashMap` iteration orders differ. The key
/// was widened from 64 bits: a corpus-scale cache keyed on a bare
/// 64-bit hash has a real birthday-collision risk, and a collision
/// silently serves the wrong report.
pub fn fingerprint(program: &Program) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for byte in pretty(program).bytes() {
        hash ^= u128::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Counters describing one [`BatchEngine::scan_with_stats`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Programs scanned.
    pub programs: usize,
    /// Total findings across all reports.
    pub findings: usize,
    /// Reports served from the fingerprint cache.
    pub cache_hits: u64,
    /// Reports that required a fresh analysis.
    pub cache_misses: u64,
    /// Wall-clock time of the scan.
    pub elapsed: Duration,
    /// Worker threads used.
    pub jobs: usize,
}

impl BatchStats {
    /// Scan throughput in programs per second (0 for an empty scan).
    pub fn programs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.programs as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of programs served from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            self.cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Lifetime cache counters for a [`BatchEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Scans answered from the cache since construction.
    pub hits: u64,
    /// Scans that ran the analyzer since construction.
    pub misses: u64,
    /// Reports currently cached.
    pub entries: usize,
}

/// A parallel batch scanner with a content-fingerprint report cache.
///
/// See the [module docs](self) for the concurrency and caching model.
#[derive(Debug)]
pub struct BatchEngine {
    analyzer: Analyzer,
    jobs: usize,
    cache: Mutex<HashMap<u128, Report>>,
    hits: AtomicU64,
    misses: AtomicU64,
    trace: Option<Arc<TraceCollector>>,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine::new(Analyzer::new())
    }
}

impl BatchEngine {
    /// An engine around `analyzer`, with one worker per available CPU.
    pub fn new(analyzer: Analyzer) -> Self {
        let jobs = thread::available_parallelism().map_or(1, |n| n.get());
        BatchEngine {
            analyzer,
            jobs,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            trace: None,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Feeds counter and timing events (`batch.*`, `analysis.*`,
    /// `findings.*`) into `trace` during every scan. All workers share
    /// the one collector.
    #[must_use]
    pub fn with_trace(mut self, trace: Arc<TraceCollector>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The analyzer driving each scan.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Scans every program, returning reports in input order.
    ///
    /// The order and content of the reports are independent of the
    /// worker count: workers pull indices from a shared cursor but write
    /// into the slot of the program they took, and each program's
    /// analysis is deterministic.
    pub fn scan(&self, programs: &[Program]) -> Vec<Report> {
        self.scan_with_stats(programs).0
    }

    /// [`scan`](Self::scan), plus throughput and cache counters for the
    /// run.
    pub fn scan_with_stats(&self, programs: &[Program]) -> (Vec<Report>, BatchStats) {
        let start = Instant::now();
        let hits_before = self.hits.load(Ordering::Relaxed);
        let misses_before = self.misses.load(Ordering::Relaxed);

        let workers = self.jobs.min(programs.len().max(1));
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Report>>> =
            Mutex::new((0..programs.len()).map(|_| None).collect());
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(program) = programs.get(i) else {
                        break;
                    };
                    let report = self.analyze_cached(program);
                    results.lock().expect("batch results poisoned")[i] = Some(report);
                });
            }
        });
        let reports: Vec<Report> = results
            .into_inner()
            .expect("batch results poisoned")
            .into_iter()
            .map(|slot| slot.expect("every queue slot is filled before the scope ends"))
            .collect();

        let stats = BatchStats {
            programs: programs.len(),
            findings: reports.iter().map(|r| r.findings.len()).sum(),
            cache_hits: self.hits.load(Ordering::Relaxed) - hits_before,
            cache_misses: self.misses.load(Ordering::Relaxed) - misses_before,
            elapsed: start.elapsed(),
            jobs: workers,
        };
        if let Some(t) = &self.trace {
            t.count("batch.programs", programs.len() as u64);
            t.record_pass("batch.scan", stats.elapsed);
        }
        (reports, stats)
    }

    /// Analyzes one program through the cache.
    fn analyze_cached(&self, program: &Program) -> Report {
        let key = fingerprint(program);
        if let Some(hit) = self.cache.lock().expect("batch cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &self.trace {
                t.count("batch.cache-hit", 1);
            }
            return hit.clone();
        }
        // The lock is dropped during analysis: concurrent misses on the
        // same key may both analyze (identical, deterministic results),
        // but workers never serialize behind a slow analysis.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = match &self.trace {
            Some(t) => {
                t.count("batch.cache-miss", 1);
                self.analyzer.analyze_traced(program, t)
            }
            None => self.analyzer.analyze(program),
        };
        self.cache.lock().expect("batch cache poisoned").insert(key, report.clone());
        report
    }

    /// Lifetime hit/miss counters and the current cache size.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.lock().expect("batch cache poisoned").len(),
        }
    }

    /// Drops every cached report (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("batch cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::{Expr, Ty};

    fn vulnerable(name: &str) -> Program {
        let mut p = ProgramBuilder::new(name);
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        p.build()
    }

    fn safe(name: &str) -> Program {
        let mut p = ProgramBuilder::new(name);
        p.class("Student", 16, None, false);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "Student");
        f.finish();
        p.build()
    }

    fn mixed(n: usize) -> Vec<Program> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vulnerable(&format!("vuln-{i}"))
                } else {
                    safe(&format!("safe-{i}"))
                }
            })
            .collect()
    }

    #[test]
    fn reports_come_back_in_input_order() {
        let programs = mixed(37);
        let engine = BatchEngine::new(Analyzer::new()).with_jobs(8);
        let reports = engine.scan(&programs);
        assert_eq!(reports.len(), programs.len());
        for (program, report) in programs.iter().zip(&reports) {
            assert_eq!(program.name, report.program);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let programs = mixed(24);
        let serial = BatchEngine::new(Analyzer::new()).with_jobs(1).scan(&programs);
        let parallel = BatchEngine::new(Analyzer::new()).with_jobs(8).scan(&programs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn second_scan_is_all_hits() {
        let programs = mixed(10);
        let engine = BatchEngine::new(Analyzer::new()).with_jobs(4);
        let (_, first) = engine.scan_with_stats(&programs);
        assert_eq!(first.cache_misses, 10);
        assert_eq!(first.cache_hits, 0);
        let (reports, second) = engine.scan_with_stats(&programs);
        assert_eq!(second.cache_hits, 10);
        assert_eq!(second.cache_misses, 0);
        assert!((second.cache_hit_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(reports, engine.scan(&programs));
    }

    #[test]
    fn equal_programs_share_a_cache_entry() {
        // Two structurally equal programs built independently (their
        // internal HashMaps have different iteration orders) must hash
        // to the same fingerprint.
        let a = vulnerable("same");
        let b = vulnerable("same");
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let engine = BatchEngine::default().with_jobs(1);
        let (_, stats) = engine.scan_with_stats(&[a, b]);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn fingerprint_separates_name_content_and_findings() {
        assert_ne!(fingerprint(&vulnerable("a")), fingerprint(&vulnerable("b")));
        assert_ne!(fingerprint(&vulnerable("a")), fingerprint(&safe("a")));
    }

    #[test]
    fn fingerprint_uses_the_full_128_bit_key_space() {
        // Collision-hazard regression: the cache key must be the widened
        // 128-bit hash, not a 64-bit value zero-extended into one.
        let fp = fingerprint(&vulnerable("wide"));
        assert_ne!(fp >> 64, 0, "high half of the key is unused");
        assert_ne!(fp & u128::from(u64::MAX), 0, "low half of the key is unused");
        assert_eq!(fp, fingerprint(&vulnerable("wide")), "fingerprint must be stable");
    }

    #[test]
    fn clear_cache_forces_reanalysis() {
        let programs = mixed(4);
        let engine = BatchEngine::default().with_jobs(2);
        engine.scan(&programs);
        engine.clear_cache();
        let (_, stats) = engine.scan_with_stats(&programs);
        assert_eq!(stats.cache_misses, 4);
        let lifetime = engine.cache_stats();
        assert_eq!(lifetime.misses, 8);
        assert_eq!(lifetime.entries, 4);
    }

    #[test]
    fn trace_collects_scan_counters() {
        let trace = Arc::new(TraceCollector::new());
        // One worker: the duplicate is deterministically a cache hit.
        let engine = BatchEngine::default().with_jobs(1).with_trace(Arc::clone(&trace));
        let programs = vec![vulnerable("same"), vulnerable("same"), safe("other")];
        engine.scan(&programs);
        let snap = trace.snapshot();
        assert_eq!(snap.counters["batch.programs"], 3);
        assert_eq!(snap.counters["batch.cache-hit"], 1);
        assert_eq!(snap.counters["batch.cache-miss"], 2);
        assert_eq!(snap.counters["findings.oversized-placement"], 1);
        assert!(snap.passes.iter().any(|p| p.name == "batch.scan"));
        assert!(snap.passes.iter().any(|p| p.name == "analysis.walk"));
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = BatchEngine::default();
        let (reports, stats) = engine.scan_with_stats(&[]);
        assert!(reports.is_empty());
        assert_eq!(stats.programs, 0);
        assert_eq!(stats.programs_per_sec(), 0.0);
        assert_eq!(stats.cache_hit_rate(), 0.0);
    }
}
