//! Function summaries for the interprocedural analysis.
//!
//! The analyzer's interprocedural strategy is *summary-based*: instead of
//! re-walking a callee's body inline at every call site (O(call paths) —
//! exponential on deep, fan-in-heavy call graphs), each `(function,
//! depth, abstract context)` triple is walked **once** and the result is
//! memoized as a [`CallSummary`]: the findings the body emits under that
//! context, the global/heap region effects it leaves behind, and whether
//! it clobbers memory (a proven overflow). Call sites *apply* the
//! summary — replay the findings through the report-level deduplication
//! and merge the region effects into the caller — which is byte-for-byte
//! equivalent to the inline walk but collapses the path explosion to
//! O(functions × distinct contexts).
//!
//! The abstract context ([`SummaryKey`]) captures exactly the inputs the
//! callee walk reads from its caller:
//!
//! * per-parameter facts — taint, the propagated value interval
//!   (constants are its degenerate layer), points-to target;
//! * the lifecycle state of every region visible to the callee
//!   (globals and heap blocks), including residue provenance;
//! * whether memory is already clobbered (and by which site — the site
//!   appears in message text, so it is part of the context identity);
//! * the call depth, because the hard depth guard emits its diagnostic
//!   at a depth-dependent frontier.
//!
//! A bottom-up pass over the call graph's SCC condensation (iterative
//! Tarjan, [`CallGraph`]) seeds the memo table callees-first; recursive
//! cycles cannot be summarized bottom-up and fall back to the bounded
//! widening of the depth guard (the walk descends through the cycle
//! until `MAX_CALL_DEPTH`, then emits a deterministic
//! `analysis-depth-exceeded` diagnostic instead of silently truncating).

use std::collections::HashMap;
use std::rc::Rc;

use crate::analysis::{RegionId, RegionState, State};
use crate::findings::Finding;
use crate::ir::{Program, Site, Stmt, Symbol, VarId};

/// Orders/hashes a region identity without needing `Ord` on the IR type.
pub(crate) fn region_sort_key(id: RegionId) -> (u8, u32) {
    match id {
        RegionId::Var(v) => (0, v.index()),
        RegionId::Heap(line) => (1, line),
    }
}

/// Identity token for a borrowed [`Site`]. Summaries are memoized within
/// one `analyze` call, where every site is a stable borrow from the
/// program, so the address is a precise identity (two sites with equal
/// (function, line) but different provenance stay distinct — at worst a
/// memo miss, never a wrong replay).
fn site_token(site: &Site) -> usize {
    std::ptr::from_ref(site) as usize
}

/// The caller-provided facts about one callee parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ParamFacts {
    tainted: bool,
    /// The caller-visible value interval `(lo, hi)` bound to the
    /// parameter — summaries key on the full interval, so a guarded
    /// argument and an unguarded one never share a summary.
    interval: (i64, i64),
    points_to: Option<(u8, u32)>,
}

/// Hashable snapshot of a region's lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RegionFacts {
    alloc_size: Option<u64>,
    alloc_class: Option<Symbol>,
    last_tenant_size: Option<u64>,
    has_secret: bool,
    residue_at: Option<usize>,
    freed: bool,
    tainted_pool: bool,
}

impl RegionFacts {
    fn of(rs: &RegionState<'_>) -> Self {
        RegionFacts {
            alloc_size: rs.alloc_size,
            alloc_class: rs.alloc_class,
            last_tenant_size: rs.last_tenant_size,
            has_secret: rs.has_secret,
            residue_at: rs.residue_at.map(site_token),
            freed: rs.freed,
            tainted_pool: rs.tainted_pool,
        }
    }
}

/// The abstract calling context a summary is keyed on. See the
/// [module docs](self) for what each component captures and why.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SummaryKey {
    fi: usize,
    depth: u32,
    clobbered: Option<usize>,
    params: Vec<ParamFacts>,
    regions: Vec<((u8, u32), RegionFacts)>,
}

impl SummaryKey {
    /// Builds the context key for walking function `fi`'s body at
    /// `depth`, from the callee-entry state the caller prepared.
    pub(crate) fn of(fi: usize, depth: u32, params: &[VarId], state: &State<'_>) -> Self {
        let params = params
            .iter()
            .map(|&p| {
                let i = p.index() as usize;
                ParamFacts {
                    tainted: state.tainted[i],
                    interval: (state.vals[i].lo, state.vals[i].hi),
                    points_to: state.points_to[i].map(region_sort_key),
                }
            })
            .collect();
        let mut regions: Vec<((u8, u32), RegionFacts)> = state
            .regions
            .iter()
            .map(|(&id, rs)| (region_sort_key(id), RegionFacts::of(rs)))
            .collect();
        regions.sort_unstable_by_key(|&(k, _)| k);
        SummaryKey { fi, depth, clobbered: state.clobbered_at.map(site_token), params, regions }
    }
}

/// The transfer summary of one `(function, depth, context)`: everything
/// applying the call needs, without re-walking the body.
#[derive(Debug, Clone)]
pub(crate) struct CallSummary<'p> {
    /// Findings the body emits under this context, in emission order
    /// (deduplicated within the summary; replay dedups globally).
    pub(crate) findings: Vec<Finding>,
    /// Exit state of the caller-visible (global/heap) regions, sorted by
    /// region identity for determinism.
    pub(crate) exit_regions: Vec<(RegionId, RegionState<'p>)>,
    /// Site of the first proven overflow inside the call, if any — the
    /// clobber propagates to the caller.
    pub(crate) exit_clobber: Option<&'p Site>,
}

/// The per-analysis memo table of computed summaries, with the counters
/// `--stats` surfaces.
#[derive(Debug, Default)]
pub(crate) struct Memo<'p> {
    table: HashMap<SummaryKey, Rc<CallSummary<'p>>>,
    /// Summaries computed by walking a body.
    pub(crate) computed: u64,
    /// Call sites (and entry replays) served from the table.
    pub(crate) applied: u64,
}

impl<'p> Memo<'p> {
    pub(crate) fn get(&self, key: &SummaryKey) -> Option<Rc<CallSummary<'p>>> {
        self.table.get(key).cloned()
    }

    pub(crate) fn insert(&mut self, key: SummaryKey, summary: Rc<CallSummary<'p>>) {
        self.table.insert(key, summary);
    }
}

/// One callee summary a function's analysis consumed: the serializable
/// identity of the dependency edge. `fingerprint` is the callee's
/// content fingerprint at analysis time, so a later run can tell from
/// two record sets alone whether the edge's target changed — the
/// reverse-dependency walk behind
/// [`invalidation_cone`](crate::delta::invalidation_cone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryDep {
    /// The callee's function name (unique within a program).
    pub callee: String,
    /// The callee's content fingerprint when the summary was computed.
    pub fingerprint: u64,
}

/// A compact digest of one function's entry summary, serialized into the
/// persistent cache next to the findings so a warm rerun can report
/// summary-level statistics — and compute invalidation cones — without
/// re-analyzing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSummaryRecord {
    /// Function name.
    pub function: String,
    /// Content fingerprint: a 64-bit FNV-1a over the program preamble
    /// (classes and globals, whose sizes and types every body reads)
    /// plus this function's canonical pretty-printed text. Unchanged
    /// text ⇒ unchanged fingerprint, and any semantic edit changes it.
    pub fingerprint: u64,
    /// Findings the function emits when analyzed as an entry point.
    pub findings: u32,
    /// Caller-visible (global/heap) regions the function's summary
    /// carries effects for.
    pub region_effects: u32,
    /// Whether the function can clobber memory (a proven overflow).
    pub clobbers: bool,
    /// The resolved direct callees whose summaries this function's
    /// analysis may consume, with their fingerprints at analysis time.
    pub deps: Vec<SummaryDep>,
}

/// The program's direct-call graph and its SCC condensation.
#[derive(Debug)]
pub(crate) struct CallGraph {
    /// Resolved, deduplicated callee indices per function — the edges
    /// the Tarjan pass walks and the dependency lists in
    /// [`FunctionSummaryRecord::deps`] serialize.
    pub(crate) callees: Vec<Vec<usize>>,
    /// Function indices in bottom-up (callees-first) order of the SCC
    /// condensation: by the time `bottom_up[i]` is visited, every
    /// function it calls outside its own SCC has been visited.
    pub(crate) bottom_up: Vec<usize>,
    /// Whether the function participates in a cycle (a non-trivial SCC,
    /// or a direct self-call). Cycles are the widening fallback case.
    pub(crate) in_cycle: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph with an iterative Tarjan SCC pass (no
    /// recursion: a 10k-deep call chain must not overflow the stack of
    /// the analyzer itself).
    pub(crate) fn build(program: &Program, fn_by_name: &HashMap<&str, usize>) -> Self {
        let n = program.functions.len();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, f) in program.functions.iter().enumerate() {
            collect_callees(&f.body, fn_by_name, &mut callees[i]);
        }

        let mut index_of = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut scc_stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut bottom_up = Vec::with_capacity(n);
        let mut in_cycle: Vec<bool> = (0..n).map(|v| callees[v].contains(&v)).collect();

        // (vertex, next-callee cursor) frames of the simulated DFS.
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index_of[root] != usize::MAX {
                continue;
            }
            index_of[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            scc_stack.push(root);
            on_stack[root] = true;
            frames.push((root, 0));
            while let Some(&(v, cursor)) = frames.last() {
                if let Some(&w) = callees[v].get(cursor) {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if index_of[w] == usize::MAX {
                        index_of[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        scc_stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index_of[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index_of[v] {
                        let first = bottom_up.len();
                        loop {
                            let w = scc_stack.pop().expect("SCC stack underflow");
                            on_stack[w] = false;
                            bottom_up.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if bottom_up.len() - first > 1 {
                            for &w in &bottom_up[first..] {
                                in_cycle[w] = true;
                            }
                        }
                    }
                }
            }
        }
        CallGraph { callees, bottom_up, in_cycle }
    }

    /// Number of functions that are part of a recursive cycle.
    pub(crate) fn recursive_functions(&self) -> usize {
        self.in_cycle.iter().filter(|&&c| c).count()
    }
}

/// Collects the resolved direct callees of a body, deduplicated, in
/// first-call order.
fn collect_callees(body: &[Stmt], fn_by_name: &HashMap<&str, usize>, out: &mut Vec<usize>) {
    for stmt in body {
        match stmt {
            Stmt::Call { func, .. } => {
                if let Some(&j) = fn_by_name.get(func.as_str()) {
                    if !out.contains(&j) {
                        out.push(j);
                    }
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                collect_callees(then_body, fn_by_name, out);
                collect_callees(else_body, fn_by_name, out);
            }
            Stmt::While { body, .. } => collect_callees(body, fn_by_name, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::{Expr, Ty};

    /// `names[i]` calls `calls[i]`; every function gets a trivial body
    /// statement so builders stay happy.
    fn chain_program(edges: &[(&str, &[&str])]) -> Program {
        let mut p = ProgramBuilder::new("cg");
        for (name, callees) in edges {
            let mut f = p.function(name);
            let x = f.local("x", Ty::Int);
            f.assign(x, Expr::Const(1));
            for callee in *callees {
                f.call(callee, vec![]);
            }
            f.finish();
        }
        p.build()
    }

    fn by_name(p: &Program) -> HashMap<&str, usize> {
        p.functions.iter().enumerate().map(|(i, f)| (f.name.as_str(), i)).collect()
    }

    #[test]
    fn bottom_up_order_visits_callees_first() {
        let p = chain_program(&[("a", &["b", "c"]), ("b", &["c"]), ("c", &[])]);
        let g = CallGraph::build(&p, &by_name(&p));
        let pos = |f: usize| g.bottom_up.iter().position(|&x| x == f).unwrap();
        assert!(pos(2) < pos(1), "c before b");
        assert!(pos(1) < pos(0), "b before a");
        assert_eq!(g.recursive_functions(), 0);
        assert_eq!(g.callees[0], vec![1, 2]);
    }

    #[test]
    fn cycles_are_detected_and_condensed() {
        // a → b → c → b (cycle {b, c}), d → d (self-loop).
        let p = chain_program(&[("a", &["b"]), ("b", &["c"]), ("c", &["b"]), ("d", &["d"])]);
        let g = CallGraph::build(&p, &by_name(&p));
        assert!(!g.in_cycle[0]);
        assert!(g.in_cycle[1] && g.in_cycle[2], "mutual recursion flagged");
        assert!(g.in_cycle[3], "self-loop flagged");
        assert_eq!(g.recursive_functions(), 3);
        // The {b, c} SCC sits before a in the bottom-up order.
        let pos = |f: usize| g.bottom_up.iter().position(|&x| x == f).unwrap();
        assert!(pos(1) < pos(0) && pos(2) < pos(0));
        assert_eq!(g.bottom_up.len(), 4);
    }

    #[test]
    fn unresolved_callees_are_ignored() {
        let p = chain_program(&[("a", &["printf", "a"])]);
        let g = CallGraph::build(&p, &by_name(&p));
        assert_eq!(g.callees[0], vec![0], "only the resolved self-call survives");
        assert!(g.in_cycle[0]);
    }
}
