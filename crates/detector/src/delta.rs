//! Dependency-aware invalidation for incremental re-analysis.
//!
//! The summary engine records, for every memoized function, the callees
//! it consumed and their content fingerprints
//! ([`FunctionSummaryRecord::deps`]). Given the summary records of a
//! file *before* and *after* an edit, [`invalidation_cone`] computes the
//! set of functions whose cached results can no longer be trusted: the
//! edited functions themselves plus every transitive caller reachable
//! over the reverse dependency edges. Everything outside the cone is
//! provably untouched by the edit and keeps serving from cache.
//!
//! Because `.pnx` call resolution is per-program (a call site only binds
//! to a function in the same file), the *file-level* cone of an edit is
//! exactly the edited file — which is what makes
//! [`BatchEngine::rescan_delta`](crate::BatchEngine::rescan_delta)
//! sound while re-analyzing only changed files. The function-level cone
//! computed here sizes the invalidation for `--stats`/trace, and is the
//! object the soundness property tests check: a function whose verdict
//! changed between two analyses must always lie inside the cone.
//!
//! This module also owns the **delta manifest** (`manifest.pnm`), the
//! small text file in a `--cache-dir` that lets `pncheck --delta` carry
//! the tracked-file index across processes: one row per file with its
//! length, mtime, and source-fingerprint key. The manifest is an
//! accelerator, not a source of truth — a missing or stale manifest
//! degrades to stat+read+cache-probe per file, never to a wrong report.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::summary::FunctionSummaryRecord;

/// Size accounting for one [`invalidation_cone`] computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConeStats {
    /// Functions whose own content changed (edited, added, or removed).
    pub changed_functions: usize,
    /// Total functions invalidated: the changed set plus its transitive
    /// reverse-dependency closure. Always ≥ `changed_functions`.
    pub cone_functions: usize,
    /// Functions tracked across both versions (union of old and new).
    pub tracked_functions: usize,
}

/// Computes the invalidation cone between two summary-record sets of
/// the same file.
///
/// A function is *changed* when its content fingerprint differs between
/// `old` and `new`, or it exists on only one side. The cone is the
/// changed set closed under "is called by", using the dependency edges
/// recorded in `old` (an unchanged caller has identical edges on both
/// sides; a changed caller is in the cone regardless). Returns the cone
/// member names, sorted and deduplicated, plus size counters.
pub fn invalidation_cone(
    old: &[FunctionSummaryRecord],
    new: &[FunctionSummaryRecord],
) -> (Vec<String>, ConeStats) {
    use std::collections::{BTreeSet, HashMap};

    let old_fps: HashMap<&str, u64> =
        old.iter().map(|r| (r.function.as_str(), r.fingerprint)).collect();
    let new_fps: HashMap<&str, u64> =
        new.iter().map(|r| (r.function.as_str(), r.fingerprint)).collect();

    let mut tracked: BTreeSet<&str> = old_fps.keys().copied().collect();
    tracked.extend(new_fps.keys().copied());

    let mut changed: BTreeSet<&str> = BTreeSet::new();
    for &name in &tracked {
        if old_fps.get(name) != new_fps.get(name) {
            changed.insert(name);
        }
    }

    // Reverse edges from the old records: callee -> callers.
    let mut callers: HashMap<&str, Vec<&str>> = HashMap::new();
    for record in old {
        for dep in &record.deps {
            callers.entry(dep.callee.as_str()).or_default().push(record.function.as_str());
        }
    }

    let mut cone: BTreeSet<&str> = changed.clone();
    let mut frontier: Vec<&str> = cone.iter().copied().collect();
    while let Some(name) = frontier.pop() {
        if let Some(callers_of) = callers.get(name) {
            for &caller in callers_of {
                if cone.insert(caller) {
                    frontier.push(caller);
                }
            }
        }
    }

    let stats = ConeStats {
        changed_functions: changed.len(),
        cone_functions: cone.len(),
        tracked_functions: tracked.len(),
    };
    (cone.into_iter().map(str::to_owned).collect(), stats)
}

/// One tracked file in a delta manifest: enough to decide "unchanged?"
/// from a bare `stat` and to find the file's cache entry without
/// re-reading or re-hashing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRow {
    /// The file path exactly as the engine scanned it.
    pub path: String,
    /// File length in bytes at scan time.
    pub len: u64,
    /// Modification time in nanoseconds since the Unix epoch (0 when
    /// the platform could not report one).
    pub mtime_ns: u128,
    /// The 128-bit source fingerprint — the persistent-cache key.
    pub key: u128,
}

const MANIFEST_HEADER: &str = "pnx-delta-manifest/1";

/// The manifest location inside a `dir`-backend cache directory. (The
/// `indexed` backend stores the same text as a record in its store
/// file instead — see [`crate::backend`].)
pub fn manifest_path(cache_dir: &Path) -> PathBuf {
    cache_dir.join(crate::backend::MANIFEST_FILE)
}

/// Parses manifest text into rows.
///
/// Forgiving by design: a foreign header or malformed rows yield an
/// empty (or shorter) row set — the caller then treats the affected
/// files as untracked and falls back to a normal scan.
pub fn parse_manifest(text: &str) -> Vec<ManifestRow> {
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Vec::new();
    }
    let mut rows = Vec::new();
    for line in lines {
        if let Some(row) = parse_row(line) {
            rows.push(row);
        }
    }
    rows
}

/// Reads a delta manifest file, returning its rows. A missing file is
/// empty, not an error — see [`parse_manifest`].
pub fn read_manifest(path: &Path) -> Vec<ManifestRow> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    parse_manifest(&text)
}

/// `<len> <mtime_ns> <key:032x> <path>` — path last, so paths with
/// spaces survive.
fn parse_row(line: &str) -> Option<ManifestRow> {
    let mut parts = line.splitn(4, ' ');
    let len = parts.next()?.parse().ok()?;
    let mtime_ns = parts.next()?.parse().ok()?;
    let key = u128::from_str_radix(parts.next()?, 16).ok()?;
    let path = parts.next()?;
    if path.is_empty() {
        return None;
    }
    Some(ManifestRow { path: path.to_owned(), len, mtime_ns, key })
}

/// Renders rows (sorted by path for determinism) as manifest text, the
/// inverse of [`parse_manifest`].
pub fn render_manifest(rows: &mut [ManifestRow]) -> String {
    rows.sort_by(|a, b| a.path.cmp(&b.path));
    let mut text = String::from(MANIFEST_HEADER);
    text.push('\n');
    for row in rows.iter() {
        // Paths with newlines cannot round-trip a line-oriented format;
        // skip them (the file just becomes untracked next run).
        if row.path.contains('\n') {
            continue;
        }
        text.push_str(&format!("{} {} {:032x} {}\n", row.len, row.mtime_ns, row.key, row.path));
    }
    text
}

/// Writes a delta manifest file, via a uniquely named temp file
/// (pid + nonce, so concurrent writers sharing the directory cannot
/// clobber each other's in-flight temp) and rename so concurrent
/// readers never see a torn file. Best-effort like
/// [`PersistentCache::put`](crate::PersistentCache): returns whether
/// the write succeeded.
pub fn write_manifest(path: &Path, rows: &mut [ManifestRow]) -> bool {
    let text = render_manifest(rows);
    let Some(dir) = path.parent() else {
        return false;
    };
    let tmp =
        dir.join(format!(".manifest.{}-{}.tmp", std::process::id(), crate::backend::temp_nonce()));
    let wrote = fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(text.as_bytes()))
        .and_then(|()| fs::rename(&tmp, path));
    if wrote.is_err() {
        let _ = fs::remove_file(&tmp);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryDep;

    fn record(function: &str, fingerprint: u64, deps: &[(&str, u64)]) -> FunctionSummaryRecord {
        FunctionSummaryRecord {
            function: function.into(),
            fingerprint,
            findings: 0,
            region_effects: 0,
            clobbers: false,
            deps: deps
                .iter()
                .map(|&(callee, fp)| SummaryDep { callee: callee.into(), fingerprint: fp })
                .collect(),
        }
    }

    #[test]
    fn unchanged_records_produce_an_empty_cone() {
        let recs = vec![record("a", 1, &[("b", 2)]), record("b", 2, &[])];
        let (cone, stats) = invalidation_cone(&recs, &recs);
        assert!(cone.is_empty());
        assert_eq!(
            stats,
            ConeStats { changed_functions: 0, cone_functions: 0, tracked_functions: 2 }
        );
    }

    #[test]
    fn editing_a_leaf_invalidates_its_transitive_callers() {
        // main -> helper -> leaf; sibling is independent.
        let old = vec![
            record("main", 10, &[("helper", 20)]),
            record("helper", 20, &[("leaf", 30)]),
            record("leaf", 30, &[]),
            record("sibling", 40, &[]),
        ];
        let mut new = old.clone();
        new[2].fingerprint = 31; // leaf edited
        let (cone, stats) = invalidation_cone(&old, &new);
        assert_eq!(cone, vec!["helper", "leaf", "main"]);
        assert_eq!(stats.changed_functions, 1);
        assert_eq!(stats.cone_functions, 3);
        assert_eq!(stats.tracked_functions, 4);
    }

    #[test]
    fn added_and_removed_functions_are_in_the_cone() {
        let old = vec![record("keep", 1, &[("gone", 2)]), record("gone", 2, &[])];
        let new = vec![record("keep", 1, &[("gone", 2)]), record("fresh", 3, &[])];
        let (cone, stats) = invalidation_cone(&old, &new);
        // `gone` was removed, `fresh` was added; `keep` called `gone`,
        // so it rides the reverse edge into the cone.
        assert_eq!(cone, vec!["fresh", "gone", "keep"]);
        assert_eq!(stats.changed_functions, 2);
        assert_eq!(stats.tracked_functions, 3);
    }

    #[test]
    fn a_call_cycle_terminates_and_invalidates_the_whole_loop() {
        let old = vec![record("a", 1, &[("b", 2)]), record("b", 2, &[("a", 1)])];
        let mut new = old.clone();
        new[0].fingerprint = 9;
        let (cone, _) = invalidation_cone(&old, &new);
        assert_eq!(cone, vec!["a", "b"]);
    }

    #[test]
    fn manifest_round_trips_including_paths_with_spaces() {
        let dir = std::env::temp_dir().join(format!("pnx-delta-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = manifest_path(&dir);
        let mut rows = vec![
            ManifestRow {
                path: "b dir/with space.pnx".into(),
                len: 7,
                mtime_ns: 123_456_789_000,
                key: 0xdead_beef,
            },
            ManifestRow { path: "a.pnx".into(), len: 0, mtime_ns: 0, key: u128::MAX },
        ];
        assert!(write_manifest(&path, &mut rows));
        let read = read_manifest(&path);
        assert_eq!(read.len(), 2);
        assert_eq!(read[0].path, "a.pnx", "rows come back sorted by path");
        assert_eq!(read[1].path, "b dir/with space.pnx");
        assert_eq!(read[1].key, 0xdead_beef);
        assert_eq!(read[1].mtime_ns, 123_456_789_000);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_foreign_manifests_read_as_empty() {
        let dir = std::env::temp_dir().join(format!("pnx-delta-hdr-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = manifest_path(&dir);
        assert!(read_manifest(&path).is_empty(), "missing file is empty, not an error");
        fs::write(&path, "some-other-format/9\n1 2 3 x\n").unwrap();
        assert!(read_manifest(&path).is_empty(), "foreign header rejects the whole file");
        fs::write(&path, "pnx-delta-manifest/1\nnot a row\n5 6 zz bad-key.pnx\n7 8 0f ok.pnx\n")
            .unwrap();
        let rows = read_manifest(&path);
        assert_eq!(rows.len(), 1, "malformed rows are skipped, good rows kept");
        assert_eq!(rows[0].path, "ok.pnx");
        assert_eq!(rows[0].key, 0xf);
        let _ = fs::remove_dir_all(&dir);
    }
}
