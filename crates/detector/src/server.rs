//! `pncheckd` — the detector as a persistent analysis service.
//!
//! Every one-shot `pncheck` run pays process startup, cache open, and
//! engine construction before it analyzes a single file. A [`Server`]
//! pays them once: it holds one [`BatchEngine`] per analyzer
//! configuration — each with its in-memory source/program fingerprint
//! tiers and (optionally) an open [`PersistentCache`] — across requests,
//! so a warm `analyze` of unchanged text runs zero parses and zero
//! analyses. Requests fan out onto the engine's worker pool with a
//! per-request `jobs` override.
//!
//! # The `pncheckd/1` protocol
//!
//! Newline-delimited JSON over stdin/stdout or a TCP connection. A
//! **request** is one line, a JSON object:
//!
//! ```text
//! {"op":"analyze","id":1,"paths":["examples/pnx"],"jobs":2}
//! {"op":"analyze","id":2,"source":"program p;\nfn main() {}\n","format":"json"}
//! {"op":"delta","id":3,"paths":["examples/pnx"],"changed":["examples/pnx/l4.pnx"]}
//! {"op":"stats","id":4}
//! {"op":"ping","id":5}
//! {"op":"shutdown","id":6}
//! ```
//!
//! A **response** is one header line — a compact JSON object that never
//! contains a raw newline — followed by exactly `bytes` bytes of
//! payload:
//!
//! ```text
//! {"schema":"pncheckd/1","id":1,"ok":true,"op":"analyze","exit":1,"bytes":1234}
//! ...1234 payload bytes...
//! ```
//!
//! The `analyze` payload **reuses the `pncheck` envelopes byte for
//! byte**: `format: "json"` (the default) is exactly `pncheck --format
//! json` over the same inputs, `"sarif"` is `--format sarif`, `"text"`
//! is the CLI's text report. `exit` mirrors the CLI's exit status (0
//! clean, 1 findings, 2 read/parse errors). The `delta` op rescans
//! paths incrementally through the engine's tracked index — unchanged
//! files (by stat, plus an optional client `changed` hint) are served
//! with zero reads and zero parses, the payload stays byte-identical
//! to a full `analyze` of the same paths, and the header carries the
//! invalidation-cone counters. Malformed, oversized, or
//! invalid requests get `"ok":false` with a structured `error` object —
//! never a dropped connection, and never interference with other
//! clients. Field values are validated by [`crate::cliopts`], the same
//! rules the CLI enforces.
//!
//! Robustness is the point of a daemon: request lines are bounded
//! ([`ServerConfig::max_request_bytes`], code `too-large`), idle
//! connections are reaped ([`ServerConfig::idle_timeout`], code
//! `idle-timeout`), and `shutdown` stops the accept loop, closes
//! lingering connections, and lets in-flight requests finish — cache
//! entries are written synchronously during each scan, so nothing is
//! lost.
//!
//! # Fleet mode
//!
//! The TCP transport is a readiness-driven event loop
//! (see [`crate::eventloop`]): connections are non-blocking, requests
//! queue fairly per client, and a worker pool drains the queue. Load
//! beyond [`ServerConfig::max_connections`] therefore degrades to
//! *queuing*, not rejection — `busy` is only returned at the hard
//! connection cap (8 × `max_connections`), and a client that pipelines
//! past its per-connection quota ([`ServerConfig::client_quota`]) gets
//! a `quota-exceeded` error for the excess request while the
//! connection survives. Replicas can split the fingerprint space
//! ([`ServerConfig::shard`], CLI `--shard K/N`) so each daemon keeps
//! only its slice warm, and the persistent tier can run on either
//! cache backend ([`ServerConfig::cache_backend`], CLI
//! `--cache-backend dir|indexed`).

use std::collections::HashMap;
use std::io::{self, BufRead, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::analysis::{Analyzer, AnalyzerConfig};
use crate::backend::BackendKind;
use crate::batch::{BatchEngine, BatchStats, ShardSpec};
use crate::cache::{config_tag, PersistentCache};
use crate::cliopts;
use crate::emit::{self, obj, FileRecord, JsonValue, OutputFormat};
use crate::eventloop::{FairQueue, Frame, LineFramer, Poller, PushError, TickPoller};
use crate::trace::TraceCollector;

/// The protocol name and version announced in every response header.
pub const PROTOCOL: &str = "pncheckd/1";

/// The stats payload schema.
pub const STATS_SCHEMA: &str = "pncheckd-stats/1";

// ---------------------------------------------------------------------
// A minimal, defensive JSON parser.
// ---------------------------------------------------------------------
//
// The workspace builds offline (no serde), and until now only ever
// *wrote* JSON. The daemon reads it from untrusted clients, so the
// parser is strict and bounded: recursion depth is capped, escapes are
// validated (including surrogate pairs), and any trailing garbage is an
// error. Input size is bounded upstream by the request-line limit.

/// Maximum nesting depth a request may use.
const MAX_JSON_DEPTH: usize = 64;

/// A parsed JSON value. Object fields keep their input order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonNode {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is an exact integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonNode>),
    /// An object, fields in input order.
    Obj(Vec<(String, JsonNode)>),
}

/// Parses one JSON document; the whole input must be consumed.
pub fn parse_json(text: &str) -> Result<JsonNode, String> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonNode, String> {
        if depth > MAX_JSON_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            None => Err("unexpected end of input".to_owned()),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonNode::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonNode::Bool(true)),
            Some(b'f') => self.literal("false", JsonNode::Bool(false)),
            Some(b'n') => self.literal("null", JsonNode::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(format!("unexpected character {:?} at byte {}", char::from(other), self.pos))
            }
        }
    }

    fn literal(&mut self, word: &str, node: JsonNode) -> Result<JsonNode, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(node)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonNode, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonNode::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonNode::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonNode, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonNode::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonNode::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_owned())?;
        let text = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_owned())?;
        let code =
            u16::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape {text:?}"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must
                                // follow with the low half.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err("unpaired surrogate".to_owned());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".to_owned());
                                }
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("unpaired surrogate".to_owned());
                            } else {
                                char::from_u32(u32::from(hi)).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos));
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim; the
                    // input is already a &str, so it is valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b >= 0x80 && (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonNode, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonNode::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonNode::Float)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

/// A validated request id: echoed verbatim in the response header.
#[derive(Debug, Clone, PartialEq)]
enum RequestId {
    None,
    Str(String),
    Int(u64),
}

impl RequestId {
    fn to_value(&self) -> JsonValue {
        match self {
            RequestId::None => JsonValue::Null,
            RequestId::Str(text) => emit::s(text.clone()),
            RequestId::Int(n) => JsonValue::U64(*n),
        }
    }
}

/// The analyze-request options after validation.
#[derive(Debug, Clone)]
struct AnalyzeRequest {
    /// Filesystem paths (dirs expand) — exclusive with `source`.
    paths: Vec<String>,
    /// Inline source text, analyzed under the path `-`.
    source: Option<String>,
    jobs: Option<usize>,
    config: AnalyzerConfig,
    format: OutputFormat,
    stats: bool,
    /// `op: "delta"`: incremental rescan against the engine's tracked
    /// index instead of a full scan. Requires `paths`.
    delta: bool,
    /// Client-named changed paths for a delta rescan (a hint — every
    /// path is still stat-checked, so a stale hint cannot go stale).
    changed: Option<Vec<String>>,
}

enum Request {
    Analyze(Box<AnalyzeRequest>),
    Ping,
    Stats,
    Shutdown,
}

/// A protocol-level failure: a stable machine-readable code plus a
/// human-oriented message.
struct RequestError {
    code: &'static str,
    message: String,
}

impl RequestError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        RequestError { code, message: message.into() }
    }
}

fn parse_request(
    node: JsonNode,
    base: &AnalyzerConfig,
) -> Result<(RequestId, Request), (RequestId, RequestError)> {
    let JsonNode::Obj(fields) = node else {
        return Err((
            RequestId::None,
            RequestError::new("bad-request", "request must be a JSON object"),
        ));
    };
    // The id is recovered first so even a rejected request echoes it.
    let id = match fields.iter().find(|(k, _)| k == "id").map(|(_, v)| v) {
        None | Some(JsonNode::Null) => RequestId::None,
        Some(JsonNode::Str(text)) => RequestId::Str(text.clone()),
        Some(JsonNode::Int(n)) if *n >= 0 => RequestId::Int(*n as u64),
        Some(_) => {
            return Err((
                RequestId::None,
                RequestError::new(
                    "bad-request",
                    "\"id\" must be a string or a non-negative integer",
                ),
            ));
        }
    };
    let fail = |code, message: String| (id.clone(), RequestError::new(code, message));

    let Some(JsonNode::Str(op)) = fields.iter().find(|(k, _)| k == "op").map(|(_, v)| v) else {
        return Err(fail("bad-request", "request needs a string \"op\" field".to_owned()));
    };
    let allowed: &[&str] = match op.as_str() {
        "analyze" => {
            &["op", "id", "paths", "source", "jobs", "min_severity", "disable", "format", "stats"]
        }
        "delta" => {
            &["op", "id", "paths", "changed", "jobs", "min_severity", "disable", "format", "stats"]
        }
        "ping" | "stats" | "shutdown" => &["op", "id"],
        other => {
            return Err(fail(
                "unknown-op",
                format!("unknown op {other:?} (analyze|delta|stats|ping|shutdown)"),
            ));
        }
    };
    for (key, _) in &fields {
        if !allowed.contains(&key.as_str()) {
            return Err(fail("bad-request", format!("unknown field {key:?} for op {op:?}")));
        }
    }
    let op = op.clone();
    match op.as_str() {
        "ping" => return Ok((id, Request::Ping)),
        "stats" => return Ok((id, Request::Stats)),
        "shutdown" => return Ok((id, Request::Shutdown)),
        _ => {}
    }

    // analyze: shared options are validated by the same `cliopts` rules
    // the CLI uses, so the daemon cannot drift from `pncheck`.
    let mut req = AnalyzeRequest {
        paths: Vec::new(),
        source: None,
        jobs: None,
        config: base.clone(),
        format: OutputFormat::Json,
        stats: false,
        delta: op == "delta",
        changed: None,
    };
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("op", _) | ("id", _) => {}
            ("paths", JsonNode::Arr(items)) => {
                for item in items {
                    match item {
                        JsonNode::Str(path) => req.paths.push(path),
                        _ => {
                            return Err(fail(
                                "bad-request",
                                "\"paths\" must be an array of strings".to_owned(),
                            ));
                        }
                    }
                }
            }
            ("source", JsonNode::Str(text)) => req.source = Some(text),
            ("changed", JsonNode::Arr(items)) => {
                let mut changed = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        JsonNode::Str(path) => changed.push(path),
                        _ => {
                            return Err(fail(
                                "bad-request",
                                "\"changed\" must be an array of strings".to_owned(),
                            ));
                        }
                    }
                }
                req.changed = Some(changed);
            }
            ("jobs", JsonNode::Int(n)) => match cliopts::parse_jobs(&n.to_string()) {
                Ok(n) => req.jobs = Some(n),
                Err(e) => return Err(fail("bad-value", e)),
            },
            ("min_severity", JsonNode::Str(level)) => match cliopts::parse_min_severity(&level) {
                Ok(s) => req.config.min_severity = s,
                Err(e) => return Err(fail("bad-value", e)),
            },
            ("disable", JsonNode::Arr(items)) => {
                for item in items {
                    match item {
                        JsonNode::Str(kind) => match cliopts::parse_disable(&kind) {
                            Ok(k) => req.config.disabled.push(k),
                            Err(e) => return Err(fail("bad-value", e)),
                        },
                        _ => {
                            return Err(fail(
                                "bad-request",
                                "\"disable\" must be an array of strings".to_owned(),
                            ));
                        }
                    }
                }
            }
            ("format", JsonNode::Str(value)) => match cliopts::parse_format(&value) {
                Ok(f) => req.format = f,
                Err(e) => return Err(fail("bad-value", e)),
            },
            ("stats", JsonNode::Bool(b)) => req.stats = b,
            (key, _) => {
                return Err(fail("bad-request", format!("field {key:?} has the wrong type")));
            }
        }
    }
    if req.delta {
        if req.paths.is_empty() {
            return Err(fail("bad-request", "delta needs a non-empty \"paths\"".to_owned()));
        }
    } else if req.paths.is_empty() == req.source.is_none() {
        return Err(fail(
            "bad-request",
            "analyze needs exactly one of \"paths\" or \"source\"".to_owned(),
        ));
    }
    Ok((id, Request::Analyze(Box::new(req))))
}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The analyzer configuration requests inherit (a request's
    /// `min_severity`/`disable` override it for that request only).
    pub base: AnalyzerConfig,
    /// Default worker count per scan; `None` = available parallelism.
    pub jobs: Option<usize>,
    /// Directory for the persistent cache tier; `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// On-disk layout of the persistent tier: one file per entry
    /// (`dir`, the default — safe to share between processes) or a
    /// single indexed store (`indexed` — one file, one writer).
    pub cache_backend: BackendKind,
    /// This replica's slice of the fingerprint space (`--shard K/N`);
    /// `None` serves (and warms) every key.
    pub shard: Option<ShardSpec>,
    /// Longest accepted request line, in bytes. Longer lines are
    /// discarded and answered with a `too-large` error.
    pub max_request_bytes: usize,
    /// The fair-queuing design point: connections beyond this queue
    /// instead of being rejected, and `busy` only appears at the hard
    /// cap of 8 × this value.
    pub max_connections: usize,
    /// Most requests one connection may have queued + in flight;
    /// the excess request is answered with `quota-exceeded` and the
    /// connection survives.
    pub client_quota: usize,
    /// How long a TCP connection may sit idle — nothing queued, nothing
    /// in flight — before the server closes it (`idle-timeout`).
    /// `None` = never.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            base: AnalyzerConfig::default(),
            jobs: None,
            cache_dir: None,
            cache_backend: BackendKind::Dir,
            shard: None,
            max_request_bytes: 4 * 1024 * 1024,
            max_connections: 32,
            client_quota: 16,
            idle_timeout: Some(Duration::from_secs(300)),
        }
    }
}

/// One response, framed and ready to write: a single header line plus
/// exactly the payload bytes the header advertises.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Compact single-line JSON header (no trailing newline).
    pub header: String,
    /// Payload, exactly `bytes` bytes as advertised in the header.
    pub payload: String,
    /// The request asked the server to shut down.
    pub shutdown: bool,
}

impl Reply {
    fn error(id: &RequestId, err: &RequestError) -> Reply {
        let header = obj(vec![
            ("schema", emit::s(PROTOCOL)),
            ("id", id.to_value()),
            ("ok", JsonValue::Bool(false)),
            (
                "error",
                obj(vec![("code", emit::s(err.code)), ("message", emit::s(err.message.clone()))]),
            ),
            ("bytes", JsonValue::U64(0)),
        ]);
        Reply { header: emit::render_compact(&header), payload: String::new(), shutdown: false }
    }

    /// Writes the framed reply: header line, newline, payload bytes.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(self.header.as_bytes())?;
        w.write_all(b"\n")?;
        w.write_all(self.payload.as_bytes())?;
        w.flush()
    }
}

/// The resident analysis service. See the [module docs](self) for the
/// protocol. Thread-safe: one `Server` handles any number of
/// connections concurrently, and all of them share the warm engines.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    /// One engine per analyzer configuration, keyed by its config tag —
    /// requests with equivalent options share one engine (and its warm
    /// caches); the cache tags guarantee an engine never serves a
    /// verdict computed under different rules.
    engines: Mutex<HashMap<u64, Arc<BatchEngine>>>,
    trace: TraceCollector,
    started: Instant,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    rejected_connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl Server {
    /// Builds the server and eagerly constructs the base-configuration
    /// engine, so an unusable `cache_dir` fails here — fast, with the
    /// underlying error — instead of degrading silently per request.
    pub fn new(config: ServerConfig) -> io::Result<Self> {
        let server = Server {
            config,
            engines: Mutex::new(HashMap::new()),
            trace: TraceCollector::new(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            rejected_connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        };
        let base = server.config.base.clone();
        server.engine_for(&base)?;
        Ok(server)
    }

    /// `true` once a `shutdown` request has been served.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The engine for `config`, building (and caching) it on first use.
    fn engine_for(&self, config: &AnalyzerConfig) -> io::Result<Arc<BatchEngine>> {
        let tag = config_tag(config);
        if let Some(engine) = self.engines.lock().expect("engine map poisoned").get(&tag) {
            return Ok(Arc::clone(engine));
        }
        let mut engine = BatchEngine::new(Analyzer::with_config(config.clone()));
        if let Some(jobs) = self.config.jobs {
            engine = engine.with_jobs(jobs);
        }
        if let Some(dir) = &self.config.cache_dir {
            // Entries are config-tagged, so every engine can share one
            // directory without ever serving a stale verdict.
            engine = engine.with_persistent_cache(PersistentCache::open_with(
                dir,
                config,
                self.config.cache_backend,
            )?);
        }
        if let Some(shard) = self.config.shard {
            engine = engine.with_shard(shard);
        }
        let engine = Arc::new(engine);
        self.engines
            .lock()
            .expect("engine map poisoned")
            .entry(tag)
            .or_insert_with(|| Arc::clone(&engine));
        Ok(engine)
    }

    /// Handles one request line and returns the framed reply. This is
    /// the whole protocol with the transport peeled off — the tests
    /// drive it directly, and every transport goes through it.
    pub fn handle_line(&self, line: &str) -> Reply {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.trace.count("server.requests", 1);
        let parsed = match parse_json(line) {
            Ok(node) => parse_request(node, &self.config.base),
            Err(e) => Err((
                RequestId::None,
                RequestError::new("bad-request", format!("invalid JSON: {e}")),
            )),
        };
        match parsed {
            Err((id, err)) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.trace.count("server.errors", 1);
                Reply::error(&id, &err)
            }
            Ok((id, Request::Ping)) => {
                self.trace.count("server.ping", 1);
                let header = obj(vec![
                    ("schema", emit::s(PROTOCOL)),
                    ("id", id.to_value()),
                    ("ok", JsonValue::Bool(true)),
                    ("op", emit::s("ping")),
                    ("event", emit::s("pong")),
                    ("bytes", JsonValue::U64(0)),
                ]);
                Reply {
                    header: emit::render_compact(&header),
                    payload: String::new(),
                    shutdown: false,
                }
            }
            Ok((id, Request::Stats)) => {
                self.trace.count("server.stats", 1);
                let payload = self.render_stats();
                let header = obj(vec![
                    ("schema", emit::s(PROTOCOL)),
                    ("id", id.to_value()),
                    ("ok", JsonValue::Bool(true)),
                    ("op", emit::s("stats")),
                    ("bytes", JsonValue::U64(payload.len() as u64)),
                ]);
                Reply { header: emit::render_compact(&header), payload, shutdown: false }
            }
            Ok((id, Request::Shutdown)) => {
                self.trace.count("server.shutdown", 1);
                self.shutdown.store(true, Ordering::SeqCst);
                let header = obj(vec![
                    ("schema", emit::s(PROTOCOL)),
                    ("id", id.to_value()),
                    ("ok", JsonValue::Bool(true)),
                    ("op", emit::s("shutdown")),
                    ("event", emit::s("shutting-down")),
                    ("bytes", JsonValue::U64(0)),
                ]);
                Reply {
                    header: emit::render_compact(&header),
                    payload: String::new(),
                    shutdown: true,
                }
            }
            Ok((id, Request::Analyze(req))) => {
                let pass = if req.delta { "server.delta" } else { "server.analyze" };
                self.trace.count(pass, 1);
                let start = Instant::now();
                let reply = match self.analyze(&id, &req) {
                    Ok(reply) => reply,
                    Err(err) => {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        self.trace.count("server.errors", 1);
                        Reply::error(&id, &err)
                    }
                };
                self.trace.record_pass(pass, start.elapsed());
                reply
            }
        }
    }

    /// Serves one `analyze` request: expand inputs exactly like the
    /// CLI, scan through the shared engine, and render the same
    /// envelope `pncheck` would print.
    fn analyze(&self, id: &RequestId, req: &AnalyzeRequest) -> Result<Reply, RequestError> {
        let engine = self.engine_for(&req.config).map_err(|e| {
            RequestError::new("engine-unavailable", format!("cannot open cache: {e}"))
        })?;
        if req.delta {
            return Ok(self.analyze_delta(id, req, &engine));
        }

        let mut file_errors: Vec<String> = Vec::new();
        let mut files: Vec<(String, String)> = Vec::new();
        if let Some(source) = &req.source {
            // Inline text is analyzed under the path `-`, matching
            // `pncheck -` fed the same bytes on stdin.
            files.push(("-".to_owned(), source.clone()));
        } else {
            let (paths, expand_errors) = cliopts::expand_inputs(&req.paths);
            file_errors.extend(expand_errors);
            for path in paths {
                match std::fs::read_to_string(&path) {
                    Ok(source) => files.push((path, source)),
                    Err(e) => file_errors.push(format!("{path}: {e}")),
                }
            }
        }

        let sources: Vec<&str> = files.iter().map(|(_, s)| s.as_str()).collect();
        let jobs = req.jobs.unwrap_or_else(|| engine.jobs());
        let (outcomes, scan_stats) = engine.scan_sources_with_stats_jobs(&sources, jobs);
        let mut had_parse_errors = false;
        let records: Vec<FileRecord> = files
            .iter()
            .zip(outcomes)
            .map(|((path, _), outcome)| {
                had_parse_errors |= !outcome.errors.is_empty();
                FileRecord { path: path.clone(), report: outcome.report, errors: outcome.errors }
            })
            .collect();

        self.trace.count("server.files", records.len() as u64);
        let findings: usize =
            records.iter().filter_map(|r| r.report.as_ref()).map(|r| r.findings.len()).sum();
        self.trace.count("server.findings", findings as u64);

        let payload = render_payload(req, &records, &scan_stats);
        let exit = exit_code(&records, !file_errors.is_empty() || had_parse_errors);

        let mut header_fields = vec![
            ("schema", emit::s(PROTOCOL)),
            ("id", id.to_value()),
            ("ok", JsonValue::Bool(true)),
            ("op", emit::s("analyze")),
            ("exit", JsonValue::U64(exit)),
        ];
        if !file_errors.is_empty() {
            header_fields.push((
                "file_errors",
                JsonValue::Arr(file_errors.iter().map(|e| emit::s(e.clone())).collect()),
            ));
        }
        header_fields.push(("bytes", JsonValue::U64(payload.len() as u64)));
        Ok(Reply { header: emit::render_compact(&obj(header_fields)), payload, shutdown: false })
    }

    /// Serves one `delta` request: an incremental rescan through the
    /// engine's tracked index. The payload is the same envelope a full
    /// `analyze` of the same paths would return, byte for byte; the
    /// header carries the invalidation counters.
    ///
    /// The first delta against a cold engine seeds the tracked index
    /// from the cache directory's manifest, so a fresh daemon picks up
    /// where a `pncheck --delta` run (or a previous daemon) left off.
    fn analyze_delta(&self, id: &RequestId, req: &AnalyzeRequest, engine: &BatchEngine) -> Reply {
        let (paths, mut file_errors) = cliopts::expand_inputs(&req.paths);
        if engine.tracked_files() == 0 {
            engine.seed_tracked_from_manifest();
        }
        let jobs = req.jobs.unwrap_or_else(|| engine.jobs());
        let (outcomes, scan_stats, delta) =
            engine.rescan_delta_jobs(&paths, req.changed.as_deref(), jobs);
        engine.save_tracked_manifest();

        let mut had_parse_errors = false;
        let mut records: Vec<FileRecord> = Vec::with_capacity(outcomes.len());
        for o in &outcomes {
            if let Some(e) = &o.read_error {
                // Same shape the full-scan path produces for an
                // unreadable file: named in `file_errors`, no record.
                file_errors.push(format!("{}: {e}", o.path));
                continue;
            }
            had_parse_errors |= !o.errors.is_empty();
            records.push(FileRecord {
                path: o.path.clone(),
                report: o.analysis.as_ref().map(|a| a.report.clone()),
                errors: o.errors.clone(),
            });
        }

        self.trace.count("server.files", records.len() as u64);
        let findings: usize =
            records.iter().filter_map(|r| r.report.as_ref()).map(|r| r.findings.len()).sum();
        self.trace.count("server.findings", findings as u64);
        self.trace.count("server.delta-changed", (delta.changed_files + delta.added_files) as u64);
        self.trace.count("server.delta-unchanged", delta.unchanged_files as u64);
        self.trace.count("server.delta-cone-functions", delta.cone_functions as u64);

        let payload = render_payload(req, &records, &scan_stats);
        let exit = exit_code(&records, !file_errors.is_empty() || had_parse_errors);

        let mut header_fields = vec![
            ("schema", emit::s(PROTOCOL)),
            ("id", id.to_value()),
            ("ok", JsonValue::Bool(true)),
            ("op", emit::s("delta")),
            ("exit", JsonValue::U64(exit)),
            (
                "delta",
                obj(vec![
                    ("tracked", JsonValue::U64(delta.tracked_files as u64)),
                    ("unchanged", JsonValue::U64(delta.unchanged_files as u64)),
                    ("changed", JsonValue::U64(delta.changed_files as u64)),
                    ("added", JsonValue::U64(delta.added_files as u64)),
                    ("removed", JsonValue::U64(delta.removed_files as u64)),
                    ("cone_functions", JsonValue::U64(delta.cone_functions as u64)),
                    ("changed_functions", JsonValue::U64(delta.changed_functions as u64)),
                    ("tracked_functions", JsonValue::U64(delta.tracked_functions as u64)),
                ]),
            ),
        ];
        if !file_errors.is_empty() {
            header_fields.push((
                "file_errors",
                JsonValue::Arr(file_errors.iter().map(|e| emit::s(e.clone())).collect()),
            ));
        }
        header_fields.push(("bytes", JsonValue::U64(payload.len() as u64)));
        Reply { header: emit::render_compact(&obj(header_fields)), payload, shutdown: false }
    }

    /// The `pncheckd-stats/1` payload: request counters, connection
    /// state, and the aggregated cache/parse counters of every engine.
    fn render_stats(&self) -> String {
        let engines = self.engines.lock().expect("engine map poisoned");
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut lookups = 0u64;
        let mut parses = 0u64;
        let mut entries = 0u64;
        let mut source_entries = 0u64;
        let (mut p_hits, mut p_misses, mut p_corrupt, mut p_stores) = (0u64, 0u64, 0u64, 0u64);
        let mut p_write_errors = 0u64;
        let mut tracked_files = 0u64;
        for engine in engines.values() {
            // One consistent snapshot per engine, so the aggregated
            // `hits + misses == lookups` invariant survives concurrent
            // requests — a stats reader can never see a torn pair.
            let c = engine.cache_stats();
            hits += c.hits;
            misses += c.misses;
            lookups += c.lookups;
            parses += c.parses;
            entries += c.entries as u64;
            source_entries += c.source_entries as u64;
            tracked_files += engine.tracked_files() as u64;
            if let Some(pc) = engine.persistent_cache() {
                let s = pc.stats();
                p_hits += s.hits;
                p_misses += s.misses;
                p_corrupt += s.corrupt;
                p_stores += s.stores;
                p_write_errors += s.write_errors;
            }
        }
        let engine_count = engines.len() as u64;
        drop(engines);

        let snap = self.trace.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let trace_counters: Vec<(String, JsonValue)> =
            snap.counters.iter().map(|(name, v)| (name.clone(), JsonValue::U64(*v))).collect();
        let payload = obj(vec![
            ("schema", emit::s(STATS_SCHEMA)),
            (
                "tool",
                obj(vec![
                    ("name", emit::s("pncheckd")),
                    ("version", emit::s(env!("CARGO_PKG_VERSION"))),
                ]),
            ),
            (
                "uptime_us",
                JsonValue::U64(self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64),
            ),
            (
                "requests",
                obj(vec![
                    ("total", JsonValue::U64(self.requests.load(Ordering::Relaxed))),
                    ("analyze", JsonValue::U64(counter("server.analyze"))),
                    ("delta", JsonValue::U64(counter("server.delta"))),
                    ("ping", JsonValue::U64(counter("server.ping"))),
                    ("stats", JsonValue::U64(counter("server.stats"))),
                    ("shutdown", JsonValue::U64(counter("server.shutdown"))),
                    ("errors", JsonValue::U64(self.errors.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "connections",
                obj(vec![
                    (
                        "active",
                        JsonValue::U64(self.active_connections.load(Ordering::Relaxed) as u64),
                    ),
                    ("rejected", JsonValue::U64(self.rejected_connections.load(Ordering::Relaxed))),
                    ("max", JsonValue::U64(self.config.max_connections as u64)),
                    ("hard_cap", JsonValue::U64(hard_connection_cap(&self.config) as u64)),
                    ("client_quota", JsonValue::U64(self.config.client_quota as u64)),
                ]),
            ),
            (
                "fleet",
                obj(vec![
                    (
                        "shard",
                        match self.config.shard {
                            Some(shard) => emit::s(format!("{}/{}", shard.index, shard.count)),
                            None => JsonValue::Null,
                        },
                    ),
                    ("cache_backend", emit::s(self.config.cache_backend.name())),
                ]),
            ),
            (
                "analysis",
                obj(vec![
                    ("engines", JsonValue::U64(engine_count)),
                    ("files", JsonValue::U64(counter("server.files"))),
                    ("findings", JsonValue::U64(counter("server.findings"))),
                    ("parses", JsonValue::U64(parses)),
                    ("fingerprint_hits", JsonValue::U64(hits)),
                    ("fingerprint_misses", JsonValue::U64(misses)),
                    ("fingerprint_lookups", JsonValue::U64(lookups)),
                    ("program_cache_entries", JsonValue::U64(entries)),
                    ("source_cache_entries", JsonValue::U64(source_entries)),
                    ("persistent_hits", JsonValue::U64(p_hits)),
                    ("persistent_misses", JsonValue::U64(p_misses)),
                    ("persistent_corrupt", JsonValue::U64(p_corrupt)),
                    ("persistent_stores", JsonValue::U64(p_stores)),
                    ("persistent_write_errors", JsonValue::U64(p_write_errors)),
                    ("tracked_files", JsonValue::U64(tracked_files)),
                ]),
            ),
            ("trace", JsonValue::Obj(trace_counters)),
        ]);
        emit::render_compact(&payload) + "\n"
    }

    /// Serves one connection: reads request lines, writes framed
    /// replies, until EOF, a `shutdown` request, the server shutting
    /// down, or an idle timeout. Used for stdio and per TCP socket.
    pub fn serve_connection<R: BufRead, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
    ) -> io::Result<()> {
        loop {
            if self.is_shutdown() {
                return Ok(());
            }
            match read_line_bounded(&mut reader, self.config.max_request_bytes) {
                Ok(LineRead::Eof) => return Ok(()),
                Ok(LineRead::TooLong) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    self.trace.count("server.errors", 1);
                    let err = RequestError::new(
                        "too-large",
                        format!("request exceeds the {}-byte limit", self.config.max_request_bytes),
                    );
                    Reply::error(&RequestId::None, &err).write_to(&mut writer)?;
                }
                Ok(LineRead::Line(bytes)) => {
                    let Ok(line) = std::str::from_utf8(&bytes) else {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        self.trace.count("server.errors", 1);
                        let err = RequestError::new("bad-request", "request is not valid UTF-8");
                        Reply::error(&RequestId::None, &err).write_to(&mut writer)?;
                        continue;
                    };
                    if line.trim().is_empty() {
                        continue; // blank lines keep NDJSON pipelines simple
                    }
                    let reply = self.handle_line(line);
                    reply.write_to(&mut writer)?;
                    if reply.shutdown {
                        return Ok(());
                    }
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    // Read timeout: tell the client why and close.
                    let err = RequestError::new("idle-timeout", "connection idle too long");
                    let _ = Reply::error(&RequestId::None, &err).write_to(&mut writer);
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Accepts and serves TCP connections until a `shutdown` request
    /// arrives on any of them.
    ///
    /// This is the readiness-driven event loop described in
    /// [`crate::eventloop`]: every socket is non-blocking, request
    /// lines queue in a [`FairQueue`] keyed by connection, and a small
    /// worker pool drains the queue through [`Server::handle_line`].
    /// Load beyond `max_connections` queues instead of being turned
    /// away; `busy` only appears at the hard cap (8 ×
    /// `max_connections`), and a client pipelining past its quota gets
    /// `quota-exceeded` for the excess request while the connection
    /// survives. Idle reaping only ever closes a connection with
    /// nothing queued and nothing in flight. On shutdown the loop
    /// stops accepting, lets in-flight requests finish, flushes every
    /// reply, and joins the workers before returning.
    pub fn serve_listener(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let hard_cap = hard_connection_cap(&self.config);
        let queue: Mutex<FairQueue<String>> = Mutex::new(FairQueue::new(self.config.client_quota));
        let job_ready = Condvar::new();
        let completions: Mutex<Vec<(u64, Reply)>> = Mutex::new(Vec::new());
        let poller = TickPoller::default();
        let workers_stop = AtomicBool::new(false);
        let lock_queue = || queue.lock().unwrap_or_else(|e| e.into_inner());

        thread::scope(|scope| -> io::Result<()> {
            let workers = thread::available_parallelism().map_or(1, |n| n.get()).clamp(1, 4);
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let mut guard = lock_queue();
                    let job = loop {
                        if let Some(job) = guard.pop() {
                            break Some(job);
                        }
                        if workers_stop.load(Ordering::SeqCst) {
                            break None;
                        }
                        guard = job_ready.wait(guard).unwrap_or_else(|e| e.into_inner());
                    };
                    drop(guard);
                    let Some((conn_id, line)) = job else { return };
                    let reply = self.handle_line(&line);
                    completions.lock().unwrap_or_else(|e| e.into_inner()).push((conn_id, reply));
                    poller.wake();
                });
            }

            let mut conns: HashMap<u64, Conn> = HashMap::new();
            let mut next_id: u64 = 0;
            loop {
                let draining = self.is_shutdown();

                // Accept everything waiting (up to the hard cap).
                while let (false, Ok((stream, _peer))) = (draining, listener.accept()) {
                    if conns.len() >= hard_cap {
                        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
                        self.trace.count("server.rejected-connections", 1);
                        let err = RequestError::new(
                            "busy",
                            format!("connection hard cap ({hard_cap}) reached; retry later"),
                        );
                        let mut stream = stream;
                        let _ = stream.set_nonblocking(false);
                        let _ = Reply::error(&RequestId::None, &err).write_to(&mut stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    next_id += 1;
                    self.active_connections.fetch_add(1, Ordering::SeqCst);
                    self.trace.count("server.connections", 1);
                    conns.insert(next_id, Conn::new(stream));
                }

                // Probe every socket; frame lines; enqueue fairly. New
                // requests are not picked up once shutdown started.
                let mut enqueued = false;
                if !draining {
                    for (&id, conn) in &mut conns {
                        for frame in conn.read_frames(self.config.max_request_bytes) {
                            enqueued |= self.enqueue_frame(id, frame, conn, &queue);
                        }
                    }
                }
                if enqueued {
                    job_ready.notify_all();
                }

                // Collect finished replies into their output buffers.
                for (conn_id, reply) in
                    completions.lock().unwrap_or_else(|e| e.into_inner()).drain(..)
                {
                    lock_queue().complete(conn_id);
                    if let Some(conn) = conns.get_mut(&conn_id) {
                        conn.last_activity = Instant::now();
                        conn.push_reply(&reply);
                        if reply.shutdown {
                            conn.closing = true;
                        }
                    }
                }

                // Flush as much as each socket accepts.
                for conn in conns.values_mut() {
                    conn.flush();
                }

                // Reap connections that are genuinely idle: nothing
                // queued, nothing in flight, nothing left to flush.
                if let Some(idle) = self.config.idle_timeout {
                    if !draining {
                        let guard = lock_queue();
                        for (&id, conn) in &mut conns {
                            if !conn.closing
                                && !conn.eof
                                && conn.flushed()
                                && guard.pending(id) == 0
                                && conn.last_activity.elapsed() >= idle
                            {
                                self.trace.count("server.idle-reaped", 1);
                                let err =
                                    RequestError::new("idle-timeout", "connection idle too long");
                                conn.push_reply(&Reply::error(&RequestId::None, &err));
                                conn.closing = true;
                            }
                        }
                    }
                }

                // Close what is done: dead sockets immediately, EOF and
                // closing connections once every owed reply is out.
                conns.retain(|&id, conn| {
                    let owed = !conn.flushed() || lock_queue().pending(id) > 0;
                    let done = conn.dead || ((conn.closing || conn.eof) && !owed);
                    if done {
                        let _ = conn.stream.shutdown(Shutdown::Both);
                        lock_queue().remove(id);
                        self.active_connections.fetch_sub(1, Ordering::SeqCst);
                    }
                    !done
                });

                if draining {
                    let all_flushed = conns.values().all(Conn::flushed);
                    if all_flushed && lock_queue().total_pending() == 0 {
                        break;
                    }
                }
                poller.wait(Duration::from_millis(5));
            }

            workers_stop.store(true, Ordering::SeqCst);
            job_ready.notify_all();
            for (_, conn) in conns.drain() {
                let _ = conn.stream.shutdown(Shutdown::Both);
                self.active_connections.fetch_sub(1, Ordering::SeqCst);
            }
            Ok(())
        })
    }

    /// Turns one framed line into either a queued job (true) or an
    /// immediate protocol error written to the connection (false).
    fn enqueue_frame(
        &self,
        id: u64,
        frame: Frame,
        conn: &mut Conn,
        queue: &Mutex<FairQueue<String>>,
    ) -> bool {
        let line = match frame {
            Frame::TooLong => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.trace.count("server.errors", 1);
                let err = RequestError::new(
                    "too-large",
                    format!("request exceeds the {}-byte limit", self.config.max_request_bytes),
                );
                conn.push_reply(&Reply::error(&RequestId::None, &err));
                return false;
            }
            Frame::Line(bytes) => match String::from_utf8(bytes) {
                Ok(line) => line,
                Err(_) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    self.trace.count("server.errors", 1);
                    let err = RequestError::new("bad-request", "request is not valid UTF-8");
                    conn.push_reply(&Reply::error(&RequestId::None, &err));
                    return false;
                }
            },
        };
        if line.trim().is_empty() {
            return false; // blank lines keep NDJSON pipelines simple
        }
        match queue.lock().unwrap_or_else(|e| e.into_inner()).push(id, line) {
            Ok(()) => true,
            Err(PushError::QuotaExceeded) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.trace.count("server.errors", 1);
                self.trace.count("server.quota-exceeded", 1);
                let err = RequestError::new(
                    "quota-exceeded",
                    format!(
                        "client already has {} requests queued or in flight; \
                         wait for replies before sending more",
                        self.config.client_quota
                    ),
                );
                conn.push_reply(&Reply::error(&RequestId::None, &err));
                false
            }
        }
    }
}

/// The `busy` threshold: fair queuing absorbs pressure up to eight
/// times the configured connection count before the daemon turns a
/// connection away outright.
fn hard_connection_cap(config: &ServerConfig) -> usize {
    config.max_connections.saturating_mul(8).max(1)
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    /// Bytes owed to the client; `written` of them are already out.
    outbuf: Vec<u8>,
    written: usize,
    last_activity: Instant,
    /// Peer closed its write side; serve what is pending, then close.
    eof: bool,
    /// Close once the output buffer drains (shutdown reply, idle reap).
    closing: bool,
    /// The socket failed; drop without further ceremony.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            framer: LineFramer::default(),
            outbuf: Vec::new(),
            written: 0,
            last_activity: Instant::now(),
            eof: false,
            closing: false,
            dead: false,
        }
    }

    /// Drains everything the socket has to offer right now and returns
    /// the complete frames it produced.
    fn read_frames(&mut self, max_request_bytes: usize) -> Vec<Frame> {
        let mut frames = Vec::new();
        if self.eof || self.dead || self.closing {
            return frames;
        }
        let mut buf = [0u8; 8192];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    if let Some(frame) = self.framer.finish() {
                        frames.push(frame);
                    }
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    frames.extend(self.framer.feed(&buf[..n], max_request_bytes));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        frames
    }

    /// Appends one framed reply to the output buffer.
    fn push_reply(&mut self, reply: &Reply) {
        self.outbuf.extend_from_slice(reply.header.as_bytes());
        self.outbuf.push(b'\n');
        self.outbuf.extend_from_slice(reply.payload.as_bytes());
    }

    /// Writes as much buffered output as the socket accepts.
    fn flush(&mut self) {
        while self.written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.written == self.outbuf.len() && !self.outbuf.is_empty() {
            self.outbuf.clear();
            self.written = 0;
        }
    }

    /// `true` when nothing buffered remains unwritten.
    fn flushed(&self) -> bool {
        self.written == self.outbuf.len()
    }
}

/// Renders the analyze/delta payload in the request's format — exactly
/// the envelope `pncheck` prints for the same records, so the two ops
/// (and the CLI) can never drift apart.
fn render_payload(req: &AnalyzeRequest, records: &[FileRecord], scan_stats: &BatchStats) -> String {
    match req.format {
        OutputFormat::Json => {
            let embedded = req.stats.then_some(scan_stats);
            emit::render_json(records, embedded, None)
        }
        OutputFormat::Sarif => emit::render_sarif(records),
        OutputFormat::Text => {
            use std::fmt::Write as _;
            let mut out = String::new();
            for record in records {
                let Some(report) = &record.report else { continue };
                let _ = write!(out, "{report}");
                for finding in &report.findings {
                    let _ = writeln!(out, "    hint: {}", finding.kind.suggestion());
                }
            }
            out
        }
    }
}

/// The CLI's exit rule: 2 on any read/parse error, 1 on warning-level
/// findings, 0 otherwise.
fn exit_code(records: &[FileRecord], had_errors: bool) -> u64 {
    let any_findings = records
        .iter()
        .filter_map(|r| r.report.as_ref())
        .any(|r| r.detected_at(crate::findings::Severity::Warning));
    if had_errors {
        2
    } else if any_findings {
        1
    } else {
        0
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line (newline stripped), or the final unterminated
    /// line before EOF.
    Line(Vec<u8>),
    /// The line exceeded the limit; it was discarded through its
    /// newline (or EOF) so the stream stays request-aligned.
    TooLong,
    /// The stream is exhausted.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes. Longer lines
/// are consumed and discarded — the connection survives, the request
/// does not.
fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> io::Result<LineRead> {
    let mut line = Vec::new();
    let mut discarding = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(match (discarding, line.is_empty()) {
                (true, _) => LineRead::TooLong,
                (false, true) => LineRead::Eof,
                (false, false) => LineRead::Line(line),
            });
        }
        let (chunk, found_newline) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (&buf[..i], true),
            None => (buf, false),
        };
        if !discarding {
            if line.len() + chunk.len() > max {
                discarding = true;
                line.clear();
            } else {
                line.extend_from_slice(chunk);
            }
        }
        let consumed = chunk.len() + usize::from(found_newline);
        reader.consume(consumed);
        if found_newline {
            return Ok(if discarding { LineRead::TooLong } else { LineRead::Line(line) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServerConfig::default()).expect("server builds")
    }

    fn header_fields(reply: &Reply) -> Vec<(String, JsonNode)> {
        match parse_json(&reply.header).expect("header parses") {
            JsonNode::Obj(fields) => fields,
            other => panic!("header is not an object: {other:?}"),
        }
    }

    fn field<'a>(fields: &'a [(String, JsonNode)], name: &str) -> &'a JsonNode {
        &fields.iter().find(|(k, _)| k == name).unwrap_or_else(|| panic!("no {name}")).1
    }

    #[test]
    fn json_parser_round_trips_scalars_and_structures() {
        assert_eq!(parse_json("null"), Ok(JsonNode::Null));
        assert_eq!(parse_json(" true "), Ok(JsonNode::Bool(true)));
        assert_eq!(parse_json("-42"), Ok(JsonNode::Int(-42)));
        assert_eq!(parse_json("2.5"), Ok(JsonNode::Float(2.5)));
        assert_eq!(parse_json("\"a\\nb\""), Ok(JsonNode::Str("a\nb".into())));
        assert_eq!(parse_json("\"\\u00e9\\ud83d\\ude00\""), Ok(JsonNode::Str("é😀".into())));
        assert_eq!(
            parse_json("[1, \"two\", {\"k\": null}]"),
            Ok(JsonNode::Arr(vec![
                JsonNode::Int(1),
                JsonNode::Str("two".into()),
                JsonNode::Obj(vec![("k".into(), JsonNode::Null)]),
            ]))
        );
    }

    #[test]
    fn json_parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "01e",
            "nul",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800\"",
            "1 2",
            "{\"a\":1} trailing",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_json(&deep).unwrap_err().contains("deep"));
    }

    #[test]
    fn ping_pongs_and_echoes_the_id() {
        let s = server();
        let reply = s.handle_line("{\"op\":\"ping\",\"id\":\"abc\"}");
        let fields = header_fields(&reply);
        assert_eq!(field(&fields, "id"), &JsonNode::Str("abc".into()));
        assert_eq!(field(&fields, "event"), &JsonNode::Str("pong".into()));
        assert_eq!(field(&fields, "bytes"), &JsonNode::Int(0));
        assert!(reply.payload.is_empty());
        let reply = s.handle_line("{\"op\":\"ping\",\"id\":7}");
        assert_eq!(field(&header_fields(&reply), "id"), &JsonNode::Int(7));
    }

    #[test]
    fn malformed_requests_get_structured_errors() {
        let s = server();
        for (line, code) in [
            ("not json at all", "bad-request"),
            ("[1,2,3]", "bad-request"),
            ("{\"id\":1}", "bad-request"),
            ("{\"op\":\"frobnicate\"}", "unknown-op"),
            ("{\"op\":\"ping\",\"extra\":1}", "bad-request"),
            ("{\"op\":\"analyze\"}", "bad-request"),
            ("{\"op\":\"analyze\",\"paths\":[\"a\"],\"source\":\"b\"}", "bad-request"),
            ("{\"op\":\"analyze\",\"paths\":[1]}", "bad-request"),
            ("{\"op\":\"analyze\",\"source\":\"x\",\"jobs\":0}", "bad-value"),
            ("{\"op\":\"analyze\",\"source\":\"x\",\"min_severity\":\"loud\"}", "bad-value"),
            ("{\"op\":\"analyze\",\"source\":\"x\",\"disable\":[\"nope\"]}", "bad-value"),
            ("{\"op\":\"analyze\",\"source\":\"x\",\"format\":\"yaml\"}", "bad-value"),
            ("{\"op\":\"ping\",\"id\":-3}", "bad-request"),
        ] {
            let reply = s.handle_line(line);
            let fields = header_fields(&reply);
            assert_eq!(field(&fields, "ok"), &JsonNode::Bool(false), "{line}");
            let JsonNode::Obj(err) = field(&fields, "error") else { panic!("no error: {line}") };
            assert_eq!(field(err, "code"), &JsonNode::Str(code.into()), "{line}");
        }
    }

    #[test]
    fn analyze_inline_source_matches_the_cli_envelope_shape() {
        let s = server();
        let vulnerable = "program demo;\nclass Student size 16;\nclass GradStudent size 32 : Student;\nfn main() {\n    local stud: Student;\n    local st: ptr;\n    st = new (&stud) GradStudent();\n}\n";
        let request = JsonNode::Obj(vec![
            ("op".into(), JsonNode::Str("analyze".into())),
            ("id".into(), JsonNode::Int(1)),
            ("source".into(), JsonNode::Str(vulnerable.into())),
        ]);
        let reply = s.handle_line(&node_to_line(&request));
        let fields = header_fields(&reply);
        assert_eq!(field(&fields, "ok"), &JsonNode::Bool(true));
        assert_eq!(field(&fields, "exit"), &JsonNode::Int(1));
        assert_eq!(
            field(&fields, "bytes"),
            &JsonNode::Int(reply.payload.len() as i64),
            "advertised bytes match the payload"
        );
        assert!(reply.payload.contains("\"schema\": \"pncheck-report/1\""), "{}", reply.payload);
        assert!(reply.payload.contains("\"path\": \"-\""), "{}", reply.payload);
        assert!(reply.payload.contains("pnx/oversized-placement"), "{}", reply.payload);
    }

    #[test]
    fn second_analyze_of_the_same_source_runs_zero_parses() {
        let s = server();
        let src = "program p;\nclass C size 8;\nfn main() {\n    local c: C;\n}\n";
        let line =
            format!("{{\"op\":\"analyze\",\"source\":{}}}", emit::render_compact(&emit::s(src)));
        s.handle_line(&line);
        let stats = s.handle_line("{\"op\":\"stats\"}");
        let before = stats.payload.clone();
        s.handle_line(&line);
        let stats = s.handle_line("{\"op\":\"stats\"}");
        let parses = |payload: &str| {
            let JsonNode::Obj(fields) = parse_json(payload.trim()).unwrap() else { panic!() };
            let JsonNode::Obj(analysis) = field(&fields, "analysis").clone() else { panic!() };
            match (field(&analysis, "parses"), field(&analysis, "fingerprint_hits")) {
                (JsonNode::Int(p), JsonNode::Int(h)) => (*p, *h),
                other => panic!("{other:?}"),
            }
        };
        let (parses_before, hits_before) = parses(&before);
        let (parses_after, hits_after) = parses(&stats.payload);
        assert_eq!(parses_after, parses_before, "warm re-analyze must not parse");
        assert_eq!(hits_after, hits_before + 1, "warm re-analyze is a fingerprint hit");
    }

    #[test]
    fn delta_requests_are_validated() {
        let s = server();
        for (line, code) in [
            ("{\"op\":\"delta\"}", "bad-request"),
            ("{\"op\":\"delta\",\"source\":\"x\"}", "bad-request"),
            ("{\"op\":\"delta\",\"paths\":[\"a\"],\"changed\":[1]}", "bad-request"),
            ("{\"op\":\"analyze\",\"source\":\"x\",\"changed\":[\"a\"]}", "bad-request"),
        ] {
            let reply = s.handle_line(line);
            let fields = header_fields(&reply);
            assert_eq!(field(&fields, "ok"), &JsonNode::Bool(false), "{line}");
            let JsonNode::Obj(err) = field(&fields, "error") else { panic!("no error: {line}") };
            assert_eq!(field(err, "code"), &JsonNode::Str(code.into()), "{line}");
        }
    }

    #[test]
    fn delta_payload_is_byte_identical_to_analyze_and_counts_the_cone() {
        let dir = std::env::temp_dir().join(format!("pnx-server-delta-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let vuln = "program demo;\nclass Student size 16;\nclass GradStudent size 32 : Student;\nfn main() {\n    local stud: Student;\n    local st: ptr;\n    st = new (&stud) GradStudent();\n}\n";
        let safe = "program demo;\nclass Student size 16;\nfn main() {\n    local stud: Student;\n    local st: ptr;\n    st = new (&stud) Student();\n}\n";
        std::fs::write(dir.join("a.pnx"), safe).unwrap();
        std::fs::write(dir.join("b.pnx"), safe.replace("program demo", "program other")).unwrap();
        let s = server();
        let path_list = format!("[\"{}\"]", dir.display());

        let full = s.handle_line(&format!("{{\"op\":\"analyze\",\"paths\":{path_list}}}"));
        let first = s.handle_line(&format!("{{\"op\":\"delta\",\"paths\":{path_list}}}"));
        assert_eq!(first.payload, full.payload, "cold delta equals a full scan");

        // Edit one file; the delta payload must equal a fresh analyze.
        std::fs::write(dir.join("a.pnx"), vuln).unwrap();
        let warm = s.handle_line(&format!("{{\"op\":\"delta\",\"paths\":{path_list}}}"));
        let reference = s.handle_line(&format!("{{\"op\":\"analyze\",\"paths\":{path_list}}}"));
        assert_eq!(warm.payload, reference.payload, "delta after edit equals a full scan");

        let fields = header_fields(&warm);
        assert_eq!(field(&fields, "op"), &JsonNode::Str("delta".into()));
        assert_eq!(field(&fields, "exit"), &JsonNode::Int(1), "the edit introduced a finding");
        let JsonNode::Obj(delta) = field(&fields, "delta") else { panic!("no delta counters") };
        assert_eq!(field(delta, "tracked"), &JsonNode::Int(2));
        assert_eq!(field(delta, "changed"), &JsonNode::Int(1));
        assert_eq!(field(delta, "unchanged"), &JsonNode::Int(1));

        // The stats envelope aggregates the delta counters.
        let stats = s.handle_line("{\"op\":\"stats\"}");
        let JsonNode::Obj(fields) = parse_json(stats.payload.trim()).unwrap() else { panic!() };
        let JsonNode::Obj(requests) = field(&fields, "requests").clone() else { panic!() };
        assert_eq!(field(&requests, "delta"), &JsonNode::Int(2));
        let JsonNode::Obj(analysis) = field(&fields, "analysis").clone() else { panic!() };
        assert_eq!(field(&analysis, "tracked_files"), &JsonNode::Int(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_names_unreadable_files_in_file_errors() {
        let dir = std::env::temp_dir().join(format!("pnx-server-delta-err-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("x.pnx");
        std::fs::write(&file, "program x;\nfn main() {}\n").unwrap();
        let s = server();
        // Name the file directly, so expansion still yields the path
        // after deletion and the read error surfaces per-file.
        let path_list = format!("[\"{}\"]", file.display());
        s.handle_line(&format!("{{\"op\":\"delta\",\"paths\":{path_list}}}"));
        std::fs::remove_file(&file).unwrap();
        let reply = s.handle_line(&format!("{{\"op\":\"delta\",\"paths\":{path_list}}}"));
        let fields = header_fields(&reply);
        assert_eq!(field(&fields, "exit"), &JsonNode::Int(2), "{}", reply.header);
        let JsonNode::Arr(errs) = field(&fields, "file_errors") else {
            panic!("no file_errors: {}", reply.header)
        };
        assert_eq!(errs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_flips_the_flag_and_reports_it() {
        let s = server();
        let reply = s.handle_line("{\"op\":\"shutdown\",\"id\":9}");
        assert!(reply.shutdown);
        assert!(s.is_shutdown());
        assert!(reply.header.contains("\"event\":\"shutting-down\""), "{}", reply.header);
    }

    #[test]
    fn serve_connection_frames_replies_and_survives_garbage() {
        let s = server();
        let input = b"{\"op\":\"ping\",\"id\":1}\n\x00\xff\xfe garbage \xf3\n\n{\"op\":\"ping\",\"id\":2}\n";
        let mut out = Vec::new();
        s.serve_connection(&input[..], &mut out).unwrap();
        let text = String::from_utf8(out).expect("responses are UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"id\":1"), "{text}");
        assert!(lines[1].contains("\"ok\":false"), "{text}");
        assert!(lines[1].contains("not valid UTF-8"), "{text}");
        assert!(lines[2].contains("\"id\":2"), "{text}");
    }

    #[test]
    fn oversized_lines_are_rejected_but_the_connection_survives() {
        let s =
            Server::new(ServerConfig { max_request_bytes: 64, ..ServerConfig::default() }).unwrap();
        let huge = "x".repeat(1000);
        let input =
            format!("{{\"op\":\"ping\",\"junk\":\"{huge}\"}}\n{{\"op\":\"ping\",\"id\":2}}\n");
        let mut out = Vec::new();
        s.serve_connection(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("too-large"), "{text}");
        assert!(lines[1].contains("\"id\":2"), "{text}");
    }

    #[test]
    fn bounded_reader_handles_eof_without_newline() {
        let mut input: &[u8] = b"{\"op\":\"ping\"}";
        match read_line_bounded(&mut input, 1024).unwrap() {
            LineRead::Line(line) => assert_eq!(line, b"{\"op\":\"ping\"}"),
            other => panic!("{:?}", std::mem::discriminant(&other)),
        }
    }

    /// Renders a JsonNode back to compact JSON (tests only).
    fn node_to_line(node: &JsonNode) -> String {
        fn conv(node: &JsonNode) -> JsonValue {
            match node {
                JsonNode::Null => JsonValue::Null,
                JsonNode::Bool(b) => JsonValue::Bool(*b),
                JsonNode::Int(n) => {
                    if *n >= 0 {
                        JsonValue::U64(*n as u64)
                    } else {
                        JsonValue::F64(*n as f64)
                    }
                }
                JsonNode::Float(x) => JsonValue::F64(*x),
                JsonNode::Str(text) => JsonValue::Str(text.clone()),
                JsonNode::Arr(items) => JsonValue::Arr(items.iter().map(conv).collect()),
                JsonNode::Obj(fields) => {
                    JsonValue::Obj(fields.iter().map(|(k, v)| (k.clone(), conv(v))).collect())
                }
            }
        }
        emit::render_compact(&conv(node))
    }
}
