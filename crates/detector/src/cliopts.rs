//! Shared option parsing and input collection for the detector's front
//! ends: `pncheck`, the `pncheckd` daemon, and `xcheck`.
//!
//! All three accept the same scan options (`--jobs`, `--min-severity`,
//! `--disable`, output format) and the same PATH semantics (a `.pnx`
//! file, or a directory scanned recursively in sorted order, with
//! canonicalize-and-dedup). Centralizing the value parsing here means a
//! request to the daemon is validated by *exactly* the rules the CLI
//! enforces — the two cannot drift, and the protocol tests assert the
//! error messages byte-for-byte against the CLI's.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::analysis::AnalyzerConfig;
use crate::backend::BackendKind;
use crate::batch::ShardSpec;
use crate::emit::OutputFormat;
use crate::findings::{FindingKind, Severity};

/// Parses a worker count: a positive integer.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err("--jobs needs a positive integer".to_owned()),
    }
}

/// Parses a reporting threshold (`info|warning|error`).
pub fn parse_min_severity(value: &str) -> Result<Severity, String> {
    value.parse::<Severity>()
}

/// Parses one finding kind to disable.
pub fn parse_disable(value: &str) -> Result<FindingKind, String> {
    FindingKind::from_name(value).ok_or_else(|| format!("unknown finding kind {value:?}"))
}

/// Parses an output format (`text|json|sarif`).
pub fn parse_format(value: &str) -> Result<OutputFormat, String> {
    value.parse::<OutputFormat>()
}

/// Parses a cache backend selection (`dir|indexed`).
pub fn parse_cache_backend(value: &str) -> Result<BackendKind, String> {
    BackendKind::parse(value)
}

/// Parses a shard slice `K/N`: replica K (zero-based) of N, so `0/2`
/// and `1/2` together cover the fingerprint space.
pub fn parse_shard(value: &str) -> Result<ShardSpec, String> {
    let bad = || format!("--shard needs K/N with K < N (got {value:?})");
    let (index, count) = value.split_once('/').ok_or_else(bad)?;
    let index: u32 = index.parse().map_err(|_| bad())?;
    let count: u32 = count.parse().map_err(|_| bad())?;
    if count == 0 || index >= count {
        return Err(bad());
    }
    Ok(ShardSpec { index, count })
}

/// The options every detector front end shares, with their defaults.
#[derive(Debug, Clone, Default)]
pub struct CommonOpts {
    /// `--jobs N`; `None` means the engine's default (available
    /// parallelism).
    pub jobs: Option<usize>,
    /// Output format selection.
    pub format: OutputFormat,
    /// Analyzer configuration (`--min-severity`, `--disable`,
    /// `--no-summaries`).
    pub config: AnalyzerConfig,
}

impl CommonOpts {
    /// Tries to consume `arg` (pulling any value from `rest`) as one of
    /// the shared flags.
    ///
    /// Returns `None` when the flag is not a shared one (the caller
    /// handles it), `Some(Ok(()))` when it was applied, and
    /// `Some(Err(message))` when it was recognized but its value was
    /// missing or invalid — the caller prints the message (prefixed
    /// with its own name) and exits 2.
    pub fn accept(
        &mut self,
        arg: &str,
        rest: &mut dyn Iterator<Item = String>,
    ) -> Option<Result<(), String>> {
        match arg {
            "--jobs" => Some(match rest.next() {
                Some(v) => parse_jobs(&v).map(|n| self.jobs = Some(n)),
                None => Err("--jobs needs a positive integer".to_owned()),
            }),
            "--min-severity" => Some(match rest.next() {
                Some(v) => parse_min_severity(&v).map(|s| self.config.min_severity = s),
                None => Err("--min-severity needs a value".to_owned()),
            }),
            "--disable" => Some(match rest.next() {
                Some(v) => parse_disable(&v).map(|k| self.config.disabled.push(k)),
                None => Err("--disable needs a finding kind".to_owned()),
            }),
            "--format" => Some(match rest.next() {
                Some(v) => parse_format(&v).map(|f| self.format = f),
                None => Err("--format needs a value (text|json|sarif)".to_owned()),
            }),
            "--no-summaries" => {
                self.config.use_summaries = false;
                Some(Ok(()))
            }
            _ => None,
        }
    }
}

/// Recursively collects `*.pnx` files under `dir`, sorted by path so
/// the scan order (and therefore the output order) is deterministic.
pub fn collect_pnx(dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<std::fs::DirEntry> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_pnx(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "pnx") {
            out.push(path.to_string_lossy().into_owned());
        }
    }
    Ok(())
}

/// Expands directories to their sorted `*.pnx` contents, then
/// canonicalizes and deduplicates, so a file named both directly and
/// via an enclosing directory scans once. `-` (stdin) passes through
/// untouched. Returns the paths and one `"{input}: {error}"` line per
/// directory that could not be read.
pub fn expand_inputs(inputs: &[String]) -> (Vec<String>, Vec<String>) {
    let mut errors = Vec::new();
    let mut paths = Vec::new();
    for input in inputs {
        if input != "-" && Path::new(input).is_dir() {
            if let Err(e) = collect_pnx(Path::new(input), &mut paths) {
                errors.push(format!("{input}: {e}"));
            }
        } else {
            paths.push(input.clone());
        }
    }
    let mut seen: HashSet<PathBuf> = HashSet::new();
    paths.retain(|path| {
        let key = if path == "-" {
            PathBuf::from("-")
        } else {
            std::fs::canonicalize(path).unwrap_or_else(|_| PathBuf::from(path))
        };
        seen.insert(key)
    });
    (paths, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_parsers_accept_valid_and_reject_invalid() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("many").is_err());
        assert_eq!(parse_min_severity("warning"), Ok(Severity::Warning));
        assert!(parse_min_severity("loud").unwrap_err().contains("unknown severity"));
        assert_eq!(parse_disable("oversized-placement"), Ok(FindingKind::OversizedPlacement));
        assert!(parse_disable("bogus").unwrap_err().contains("unknown finding kind"));
        assert_eq!(parse_format("sarif"), Ok(OutputFormat::Sarif));
        assert!(parse_format("yaml").unwrap_err().contains("unknown format"));
        assert_eq!(parse_cache_backend("indexed"), Ok(BackendKind::Indexed));
        assert!(parse_cache_backend("tape").unwrap_err().contains("unknown cache backend"));
    }

    #[test]
    fn shard_parser_requires_k_strictly_below_n() {
        assert_eq!(parse_shard("0/2"), Ok(ShardSpec { index: 0, count: 2 }));
        assert_eq!(parse_shard("3/8"), Ok(ShardSpec { index: 3, count: 8 }));
        for bad in ["2/2", "5/4", "0/0", "1", "a/b", "-1/2", "1/", "/2", ""] {
            assert!(parse_shard(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn accept_consumes_shared_flags_and_ignores_others() {
        let mut opts = CommonOpts::default();
        let mut rest = vec!["2".to_owned(), "error".to_owned()].into_iter();
        assert_eq!(opts.accept("--jobs", &mut rest), Some(Ok(())));
        assert_eq!(opts.accept("--min-severity", &mut rest), Some(Ok(())));
        assert_eq!(opts.accept("--no-summaries", &mut rest), Some(Ok(())));
        assert_eq!(opts.accept("--baseline", &mut rest), None);
        assert_eq!(opts.jobs, Some(2));
        assert_eq!(opts.config.min_severity, Severity::Error);
        assert!(!opts.config.use_summaries);
    }

    #[test]
    fn accept_reports_missing_and_bad_values() {
        let mut opts = CommonOpts::default();
        let mut empty = Vec::new().into_iter();
        let err = opts.accept("--jobs", &mut empty).unwrap().unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let mut bad = vec!["nope".to_owned()].into_iter();
        let err = opts.accept("--format", &mut bad).unwrap().unwrap_err();
        assert!(err.contains("unknown format"), "{err}");
    }

    #[test]
    fn expand_inputs_dedups_and_passes_stdin_through() {
        let dir = std::env::temp_dir().join(format!("pnx-cliopts-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("a.pnx"), "program a;\n").unwrap();
        std::fs::write(dir.join("sub/b.pnx"), "program b;\n").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let direct = dir.join("a.pnx").to_string_lossy().into_owned();
        let inputs =
            vec![dir.to_string_lossy().into_owned(), direct.clone(), "-".to_owned(), direct];
        let (paths, errors) = expand_inputs(&inputs);
        assert!(errors.is_empty(), "{errors:?}");
        // a.pnx once (dir + direct + repeat), b.pnx once, stdin once.
        assert_eq!(paths.len(), 3, "{paths:?}");
        assert!(paths.contains(&"-".to_owned()));
        assert!(paths.iter().filter(|p| p.ends_with("a.pnx")).count() == 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
