//! The "traditional tools" baseline.
//!
//! §1 of the paper claims that no existing buffer-overflow tool (Coverity,
//! Fortify, ITS4, Flawfinder, …) detects placement-new overflows, because
//! the vulnerability class is simply not in their pattern set. This module
//! is the measurable stand-in for those tools: a checker that knows the
//! *classic* patterns — out-of-bounds string copies into lexically
//! declared arrays, with constant or obviously tainted lengths — and has
//! **no concept of placement new**. Running it beside the
//! [`Analyzer`](crate::Analyzer) over the same corpus reproduces the
//! coverage gap as a table (experiment E21).

use std::collections::HashMap;

use crate::findings::{Finding, FindingKind, Report, Severity};
use crate::ir::{Expr, Program, Stmt, Ty, VarId};

/// A classic-overflow checker, deliberately blind to placement new.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineChecker;

impl BaselineChecker {
    /// Creates the checker.
    pub fn new() -> Self {
        BaselineChecker
    }

    /// Scans a program for classic overflow patterns only.
    pub fn analyze(&self, program: &Program) -> Report {
        let mut report = Report::new(&program.name);
        for f in &program.functions {
            let mut consts: HashMap<VarId, i64> = HashMap::new();
            self.walk(program, &f.body, &mut consts, &mut report);
        }
        report
    }

    fn eval(&self, p: &Program, e: &Expr, consts: &HashMap<VarId, i64>) -> Option<i64> {
        match e {
            Expr::Const(c) => Some(*c),
            Expr::SizeOf(class) => p.sizeof(class).map(|s| s as i64),
            Expr::Var(v) => consts.get(v).copied(),
            Expr::BinOp(op, a, b) => {
                let a = self.eval(p, a, consts)?;
                let b = self.eval(p, b, consts)?;
                Some(match op {
                    crate::ir::Op::Add => a.checked_add(b)?,
                    crate::ir::Op::Sub => a.checked_sub(b)?,
                    crate::ir::Op::Mul => a.checked_mul(b)?,
                })
            }
            _ => None,
        }
    }

    fn walk(
        &self,
        p: &Program,
        body: &[Stmt],
        consts: &mut HashMap<VarId, i64>,
        report: &mut Report,
    ) {
        for stmt in body {
            match stmt {
                Stmt::Assign { dst, src, .. } => match self.eval(p, src, consts) {
                    Some(v) => {
                        consts.insert(*dst, v);
                    }
                    None => {
                        consts.remove(dst);
                    }
                },
                Stmt::ReadInput { dst, .. } => {
                    consts.remove(dst);
                }
                Stmt::Strncpy { site, dst, len, .. } => {
                    // The one pattern traditional tools know: a copy longer
                    // than the *lexically declared* destination array.
                    // Placement-derived pointers have no lexical size, so
                    // everything the paper builds sails through.
                    let declared = match &p.var(*dst).ty {
                        Ty::CharArray(Some(n)) => Some(u64::from(*n)),
                        _ => None,
                    };
                    let len_val = self.eval(p, len, consts).and_then(|v| u64::try_from(v).ok());
                    if let (Some(declared), Some(len_val)) = (declared, len_val) {
                        if len_val > declared {
                            report.findings.push(Finding {
                                kind: FindingKind::ClassicOverflow,
                                severity: Severity::Error,
                                site: site.clone(),
                                message: format!(
                                    "strncpy of {len_val} bytes into char[{declared}]"
                                ),
                                width: Some(len_val - declared),
                            });
                        }
                    }
                }
                Stmt::If { then_body, else_body, .. } => {
                    let mut t = consts.clone();
                    let mut e = consts.clone();
                    self.walk(p, then_body, &mut t, report);
                    self.walk(p, else_body, &mut e, report);
                    consts.retain(|k, v| t.get(k) == Some(v) && e.get(k) == Some(v));
                }
                Stmt::While { body, .. } => {
                    let mut b = consts.clone();
                    self.walk(p, body, &mut b, report);
                    consts.retain(|k, v| b.get(k) == Some(v));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::Analyzer;

    #[test]
    fn catches_the_classic_overflow() {
        let mut p = ProgramBuilder::new("classic");
        let mut f = p.function("main");
        let buf = f.local("buf", Ty::CharArray(Some(16)));
        let input = f.param("input", Ty::Ptr, true);
        f.strncpy(buf, Expr::Var(input), Expr::Const(64));
        f.finish();
        let r = BaselineChecker::new().analyze(&p.build());
        assert_eq!(r.of_kind(FindingKind::ClassicOverflow).len(), 1);
    }

    #[test]
    fn respects_correct_bounds() {
        let mut p = ProgramBuilder::new("fine");
        let mut f = p.function("main");
        let buf = f.local("buf", Ty::CharArray(Some(64)));
        let input = f.param("input", Ty::Ptr, true);
        f.strncpy(buf, Expr::Var(input), Expr::Const(64));
        f.finish();
        let r = BaselineChecker::new().analyze(&p.build());
        assert!(!r.detected());
    }

    #[test]
    fn blind_to_placement_new_overflows() {
        // The paper's central coverage claim, in miniature: the analyzer
        // sees the object overflow, the baseline sees nothing.
        let mut p = ProgramBuilder::new("listing-4");
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let prog = p.build();

        assert!(!BaselineChecker::new().analyze(&prog).detected());
        assert!(Analyzer::new().analyze(&prog).detected());
    }

    #[test]
    fn blind_to_the_two_step_attack() {
        // The strncpy length is a variable the baseline cannot bound, and
        // the destination is a placement pointer with no lexical size.
        let mut p = ProgramBuilder::new("listing-19");
        let mut f = p.function("f");
        let uname = f.param("uname", Ty::Ptr, true);
        let pool = f.local("pool", Ty::CharArray(Some(72)));
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.strncpy(buf, Expr::Var(uname), Expr::mul(Expr::Var(n), Expr::Const(9)));
        f.finish();
        let r = BaselineChecker::new().analyze(&p.build());
        assert!(!r.detected());
    }
}
