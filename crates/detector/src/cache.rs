//! The persistent (on-disk) analysis cache behind `pncheck --cache-dir`.
//!
//! A [`PersistentCache`] is a content-addressed store: the key is a
//! 128-bit FNV-1a fingerprint of the **raw source bytes**
//! ([`source_fingerprint`]), so a warm hit skips the parser *and* the
//! analyzer. Each entry is one binary file `<dir>/<key in hex>.pnc`
//! holding the file's [`Report`] (exact round-trip, spans included) and
//! the per-function [`FunctionSummaryRecord`]s of its analysis.
//!
//! The format is defensive where a cross-run cache has to be:
//!
//! * an 8-byte magic plus a schema version — entries written by an
//!   incompatible binary are treated as misses, not errors;
//! * an analyzer-config tag — a cache populated under different
//!   `--min-severity`/`--disable`/`--no-summaries` flags (or a detector
//!   with a different rule set) never serves stale verdicts;
//! * a checksum over the payload plus strict bounds-checked decoding —
//!   torn writes and bit rot surface as [`CacheLookup::Corrupt`], which
//!   callers degrade to a re-analysis (plus a warning), never a crash or
//!   a wrong report;
//! * writes are atomic-by-construction in every backend (unique temp
//!   file + `rename`, or checksummed append), so a concurrent reader
//!   sees either the old entry or the new one, never a half-written
//!   file.
//!
//! Byte *storage* is pluggable: a [`CacheBackend`] moves opaque entry
//! and manifest bytes, while everything semantic — encoding, checksum,
//! schema/config staleness, corrupt accounting — stays here, so every
//! backend inherits the same invariants. See [`crate::backend`] for
//! the two layouts (`dir`, `indexed`).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::analysis::AnalyzerConfig;
use crate::backend::{BackendKind, CacheBackend, DirBackend, IndexedBackend};
use crate::findings::{Finding, FindingKind, Report, Severity};
use crate::ir::{Site, Span};
use crate::summary::FunctionSummaryRecord;

const MAGIC: &[u8; 8] = b"PNXCACHE";
/// Bumped whenever the payload layout or the meaning of any field
/// changes; old entries then read as misses and get rewritten. Version
/// 2 added the per-function content fingerprint and the callee
/// dependency list to every summary record. Version 3 switched the
/// analyzer's value facts from the boolean-era upper-bound tracker to
/// the interval lattice (different findings for the same text) and
/// added the worst-case overflow width to every serialized finding —
/// v2 entries must decode as misses, never as servable results.
pub const SCHEMA_VERSION: u32 = 3;

/// 128-bit FNV-1a over raw bytes.
pub(crate) fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u128::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// 64-bit FNV-1a over raw bytes — the per-function content fingerprint
/// behind [`FunctionSummaryRecord::fingerprint`]. 64 bits suffice here:
/// the fingerprint distinguishes "same function text" from "edited",
/// never addresses a corpus-wide store (that is the 128-bit key's job).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The cache key of a source file: a 128-bit FNV-1a fingerprint of the
/// raw text. Any edit — even whitespace — changes the key, which is the
/// point: a hit must mean "this exact text was analyzed before".
pub fn source_fingerprint(source: &str) -> u128 {
    fnv128(source.as_bytes())
}

/// Everything one cache entry stores about one analyzed file.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnalysis {
    /// The full report, spans included.
    pub report: Report,
    /// Per-function summary digests from the analysis.
    pub summaries: Vec<FunctionSummaryRecord>,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A valid entry for this key, schema, and analyzer config.
    Hit(CachedAnalysis),
    /// No entry (or one written by a different schema/config — stale,
    /// not broken).
    Miss,
    /// An entry exists but failed the checksum or decoding: the caller
    /// should warn and re-analyze.
    Corrupt,
}

/// A store of content-addressed analysis results shared across
/// `pncheck` runs. Thread-safe: backends synchronize their own byte
/// storage, and counters are atomics.
#[derive(Debug)]
pub struct PersistentCache {
    dir: PathBuf,
    backend: Box<dyn CacheBackend>,
    config_tag: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    stores: AtomicU64,
    write_errors: AtomicU64,
}

/// Lifetime counters of one [`PersistentCache`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistentCacheStats {
    /// Probes served from disk.
    pub hits: u64,
    /// Probes with no usable entry.
    pub misses: u64,
    /// Probes that found a broken entry (counted in `misses` too).
    pub corrupt: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries that could not be written (full disk, directory removed
    /// mid-run, permission change). Each failed `put` degrades that one
    /// file to uncached — the scan still succeeds — but a silently
    /// dying cache looks exactly like a working one, so the count is
    /// surfaced in `--stats` and the daemon's stats envelope.
    pub write_errors: u64,
}

/// Tag folding everything about the analyzer that changes its output:
/// the reporting threshold, the disabled kinds, the interprocedural
/// strategy flag, and the rule inventory itself (so adding a finding
/// kind invalidates old entries). Also the daemon's engine-map key, so
/// two requests with equivalent options always share one engine.
pub(crate) fn config_tag(config: &AnalyzerConfig) -> u64 {
    let mut canon = format!(
        "v{}|sev:{}|sum:{}|rules:{}",
        SCHEMA_VERSION,
        config.min_severity,
        config.use_summaries,
        FindingKind::ALL.len()
    );
    let mut disabled: Vec<&str> = config.disabled.iter().map(|k| k.name()).collect();
    disabled.sort_unstable();
    for d in disabled {
        canon.push('|');
        canon.push_str(d);
    }
    (fnv128(canon.as_bytes()) & u128::from(u64::MAX)) as u64
}

impl PersistentCache {
    /// Opens (creating if needed) the cache directory with the default
    /// `dir` backend, bound to the analyzer configuration whose
    /// results it stores.
    ///
    /// The store is probed for writability up front: a cache that
    /// could never store an entry (read-only directory, permission
    /// mismatch) fails here with the underlying error instead of
    /// silently degrading every later `put`, so callers can fail fast
    /// with a clear message.
    pub fn open(dir: &Path, config: &AnalyzerConfig) -> io::Result<Self> {
        Self::open_with(dir, config, BackendKind::Dir)
    }

    /// Like [`PersistentCache::open`] but with an explicit storage
    /// backend (`--cache-backend dir|indexed`).
    pub fn open_with(dir: &Path, config: &AnalyzerConfig, kind: BackendKind) -> io::Result<Self> {
        let backend: Box<dyn CacheBackend> = match kind {
            BackendKind::Dir => Box::new(DirBackend::open(dir)?),
            BackendKind::Indexed => Box::new(IndexedBackend::open(dir)?),
        };
        Ok(PersistentCache {
            dir: dir.to_path_buf(),
            backend,
            config_tag: config_tag(config),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        })
    }

    /// Probes the cache for `key`.
    pub fn get(&self, key: u128) -> CacheLookup {
        let bytes = match self.backend.load(key) {
            Some(b) => b,
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return CacheLookup::Miss;
            }
        };
        match decode_entry(&bytes, key, self.config_tag) {
            Decoded::Entry(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Hit(entry)
            }
            Decoded::Stale => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Miss
            }
            Decoded::Broken => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Corrupt
            }
        }
    }

    /// Stores an entry for `key`. Best-effort: a full disk or a
    /// read-only directory downgrades the cache, it does not fail the
    /// scan — but every failed write is counted
    /// ([`PersistentCacheStats::write_errors`]) so the degradation is
    /// visible instead of silent.
    pub fn put(&self, key: u128, entry: &CachedAnalysis) {
        let payload = encode_payload(key, entry);
        let mut bytes = Vec::with_capacity(payload.len() + 36);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        bytes.extend_from_slice(&self.config_tag.to_le_bytes());
        bytes.extend_from_slice(&fnv128(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        match self.backend.store(key, &bytes) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The delta manifest text stored alongside the entries, if any.
    pub fn load_manifest(&self) -> Option<String> {
        self.backend.load_manifest()
    }

    /// Durably stores the delta manifest text alongside the entries.
    /// Best-effort like `put`: a failure degrades the next cold start
    /// to a full rescan, and is counted so it is visible, not silent.
    /// (`stores` counts analysis entries only, so tier accounting
    /// stays comparable across runs that do and don't write
    /// manifests.)
    pub fn store_manifest(&self, text: &str) -> bool {
        let wrote = self.backend.store_manifest(text).is_ok();
        if !wrote {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
        wrote
    }

    /// The flag spelling of the storage backend in use.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Lifetime probe/store counters of this handle.
    pub fn stats(&self) -> PersistentCacheStats {
        PersistentCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

enum Decoded {
    Entry(CachedAnalysis),
    /// Readable but written under another schema/config: a miss.
    Stale,
    /// Unreadable: checksum or structure failure.
    Broken,
}

fn decode_entry(bytes: &[u8], key: u128, config_tag: u64) -> Decoded {
    if bytes.len() < 36 || &bytes[..8] != MAGIC {
        return Decoded::Broken;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let tag = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if version != SCHEMA_VERSION || tag != config_tag {
        return Decoded::Stale;
    }
    let check = u128::from_le_bytes(bytes[20..36].try_into().expect("16 bytes"));
    let payload = &bytes[36..];
    if fnv128(payload) != check {
        return Decoded::Broken;
    }
    match decode_payload(payload, key) {
        Some(entry) => Decoded::Entry(entry),
        None => Decoded::Broken,
    }
}

fn encode_payload(key: u128, entry: &CachedAnalysis) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&key.to_le_bytes());
    put_str(&mut out, &entry.report.program);
    put_u32(&mut out, entry.report.findings.len() as u32);
    for f in &entry.report.findings {
        let kind = FindingKind::ALL.iter().position(|&k| k == f.kind).expect("kind in ALL");
        out.push(kind as u8);
        out.push(match f.severity {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        });
        put_str(&mut out, &f.site.function);
        put_u32(&mut out, f.site.line);
        match f.site.span {
            Some(span) => {
                out.push(1);
                put_u32(&mut out, span.line);
                put_u32(&mut out, span.col);
                put_u32(&mut out, span.byte_offset);
                put_u32(&mut out, span.len);
            }
            None => out.push(0),
        }
        put_str(&mut out, &f.message);
        match f.width {
            Some(w) => {
                out.push(1);
                put_u64(&mut out, w);
            }
            None => out.push(0),
        }
    }
    put_u32(&mut out, entry.summaries.len() as u32);
    for s in &entry.summaries {
        put_str(&mut out, &s.function);
        put_u32(&mut out, s.findings);
        put_u32(&mut out, s.region_effects);
        out.push(u8::from(s.clobbers));
        put_u64(&mut out, s.fingerprint);
        put_u32(&mut out, s.deps.len() as u32);
        for dep in &s.deps {
            put_str(&mut out, &dep.callee);
            put_u64(&mut out, dep.fingerprint);
        }
    }
    out
}

fn decode_payload(payload: &[u8], key: u128) -> Option<CachedAnalysis> {
    let mut cur = Cursor { bytes: payload, pos: 0 };
    if cur.u128()? != key {
        return None; // renamed/mismatched entry file
    }
    let program = cur.str()?;
    let n_findings = cur.u32()? as usize;
    // Defensive bound: each finding takes ≥ 15 bytes encoded.
    if n_findings > payload.len() / 15 + 1 {
        return None;
    }
    let mut findings = Vec::with_capacity(n_findings);
    for _ in 0..n_findings {
        let kind = *FindingKind::ALL.get(cur.u8()? as usize)?;
        let severity = match cur.u8()? {
            0 => Severity::Info,
            1 => Severity::Warning,
            2 => Severity::Error,
            _ => return None,
        };
        let function = cur.str()?;
        let line = cur.u32()?;
        let span = match cur.u8()? {
            0 => None,
            1 => Some(Span::new(cur.u32()?, cur.u32()?, cur.u32()?, cur.u32()?)),
            _ => return None,
        };
        let mut site = Site::new(&function, line);
        site.span = span;
        let message = cur.str()?;
        let width = match cur.u8()? {
            0 => None,
            1 => Some(cur.u64()?),
            _ => return None,
        };
        findings.push(Finding { kind, severity, site, message, width });
    }
    let n_summaries = cur.u32()? as usize;
    if n_summaries > payload.len() / 13 + 1 {
        return None;
    }
    let mut summaries = Vec::with_capacity(n_summaries);
    for _ in 0..n_summaries {
        let function = cur.str()?;
        let findings = cur.u32()?;
        let region_effects = cur.u32()?;
        let clobbers = match cur.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let fingerprint = cur.u64()?;
        let n_deps = cur.u32()? as usize;
        // Defensive bound: each dep takes ≥ 12 bytes encoded.
        if n_deps > payload.len() / 12 + 1 {
            return None;
        }
        let mut deps = Vec::with_capacity(n_deps);
        for _ in 0..n_deps {
            deps.push(crate::summary::SummaryDep { callee: cur.str()?, fingerprint: cur.u64()? });
        }
        summaries.push(FunctionSummaryRecord {
            function,
            fingerprint,
            findings,
            region_effects,
            clobbers,
            deps,
        });
    }
    if cur.pos != payload.len() {
        return None; // trailing garbage
    }
    Some(CachedAnalysis { report: Report { program, findings }, summaries })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use std::fs;

    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pnx-cache-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entry() -> CachedAnalysis {
        let mut site = Site::new("main", 7);
        site.span = Some(Span::new(7, 5, 104, 31));
        CachedAnalysis {
            report: Report {
                program: "demo".into(),
                findings: vec![Finding {
                    kind: FindingKind::OversizedPlacement,
                    severity: Severity::Error,
                    site,
                    message: "overflows by 16 bytes".into(),
                    width: Some(16),
                }],
            },
            summaries: vec![
                FunctionSummaryRecord {
                    function: "main".into(),
                    fingerprint: 0xdead_beef_cafe_f00d,
                    findings: 1,
                    region_effects: 2,
                    clobbers: true,
                    deps: vec![
                        crate::summary::SummaryDep {
                            callee: "helper".into(),
                            fingerprint: 0x1234_5678_9abc_def0,
                        },
                        crate::summary::SummaryDep { callee: "init".into(), fingerprint: 42 },
                    ],
                },
                FunctionSummaryRecord {
                    function: "helper".into(),
                    fingerprint: 0x1234_5678_9abc_def0,
                    findings: 0,
                    region_effects: 0,
                    clobbers: false,
                    deps: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn round_trips_reports_and_summaries_exactly() {
        let dir = tmp_dir("roundtrip");
        let cache = PersistentCache::open(&dir, &AnalyzerConfig::default()).unwrap();
        let key = source_fingerprint("program demo; fn main() {}");
        assert_eq!(cache.get(key), CacheLookup::Miss);
        let entry = sample_entry();
        cache.put(key, &entry);
        assert_eq!(cache.get(key), CacheLookup::Hit(entry));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.corrupt, stats.stores), (1, 1, 0, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_changes_invalidate_without_corruption() {
        let dir = tmp_dir("config");
        let key = source_fingerprint("x");
        let cache = PersistentCache::open(&dir, &AnalyzerConfig::default()).unwrap();
        cache.put(key, &sample_entry());
        let stricter =
            AnalyzerConfig { min_severity: Severity::Error, ..AnalyzerConfig::default() };
        let other = PersistentCache::open(&dir, &stricter).unwrap();
        assert_eq!(other.get(key), CacheLookup::Miss, "different config must not hit");
        let inline = AnalyzerConfig { use_summaries: false, ..AnalyzerConfig::default() };
        let third = PersistentCache::open(&dir, &inline).unwrap();
        assert_eq!(third.get(key), CacheLookup::Miss, "strategy flag is part of the tag");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let dir = tmp_dir("corrupt");
        let cache = PersistentCache::open(&dir, &AnalyzerConfig::default()).unwrap();
        let key = source_fingerprint("y");
        cache.put(key, &sample_entry());
        let path = cache.dir().join(format!("{key:032x}.pnc"));

        // Flip a payload byte: checksum mismatch.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.get(key), CacheLookup::Corrupt);

        // Truncate mid-header.
        fs::write(&path, &bytes[..10]).unwrap();
        assert_eq!(cache.get(key), CacheLookup::Corrupt);

        // Empty file.
        fs::write(&path, b"").unwrap();
        assert_eq!(cache.get(key), CacheLookup::Corrupt);
        assert_eq!(cache.stats().corrupt, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_magic_or_version_reads_as_stale_or_broken() {
        let dir = tmp_dir("version");
        let cache = PersistentCache::open(&dir, &AnalyzerConfig::default()).unwrap();
        let key = source_fingerprint("z");
        cache.put(key, &sample_entry());
        let path = cache.dir().join(format!("{key:032x}.pnc"));
        let good = fs::read(&path).unwrap();

        // Future schema version: stale (miss), not corrupt.
        let mut future = good.clone();
        future[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        fs::write(&path, &future).unwrap();
        assert_eq!(cache.get(key), CacheLookup::Miss);

        // Foreign magic: broken.
        let mut foreign = good;
        foreign[..8].copy_from_slice(b"NOTCACHE");
        fs::write(&path, &foreign).unwrap();
        assert_eq!(cache.get(key), CacheLookup::Corrupt);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_under_the_wrong_key_is_rejected() {
        // A renamed cache file must not serve another file's report.
        let dir = tmp_dir("rename");
        let cache = PersistentCache::open(&dir, &AnalyzerConfig::default()).unwrap();
        let key_a = source_fingerprint("a");
        let key_b = source_fingerprint("b");
        cache.put(key_a, &sample_entry());
        fs::rename(
            cache.dir().join(format!("{key_a:032x}.pnc")),
            cache.dir().join(format!("{key_b:032x}.pnc")),
        )
        .unwrap();
        assert_eq!(cache.get(key_b), CacheLookup::Corrupt);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_fails_fast_on_an_uncreatable_dir() {
        // A regular file where the directory should be: open must
        // surface the error immediately instead of degrading every
        // later put. (A read-only directory behaves the same, but that
        // cannot be asserted portably when tests run as root.)
        let base = tmp_dir("uncreatable");
        fs::create_dir_all(&base).unwrap();
        let file = base.join("not-a-dir");
        fs::write(&file, b"occupied").unwrap();
        assert!(PersistentCache::open(&file, &AnalyzerConfig::default()).is_err());
        assert!(
            PersistentCache::open(&file.join("below"), &AnalyzerConfig::default()).is_err(),
            "a path under a file is uncreatable too"
        );
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn failed_writes_are_counted_not_silent() {
        // Remove the directory after open: every put now fails at
        // File::create (ENOENT) — the classic "cache dir deleted
        // mid-run" degradation. (chmod-based read-only cannot be
        // asserted portably when tests run as root.)
        let dir = tmp_dir("write-errors");
        let cache = PersistentCache::open(&dir, &AnalyzerConfig::default()).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        let key = source_fingerprint("w");
        cache.put(key, &sample_entry());
        let stats = cache.stats();
        assert_eq!(stats.write_errors, 1);
        assert_eq!(stats.stores, 0);
        assert_eq!(cache.get(key), CacheLookup::Miss, "a failed put leaves no entry");
    }

    #[test]
    fn indexed_backend_preserves_hit_miss_corrupt_heal_semantics() {
        let dir = tmp_dir("indexed-semantics");
        let key = source_fingerprint("indexed");
        // Seed the store with garbage bytes under the key, as a torn
        // or foreign writer would leave them.
        {
            let be = crate::backend::IndexedBackend::open(&dir).unwrap();
            be.store(key, b"not a pnc entry at all").unwrap();
        }
        let cache =
            PersistentCache::open_with(&dir, &AnalyzerConfig::default(), BackendKind::Indexed)
                .unwrap();
        assert_eq!(cache.backend_name(), "indexed");
        assert_eq!(cache.get(key), CacheLookup::Corrupt, "garbage decodes as corrupt");
        let entry = sample_entry();
        cache.put(key, &entry); // heal
        assert_eq!(cache.get(key), CacheLookup::Hit(entry.clone()));
        assert_eq!(cache.get(source_fingerprint("absent")), CacheLookup::Miss);

        // Entries survive reopen, and a config change reads as stale.
        drop(cache);
        let warm =
            PersistentCache::open_with(&dir, &AnalyzerConfig::default(), BackendKind::Indexed)
                .unwrap();
        assert_eq!(warm.get(key), CacheLookup::Hit(entry));
        let stricter =
            AnalyzerConfig { min_severity: Severity::Error, ..AnalyzerConfig::default() };
        let other = PersistentCache::open_with(&dir, &stricter, BackendKind::Indexed).unwrap();
        assert_eq!(other.get(key), CacheLookup::Miss, "different config must not hit");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_through_both_backends() {
        for kind in [BackendKind::Dir, BackendKind::Indexed] {
            let dir = tmp_dir(&format!("manifest-{}", kind.name()));
            let cache = PersistentCache::open_with(&dir, &AnalyzerConfig::default(), kind).unwrap();
            assert_eq!(cache.load_manifest(), None);
            cache.store_manifest("pnx-delta-manifest/1\n3 4 00000000000000000000000000000005 a\n");
            assert_eq!(
                cache.load_manifest().as_deref(),
                Some("pnx-delta-manifest/1\n3 4 00000000000000000000000000000005 a\n")
            );
            assert_eq!(cache.stats().write_errors, 0);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn two_writers_sharing_a_dir_never_serve_a_corrupt_entry() {
        // Two cache handles (two replicas, or a daemon plus a one-shot
        // pncheck) hammer the same keys in one directory. With the old
        // fixed `.{key}.{pid}.tmp` temp names, two same-process engines
        // racing one key could rename each other's half-written temp
        // into place; unique pid+nonce temp names make every rename
        // publish exactly the bytes its writer wrote, so a reader sees
        // a complete entry or none — never a torn one.
        let dir = tmp_dir("two-writers");
        let keys: Vec<u128> =
            (0..4u32).map(|i| source_fingerprint(&format!("contended {i}"))).collect();
        let entry = sample_entry();
        std::thread::scope(|scope| {
            for _writer in 0..2 {
                scope.spawn(|| {
                    let cache = PersistentCache::open(&dir, &AnalyzerConfig::default()).unwrap();
                    for round in 0..200 {
                        let key = keys[round % keys.len()];
                        cache.put(key, &entry);
                        match cache.get(key) {
                            CacheLookup::Hit(got) => assert_eq!(got, entry),
                            CacheLookup::Miss => {} // racing rename not yet visible
                            CacheLookup::Corrupt => {
                                panic!("a torn entry was served from the shared dir")
                            }
                        }
                    }
                    assert_eq!(cache.stats().corrupt, 0);
                    assert_eq!(cache.stats().write_errors, 0);
                });
            }
        });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn source_fingerprint_is_wide_and_sensitive() {
        let fp = source_fingerprint("program p; fn main() {}");
        assert_ne!(fp >> 64, 0);
        assert_ne!(fp & u128::from(u64::MAX), 0);
        assert_ne!(fp, source_fingerprint("program p; fn main() {} "));
    }
}
