//! Automatic remediation — the second half of the paper's §7 tool
//! ("…and automatically addressing these vulnerabilities").
//!
//! The [`Fixer`] takes a program, runs the [`Analyzer`], and rewrites the
//! IR so that every finding is remediated with the §5.1 prescription for
//! its class:
//!
//! | finding | rewrite |
//! |---|---|
//! | oversized placement (proof) | the §5.1 fallback, resolved statically: replace with non-placement `new` |
//! | tainted object placement (remote copy-ctor) | same fallback — the arena can never be trusted to fit |
//! | tainted array count | insert the missing bounds check: `if (count > arena/elem) return;` |
//! | unsanitized arena reuse | insert `memset(arena, 0, size)` before every arena placement |
//! | size-mismatched `delete` | retype as a placement delete (releases the whole block) |
//! | pointer nulled over a live block | insert the missing `delete` first |
//!
//! Unknown-bounds placements (`Info`) are left alone — §5.1 is explicit
//! that no tool can size a bare address; they remain flagged for human
//! review. The contract, asserted over the whole corpus in the tests: a
//! fixed program re-analyzes with **no warning-or-better findings**, and
//! fixing an already-clean program changes nothing.

use std::collections::HashMap;
use std::fmt;

use crate::analysis::Analyzer;
use crate::findings::{FindingKind, Severity};
use crate::ir::{CmpOp, Cond, Expr, Function, Program, Site, Stmt, Ty, VarId};

/// One remediation applied by the fixer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFix {
    /// The site that was rewritten (or that the insertion precedes).
    pub site: Site,
    /// The finding class that triggered the fix.
    pub kind: FindingKind,
    /// What was done, in words.
    pub description: String,
}

impl fmt::Display for AppliedFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.site, self.kind, self.description)
    }
}

/// Reassigns statement sites in builder order (pre-order walk).
fn renumber(body: &mut [Stmt], function: &str, next: &mut u32) {
    for stmt in body {
        let site = Site::new(function, *next);
        *next += 1;
        match stmt {
            Stmt::Assign { site: s, .. }
            | Stmt::FieldStore { site: s, .. }
            | Stmt::ReadInput { site: s, .. }
            | Stmt::RecvObject { site: s, .. }
            | Stmt::HeapNew { site: s, .. }
            | Stmt::PlacementNew { site: s, .. }
            | Stmt::PlacementNewArray { site: s, .. }
            | Stmt::Strncpy { site: s, .. }
            | Stmt::Memset { site: s, .. }
            | Stmt::ReadSecret { site: s, .. }
            | Stmt::Output { site: s, .. }
            | Stmt::Delete { site: s, .. }
            | Stmt::NullAssign { site: s, .. }
            | Stmt::VirtualCall { site: s, .. }
            | Stmt::CallPtr { site: s, .. }
            | Stmt::Call { site: s, .. }
            | Stmt::Return { site: s } => *s = site,
            Stmt::If { site: s, then_body, else_body, .. } => {
                *s = site;
                renumber(then_body, function, next);
                renumber(else_body, function, next);
            }
            Stmt::While { site: s, body, .. } => {
                *s = site;
                renumber(body, function, next);
            }
        }
    }
}

/// The automatic remediation pass.
///
/// # Examples
///
/// ```
/// use pnew_detector::{Analyzer, Expr, Fixer, ProgramBuilder, Severity, Ty};
///
/// // Listing 4: the oversized placement…
/// let mut p = ProgramBuilder::new("listing-4");
/// p.class("Student", 16, None, false);
/// p.class("GradStudent", 32, Some("Student"), false);
/// let mut f = p.function("main");
/// let stud = f.local("stud", Ty::Class("Student".into()));
/// let st = f.local("st", Ty::Ptr);
/// f.placement_new(st, Expr::addr_of(stud), "GradStudent");
/// f.finish();
/// let program = p.build();
///
/// // …is rewritten to the §5.1 heap fallback and re-analyzes clean.
/// let (fixed, fixes) = Fixer::new().fix(&program);
/// assert_eq!(fixes.len(), 1);
/// assert!(!Analyzer::new().analyze(&fixed).detected_at(Severity::Warning));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fixer;

impl Fixer {
    /// Creates a fixer.
    pub fn new() -> Self {
        Fixer
    }

    /// Analyzes and rewrites `program`; returns the remediated program and
    /// the list of applied fixes (empty when the program was clean).
    pub fn fix(&self, program: &Program) -> (Program, Vec<AppliedFix>) {
        let report = Analyzer::new().analyze(program);
        let mut by_site: HashMap<Site, Vec<FindingKind>> = HashMap::new();
        for finding in &report.findings {
            if finding.severity >= Severity::Warning {
                by_site.entry(finding.site.clone()).or_default().push(finding.kind);
            }
        }
        let sanitize_everywhere =
            report.findings.iter().any(|f| f.kind == FindingKind::UnsanitizedArenaReuse);

        let mut fixes = Vec::new();
        let mut fixed = program.clone();
        fixed.functions = program
            .functions
            .iter()
            .map(|f| {
                let mut body =
                    self.rewrite_body(program, &f.body, &by_site, sanitize_everywhere, &mut fixes);
                // Canonical site numbering (pre-order, as the builder
                // assigns it), so the fixed program is indistinguishable
                // from one authored directly — and round-trips through the
                // surface syntax.
                let mut next = 1u32;
                renumber(&mut body, &f.name, &mut next);
                Function { name: f.name.clone(), vars: f.vars.clone(), body }
            })
            .collect();
        (fixed, fixes)
    }

    fn rewrite_body(
        &self,
        p: &Program,
        body: &[Stmt],
        by_site: &HashMap<Site, Vec<FindingKind>>,
        sanitize: bool,
        fixes: &mut Vec<AppliedFix>,
    ) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(body.len());
        for stmt in body {
            self.rewrite_stmt(p, stmt, by_site, sanitize, fixes, &mut out);
        }
        out
    }

    /// Best-effort static size of an arena expression (declared storage
    /// only; the fixer does not re-run region inference).
    fn arena_info(&self, p: &Program, arena: &Expr) -> Option<(VarId, u64)> {
        match arena {
            Expr::AddrOf(v) | Expr::Var(v) => {
                let size = p.var(*v).ty.declared_size(&p.classes)?;
                Some((*v, size))
            }
            _ => None,
        }
    }

    /// The variable a `memset` should target for this arena expression.
    fn arena_var(&self, arena: &Expr) -> Option<VarId> {
        match arena {
            Expr::AddrOf(v) | Expr::Var(v) => Some(*v),
            _ => None,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn rewrite_stmt(
        &self,
        p: &Program,
        stmt: &Stmt,
        by_site: &HashMap<Site, Vec<FindingKind>>,
        sanitize: bool,
        fixes: &mut Vec<AppliedFix>,
        out: &mut Vec<Stmt>,
    ) {
        let kinds = by_site.get(stmt.site()).map(Vec::as_slice).unwrap_or(&[]);
        match stmt {
            Stmt::PlacementNew { site, dst, arena, class, .. } => {
                if sanitize {
                    self.insert_memset(p, site, arena, fixes, out);
                }
                let oversized = kinds.contains(&FindingKind::OversizedPlacement);
                let tainted = kinds.contains(&FindingKind::TaintedPlacementSize);
                if oversized || tainted {
                    fixes.push(AppliedFix {
                        site: site.clone(),
                        kind: if oversized {
                            FindingKind::OversizedPlacement
                        } else {
                            FindingKind::TaintedPlacementSize
                        },
                        description: format!(
                            "replaced `new (arena) {class}()` with the §5.1 fallback `new {class}()` (the arena can never fit it)"
                        ),
                    });
                    out.push(Stmt::HeapNew {
                        site: site.clone(),
                        dst: *dst,
                        class: Some(class.clone()),
                        count: None,
                    });
                } else {
                    out.push(stmt.clone());
                }
            }
            Stmt::PlacementNewArray { site, dst, arena, elem_size, count } => {
                if sanitize {
                    self.insert_memset(p, site, arena, fixes, out);
                }
                if kinds.contains(&FindingKind::OversizedPlacement) {
                    // Constant-size proof: the pool can never hold it.
                    fixes.push(AppliedFix {
                        site: site.clone(),
                        kind: FindingKind::OversizedPlacement,
                        description:
                            "replaced the pool placement with heap `new[]` (the pool can never fit the array)"
                                .to_owned(),
                    });
                    out.push(Stmt::HeapNew {
                        site: site.clone(),
                        dst: *dst,
                        class: None,
                        count: Some(Expr::mul(count.clone(), Expr::Const(i64::from(*elem_size)))),
                    });
                    return;
                }
                if kinds.contains(&FindingKind::TaintedPlacementSize) {
                    match (self.arena_info(p, arena), count) {
                        (Some((_, arena_size)), Expr::Var(v)) if *elem_size > 0 => {
                            let max = arena_size / u64::from(*elem_size);
                            fixes.push(AppliedFix {
                                site: site.clone(),
                                kind: FindingKind::TaintedPlacementSize,
                                description: format!(
                                    "inserted the missing §5.1 bounds check `if ({} > {max}) return;`",
                                    p.var(*v).name
                                ),
                            });
                            out.push(Stmt::If {
                                site: site.clone(),
                                cond: Cond {
                                    lhs: Expr::Var(*v),
                                    op: CmpOp::Gt,
                                    rhs: Expr::Const(max as i64),
                                },
                                then_body: vec![Stmt::Return { site: site.clone() }],
                                else_body: Vec::new(),
                            });
                            out.push(stmt.clone());
                        }
                        _ => {
                            // No static bound to check against: fall back
                            // to a heap array, which sizes itself.
                            fixes.push(AppliedFix {
                                site: site.clone(),
                                kind: FindingKind::TaintedPlacementSize,
                                description:
                                    "replaced the unboundable pool placement with heap `new[]`"
                                        .to_owned(),
                            });
                            out.push(Stmt::HeapNew {
                                site: site.clone(),
                                dst: *dst,
                                class: None,
                                count: Some(count.clone()),
                            });
                        }
                    }
                    return;
                }
                out.push(stmt.clone());
            }
            Stmt::Delete { site, ptr, as_class } => {
                if kinds.contains(&FindingKind::PlacementLeak) && as_class.is_some() {
                    fixes.push(AppliedFix {
                        site: site.clone(),
                        kind: FindingKind::PlacementLeak,
                        description: format!(
                            "retyped `delete ({}*)` as a placement delete that releases the whole block (§5.1)",
                            as_class.as_deref().unwrap_or("?")
                        ),
                    });
                    out.push(Stmt::Delete { site: site.clone(), ptr: *ptr, as_class: None });
                } else {
                    out.push(stmt.clone());
                }
            }
            Stmt::NullAssign { site, ptr } => {
                if kinds.contains(&FindingKind::PlacementLeak) {
                    fixes.push(AppliedFix {
                        site: site.clone(),
                        kind: FindingKind::PlacementLeak,
                        description:
                            "inserted the missing release before nulling the last pointer (§5.1)"
                                .to_owned(),
                    });
                    out.push(Stmt::Delete { site: site.clone(), ptr: *ptr, as_class: None });
                }
                out.push(stmt.clone());
            }
            Stmt::If { site, cond, then_body, else_body } => {
                out.push(Stmt::If {
                    site: site.clone(),
                    cond: cond.clone(),
                    then_body: self.rewrite_body(p, then_body, by_site, sanitize, fixes),
                    else_body: self.rewrite_body(p, else_body, by_site, sanitize, fixes),
                });
            }
            Stmt::While { site, cond, body } => {
                out.push(Stmt::While {
                    site: site.clone(),
                    cond: cond.clone(),
                    body: self.rewrite_body(p, body, by_site, sanitize, fixes),
                });
            }
            other => out.push(other.clone()),
        }
    }

    fn insert_memset(
        &self,
        p: &Program,
        site: &Site,
        arena: &Expr,
        fixes: &mut Vec<AppliedFix>,
        out: &mut Vec<Stmt>,
    ) {
        let Some(dst) = self.arena_var(arena) else {
            return;
        };
        // Sanitizing a pointer-typed class variable means zeroing the
        // pointee; the runtime length comes from allocator metadata, so
        // the IR length is the declared size where one exists.
        let len = self
            .arena_info(p, arena)
            .map_or(Expr::SizeOf("<runtime block size>".to_owned()), |(_, size)| {
                Expr::Const(size as i64)
            });
        if matches!(p.var(dst).ty, Ty::Int | Ty::Double | Ty::Char) {
            return; // scalars are not reused pools
        }
        fixes.push(AppliedFix {
            site: site.clone(),
            kind: FindingKind::UnsanitizedArenaReuse,
            description: format!(
                "inserted `memset({}, 0, …)` before the placement (§5.1 sanitization)",
                p.var(dst).name
            ),
        });
        out.push(Stmt::Memset { site: site.clone(), dst, len });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::Analyzer;

    fn students(p: &mut ProgramBuilder) {
        p.class("Student", 16, None, false);
        p.class("GradStudent", 32, Some("Student"), false);
    }

    fn assert_clean_after_fix(program: &Program) -> Vec<AppliedFix> {
        let (fixed, fixes) = Fixer::new().fix(program);
        let after = Analyzer::new().analyze(&fixed);
        assert!(
            !after.detected_at(Severity::Warning),
            "{}: residual findings after fixing: {after}",
            program.name
        );
        fixes
    }

    #[test]
    fn oversized_placement_becomes_heap_new() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let program = p.build();
        let fixes = assert_clean_after_fix(&program);
        assert_eq!(fixes.len(), 1);
        assert!(fixes[0].description.contains("fallback"));
        let (fixed, _) = Fixer::new().fix(&program);
        assert!(matches!(fixed.functions[0].body[0], Stmt::HeapNew { class: Some(_), .. }));
    }

    #[test]
    fn tainted_count_gets_the_missing_guard() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let pool = p.global("pool", Ty::CharArray(Some(72)));
        let mut f = p.function("main");
        let n = f.local("n", Ty::Int);
        let buf = f.local("buf", Ty::Ptr);
        f.read_input(n);
        f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
        f.finish();
        let program = p.build();
        let fixes = assert_clean_after_fix(&program);
        assert!(fixes.iter().any(|x| x.description.contains("bounds check")));
        let (fixed, _) = Fixer::new().fix(&program);
        // read, inserted guard, placement
        assert_eq!(fixed.functions[0].body.len(), 3);
        assert!(matches!(fixed.functions[0].body[1], Stmt::If { .. }));
    }

    #[test]
    fn leaky_delete_is_retyped() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("f");
        let stud = f.local("stud", Ty::Ptr);
        let st = f.local("st", Ty::Ptr);
        f.heap_new(stud, "GradStudent");
        f.placement_new(st, Expr::Var(stud), "Student");
        f.delete(st, Some("Student"));
        f.finish();
        let program = p.build();
        let fixes = assert_clean_after_fix(&program);
        assert!(fixes.iter().any(|x| x.kind == FindingKind::PlacementLeak));
    }

    #[test]
    fn null_without_free_gains_a_delete() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("f");
        let stud = f.local("stud", Ty::Ptr);
        f.heap_new(stud, "GradStudent");
        f.null_assign(stud);
        f.finish();
        let (fixed, fixes) = Fixer::new().fix(&p.build());
        assert_eq!(fixes.len(), 1);
        // heap_new, inserted delete, null_assign
        assert!(matches!(fixed.functions[0].body[1], Stmt::Delete { as_class: None, .. }));
        assert!(!Analyzer::new().analyze(&fixed).detected_at(Severity::Warning));
    }

    #[test]
    fn unsanitized_reuse_gains_memsets() {
        let mut p = ProgramBuilder::new("t");
        let pool = p.global("mem_pool", Ty::CharArray(Some(192)));
        let mut f = p.function("main");
        let user = f.local("userdata", Ty::Ptr);
        f.read_secret(pool);
        f.placement_new_array(user, Expr::addr_of(pool), 1, Expr::Const(192));
        f.output(user);
        f.finish();
        let program = p.build();
        let fixes = assert_clean_after_fix(&program);
        assert!(fixes.iter().any(|x| x.description.contains("memset")));
    }

    #[test]
    fn clean_programs_are_untouched() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "Student");
        f.finish();
        let program = p.build();
        let (fixed, fixes) = Fixer::new().fix(&program);
        assert!(fixes.is_empty());
        assert_eq!(fixed, program);
    }

    #[test]
    fn fixing_is_idempotent() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("main");
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.finish();
        let (once, fixes1) = Fixer::new().fix(&p.build());
        let (twice, fixes2) = Fixer::new().fix(&once);
        assert!(!fixes1.is_empty());
        assert!(fixes2.is_empty());
        assert_eq!(once, twice);
    }

    #[test]
    fn fixes_inside_control_flow() {
        let mut p = ProgramBuilder::new("t");
        students(&mut p);
        let mut f = p.function("f");
        let flag = f.local("flag", Ty::Int);
        let stud = f.local("stud", Ty::Class("Student".into()));
        let st = f.local("st", Ty::Ptr);
        f.read_input(flag);
        f.if_start(Expr::Var(flag), CmpOp::Gt, Expr::Const(0));
        f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        f.end_if();
        f.finish();
        let fixes = assert_clean_after_fix(&p.build());
        assert_eq!(fixes.len(), 1);
    }

    #[test]
    fn applied_fix_displays() {
        let fix = AppliedFix {
            site: Site::new("main", 3),
            kind: FindingKind::OversizedPlacement,
            description: "did a thing".into(),
        };
        assert_eq!(fix.to_string(), "main:3: [oversized-placement] did a thing");
    }
}
